#!/usr/bin/env python3
"""Explore the simulated machines the way hwloc's lstopo would.

Prints the topology tree of each paper platform, the core-to-core distance
matrix, and the NUMA grouping the KNEM collective component builds its
two-level broadcast tree from (Figure 1).

Run:  python examples/topology_explorer.py [machine]
"""

import sys

import numpy as np

from repro.hardware.machines import MACHINES, get_machine
from repro.topology.distance import DistanceMatrix, group_by_domain
from repro.topology.objects import Topology
from repro.units import fmt_bandwidth


def explore(name: str) -> None:
    spec = get_machine(name)
    topo = Topology(spec)
    print("=" * 70)
    print(spec)
    print(f"  {spec.description}")
    print(f"  memory: {fmt_bandwidth(spec.domain_mem_bandwidth[0])} per domain, "
          f"LLC {spec.llc.size >> 20} MB per {spec.llc.scope}")
    if spec.links:
        slowest = min(l.bandwidth for l in spec.links)
        print(f"  links: {len(spec.links)}, slowest {fmt_bandwidth(slowest)}")
    print()
    print(topo.render())

    dist = DistanceMatrix(topo)
    print("\ncore distance matrix (0=self ... 5=cross-board):")
    with np.printoptions(linewidth=200):
        print(dist.matrix)

    groups = group_by_domain(spec, list(range(spec.n_cores)))
    print("\nNUMA sets (the per-domain groups of Figure 1):")
    for domain, cores in groups.items():
        print(f"  domain {domain}: cores {cores}")
    print()


def main():
    names = sys.argv[1:] if len(sys.argv) > 1 else sorted(MACHINES)
    for name in names:
        explore(name)


if __name__ == "__main__":
    main()
