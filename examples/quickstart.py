#!/usr/bin/env python3
"""Quickstart: broadcast a buffer on a simulated machine with two stacks.

Builds the paper's Dancer machine (8-core dual-socket Nehalem), runs the
same 1 MiB broadcast under the default Open MPI setup (Tuned-SM,
copy-in/copy-out) and under the paper's KNEM collective component, verifies
the payload, and prints the timings.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Job, Machine
from repro.mpi import stacks
from repro.units import MiB, fmt_time

MESSAGE = 1 * MiB


def program(proc):
    """One MPI rank: broadcast MESSAGE bytes from rank 0, checksum them."""
    buf = proc.alloc_array(MESSAGE, dtype="u1")
    if proc.rank == 0:
        buf.array[:] = np.arange(MESSAGE, dtype=np.uint8) % 251

    t0 = proc.now
    yield from proc.comm.bcast(buf.sim, 0, MESSAGE, root=0)
    elapsed = proc.now - t0

    expected = np.arange(MESSAGE, dtype=np.uint8) % 251
    assert np.array_equal(buf.array, expected), "payload corrupted!"
    return elapsed


def main():
    print(f"Broadcasting {MESSAGE // 1024} KiB across 8 ranks on 'dancer'\n")
    times = {}
    for stack in (stacks.TUNED_SM, stacks.TUNED_KNEM, stacks.KNEM_COLL):
        machine = Machine.build("dancer")
        job = Job(machine, nprocs=8, stack=stack)
        result = job.run(program)
        worst = max(result.values)
        times[stack.name] = worst
        print(f"  {stack.name:12s} {fmt_time(worst):>12}   "
              f"(kernel copies: {machine.knem.stats_copies}, "
              f"registrations: {machine.knem.stats_registrations})")
    ref = times["KNEM-Coll"]
    print("\nNormalized to KNEM-Coll (the paper's Figures 5-8 convention):")
    for name, t in times.items():
        print(f"  {name:12s} {t / ref:5.2f}x")


if __name__ == "__main__":
    main()
