#!/usr/bin/env python3
"""The Alltoall rotation schedule (Figure 3) and what it buys.

Prints the copy schedule of the KNEM Alltoall — each receiver starts its
fetch loop at a rotated offset so every sender's memory is read by exactly
one peer at each step — then measures rotated vs naive fetch order on the
48-core IG machine, and a distributed matrix transpose built on Alltoall.

Run:  python examples/alltoall_schedule.py
"""

import numpy as np

from repro.apps.transpose import TransposeConfig, alltoall_time, run_transpose
from repro.mpi import stacks
from repro.units import KiB, fmt_time


def print_schedule(size: int = 4) -> None:
    print(f"Rotated fetch schedule for {size} processes "
          f"(entries: step at which receiver reads sender's block)\n")
    header = "          " + " ".join(f"snd{p}" for p in range(size))
    print(header)
    for rank in range(size):
        row = [""] * size
        for step in range(1, size):
            peer = (rank + step) % size
            row[peer] = str(step)
        row[rank] = "-"
        print(f"  recv{rank}:  " + " ".join(f"{c:>4}" for c in row))
    print("\nEvery column holds each step exactly once (a Latin square):")
    print("at any instant, each sender's buffer feeds exactly one reader.\n")


def measure_rotation() -> None:
    print("Alltoall 128 KiB/block on IG (48 ranks):")
    rotated = stacks.KNEM_COLL
    naive = stacks.KNEM_COLL.with_tuning(rotate_alltoall=False)
    cfg = TransposeConfig(n=48 * 16, nprocs=48)  # blocks of 16 rows

    for name, stack in (("rotated (Figure 3)", rotated), ("naive order", naive)):
        t = alltoall_time("ig", stack, cfg)
        print(f"  {name:20s} {fmt_time(t):>12}")
    print()


def transpose_demo() -> None:
    print("Distributed transpose via Alltoall (correctness check):")
    rng = np.random.default_rng(0)
    mat = rng.random((64, 64))
    out, elapsed = run_transpose("dancer", stacks.KNEM_COLL, mat, nprocs=8)
    print(f"  64x64 over 8 ranks: correct={np.allclose(out, mat.T)} "
          f"in {fmt_time(elapsed)}")


def main():
    print_schedule(4)
    measure_rotation()
    transpose_demo()


if __name__ == "__main__":
    main()
