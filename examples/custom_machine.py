#!/usr/bin/env python3
"""Define your own machine and see how the collectives respond.

Builds a hypothetical 64-core machine (8 NUMA domains on a ring — worse
bisection than IG's mesh) plus a flat SMP with the same core count, and
compares KNEM-Coll against Tuned-SM broadcast and gather on both.  This is
the "will these techniques matter on MY machine" workflow a downstream
user of the library would run.

Run:  python examples/custom_machine.py
"""

from repro import Job, Machine
from repro.bench.imb import ImbSettings, imb_time
from repro.hardware.machines import numa_machine, smp_machine
from repro.mpi import stacks
from repro.units import MiB, fmt_time, gbps

SETTINGS = ImbSettings(max_iterations=1)


def build_machines():
    ring = numa_machine(
        name="ring64",
        n_domains=8,
        cores_per_socket=8,
        mem_bandwidth=gbps(12.0),
        link_bandwidth=gbps(5.0),
        core_copy_bandwidth=gbps(4.0),
        topology="ring",
    )
    flat = smp_machine(
        name="flat64",
        n_sockets=8,
        cores_per_socket=8,
        mem_bandwidth=gbps(24.0),
        core_copy_bandwidth=gbps(4.0),
    )
    return ring, flat


def main():
    ring, flat = build_machines()
    msg = 2 * MiB
    print(f"{'machine':>8} {'op':>8} {'Tuned-SM':>12} {'KNEM-Coll':>12} {'speedup':>8}")
    print("-" * 56)
    for spec in (ring, flat):
        for op in ("bcast", "gather"):
            t_sm = imb_time(spec, stacks.TUNED_SM, 64, op, msg, SETTINGS)
            t_knem = imb_time(spec, stacks.KNEM_COLL, 64, op, msg, SETTINGS)
            print(f"{spec.name:>8} {op:>8} {fmt_time(t_sm):>12} "
                  f"{fmt_time(t_knem):>12} {t_sm / t_knem:7.2f}x")

    print("\nWhere does the hierarchical broadcast's time go on the ring?")
    machine = Machine.build(ring)
    job = Job(machine, nprocs=64, stack=stacks.KNEM_COLL)

    def prog(proc):
        buf = proc.alloc(msg, backed=False)
        t0 = proc.now
        yield from proc.comm.bcast(buf, 0, msg, root=0)
        return proc.now - t0

    result = job.run(prog)
    by_domain = {}
    for rank, t in enumerate(result.values):
        dom = machine.spec.core_domain(job.procs[rank].core)
        by_domain.setdefault(dom, []).append(t)
    for dom, times in sorted(by_domain.items()):
        print(f"  domain {dom}: completion {fmt_time(max(times))}")
    print("\nRing hops from domain 0 grow with distance; the two-level tree")
    print("pays one inter-domain transfer per hop of the route to each leader.")


if __name__ == "__main__":
    main()
