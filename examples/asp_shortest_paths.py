#!/usr/bin/env python3
"""ASP: the paper's showcase application (Table I), at laptop scale.

Solves all-pairs-shortest-paths on a random graph with the distributed
Floyd–Warshall used in the paper's evaluation, on the simulated Zoot
machine, under each MPI stack.  The result is validated against networkx,
and the broadcast-time breakdown is printed in Table I's layout.

Run:  python examples/asp_shortest_paths.py [n]
"""

import sys

import networkx as nx
import numpy as np

from repro.apps.asp import INF, AspConfig, run_asp, run_asp_timed
from repro.bench.report import render_table1
from repro.mpi import stacks


def random_graph(n, density=0.25, seed=1234):
    rng = np.random.default_rng(seed)
    adj = rng.integers(1, 100, size=(n, n)).astype(np.int32)
    adj[rng.random((n, n)) > density] = INF
    np.fill_diagonal(adj, 0)
    return adj


def networkx_oracle(adj):
    g = nx.DiGraph()
    n = adj.shape[0]
    g.add_nodes_from(range(n))
    for i in range(n):
        for j in range(n):
            if i != j and adj[i, j] < INF:
                g.add_edge(i, j, weight=int(adj[i, j]))
    dist = np.full_like(adj, INF)
    np.fill_diagonal(dist, 0)
    for src, lengths in nx.all_pairs_dijkstra_path_length(g, weight="weight"):
        for dst, d in lengths.items():
            dist[src, dst] = d
    return dist


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64

    print(f"== correctness: {n}x{n} graph, 16 ranks on zoot ==")
    adj = random_graph(n)
    oracle = networkx_oracle(adj)
    for stack in (stacks.TUNED_SM, stacks.KNEM_COLL):
        result = run_asp("zoot", stack, adj, nprocs=16)
        ok = np.array_equal(result, oracle)
        print(f"  {stack.name:12s} matches networkx: {ok}")
        assert ok

    print("\n== Table I layout (sampled timing at the paper's problem size) ==")
    cfg = AspConfig(n=16384, nprocs=16)
    rows = {}
    for label, stack in (("Open MPI", stacks.TUNED_SM),
                         ("MPICH2", stacks.MPICH2_SM),
                         ("KNEM Coll", stacks.KNEM_COLL)):
        t = run_asp_timed("zoot", stack, cfg, sample=128)
        rows[label] = {"bcast": t.bcast_time, "total": t.total_time}
    print(render_table1("zoot", rows))
    print("\n(1/128 iteration sampling; see EXPERIMENTS.md for full runs)")


if __name__ == "__main__":
    main()
