#!/usr/bin/env python3
"""Tuning the hierarchical pipelined Broadcast (a miniature Figure 4).

Sweeps the pipeline segment size of the KNEM Broadcast on IG and prints
the runtime normalized to the unpipelined hierarchical variant — exactly
the paper's Figure 4 presentation ("lower is better").  The full sweep is
``python -m repro.bench fig4``.

Run:  python examples/pipeline_tuning.py
"""

from repro.bench.imb import ImbSettings, imb_time
from repro.mpi import stacks
from repro.units import KiB, MiB, fmt_size

SIZES = [512 * KiB, 2 * MiB, 8 * MiB]
SEGMENTS = [4 * KiB, 16 * KiB, 128 * KiB, 512 * KiB, 2 * MiB]
SETTINGS = ImbSettings(max_iterations=1)


def main():
    print("Hierarchical pipelined KNEM Broadcast on IG (48 ranks)")
    print("normalized to hierarchical-without-pipeline; lower is better\n")
    base = {}
    linear = {}
    for msg in SIZES:
        base[msg] = imb_time("ig", stacks.KNEM_COLL.with_tuning(pipeline=False),
                             48, "bcast", msg, SETTINGS)
        linear[msg] = imb_time(
            "ig", stacks.KNEM_COLL.with_tuning(hierarchical=False),
            48, "bcast", msg, SETTINGS)

    header = f"{'pipeline':>10} " + " ".join(f"{fmt_size(m):>8}" for m in SIZES)
    print(header)
    print("-" * len(header))
    print(f"{'linear':>10} " + " ".join(
        f"{linear[m] / base[m]:8.2f}" for m in SIZES))
    print(f"{'none':>10} " + " ".join(f"{1.0:8.2f}" for _ in SIZES))
    for seg in SEGMENTS:
        stack = stacks.KNEM_COLL.with_tuning(
            pipeline_seg_intermediate=seg, pipeline_seg_large=seg,
            pipeline_large_at=1 << 62)
        cells = []
        for msg in SIZES:
            t = imb_time("ig", stack, 48, "bcast", msg, SETTINGS)
            cells.append(f"{t / base[msg]:8.2f}")
        print(f"{fmt_size(seg):>10} " + " ".join(cells))
    print("\nPaper's Figure 4: hierarchy alone beats linear 2.2-2.4x; a good")
    print("segment size (16K intermediate / 512K large) adds up to ~1.25x;")
    print("4K segments lose it to per-segment synchronization.")


if __name__ == "__main__":
    main()
