"""Root pytest configuration: load the schedule-analysis plugin."""

pytest_plugins = ["repro.analysis.pytest_plugin"]
