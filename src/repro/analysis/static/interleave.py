"""Sleep-set DPOR exploration of extracted collective schedules.

The extractor (:mod:`repro.analysis.static.schedules`) reduces every rank's
schedule to a sequence of abstract operations — message posts, completion
waits, and local kernel/board actions carrying byte-range accesses and
cookie lifecycle verbs.  This module replays those sequences under every
*inequivalent* interleaving:

- **Matching is deterministic.**  Collective schedules always name source,
  destination and a phase-scoped tag, so each ``(src, dst, tag)`` channel
  has exactly one sender and one receiver and messages pair up k-th send to
  k-th receive regardless of global order.  Posting operations are
  therefore never in competition; only *waits* block, and their enabling
  condition (the matching post has executed) is monotone in executed
  operations.  Executing one enabled operation never disables another, so
  a singleton ``{op}`` is a valid persistent set whenever ``op`` is
  independent of **every operation of another rank that has not executed
  yet** (anything reachable without running ``op``).  The explorer
  precomputes that future-conflict relation (overlapping byte access with
  a writer, or copy-vs-destroy on one cookie) and runs a single canonical
  execution through conflict-free regions, branching over all enabled
  operations only where a conflict is still pending — pruned further with
  Godefroid-style sleep sets.  On a schedule with no conflicts anywhere
  (the expected case) the exploration is one linear pass.

- **What it proves.**  An exploration that terminates within budget visits
  every reachable deadlock (wait cycle) and both orders of every co-enabled
  conflicting pair.  Conflicts witnessed here corroborate the vector-clock
  findings of the extractor; deadlocks found here are schedule bugs no
  simulator run is guaranteed to hit.

- **Receipts.**  The result carries the number of complete executions and
  transitions explored, the number of branch states, and the log10 of the
  naive interleaving count (the multinomial ``(Σ len)! / Π len!``) the
  reduction stands in for, so reports can show the reduction factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.analysis.findings import ERROR, WARNING, Finding
from repro.analysis.static.shadowmem import (
    Access,
    accesses_conflict,
    intervals_overlap,
)

__all__ = ["Op", "ExploreResult", "explore_ops", "explore_model",
           "interleaving_log10"]


@dataclass(frozen=True)
class Op:
    """One abstract schedule operation of one rank (program order)."""

    rank: int
    kind: str  # "send" | "recv" | "wait_fin" | "wait_recv" | "local"
    chan: "Optional[tuple[object, ...]]" = None
    idx: int = 0
    accesses: "tuple[Access, ...]" = ()
    cookie_verb: str = ""  # "" | "register" | "copy" | "destroy"
    cookie: int = -1
    gid: int = -1
    label: str = ""

    def describe(self) -> str:
        where = f" on {self.chan}" if self.chan is not None else ""
        what = self.label or self.kind
        return f"rank {self.rank} step {self.gid}: {what}{where}"


@dataclass
class ExploreResult:
    """Findings plus interleaving receipts from one exploration."""

    findings: "list[Finding]" = field(default_factory=list)
    receipts: "dict[str, object]" = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not any(f.severity == ERROR for f in self.findings)


def interleaving_log10(lengths: "Iterable[int]") -> float:
    """log10 of the naive interleaving count ``(Σ len)! / Π (len!)``."""
    lens = [n for n in lengths if n > 0]
    total = sum(lens)
    if total == 0:
        return 0.0
    ln = math.lgamma(total + 1) - sum(math.lgamma(n + 1) for n in lens)
    return ln / math.log(10.0)


def _dependent(a: Op, b: Op) -> bool:
    """Order-sensitive conflict between two ops of *different* ranks."""
    if a.cookie >= 0 and a.cookie == b.cookie:
        verbs = (a.cookie_verb, b.cookie_verb)
        if "destroy" in verbs and verbs != ("destroy", "destroy"):
            return True
    if a.accesses and b.accesses and accesses_conflict(a.accesses, b.accesses):
        return True
    return False


def _future_conflicts(ops: "list[list[Op]]",
                      hb: "Optional[Callable[[int, int], bool]]" = None,
                      ) -> "dict[int, list[tuple[int, int]]]":
    """Map ``id(op)`` -> [(rank, index)] of conflicting ops of other ranks.

    Indexed by object identity (``gid`` may be unset on hand-built ops).
    Pairs are found per address space / per cookie, so the cost is quadratic
    only in the small per-buffer access counts, and the map is empty for a
    conflict-free schedule.

    ``hb(gid_a, gid_b)`` — when provided — reports pairs already ordered in
    *every* interleaving (message matching is deterministic, so the
    happens-before relation of the extraction holds universally); such pairs
    are benign and excluded, which keeps the exploration of a race-free
    schedule to a single linear pass.
    """
    by_space: "dict[object, list[tuple[int, int, Op, Access]]]" = {}
    by_cookie: "dict[int, list[tuple[int, int, Op]]]" = {}
    for rank, seq in enumerate(ops):
        for idx, op in enumerate(seq):
            for acc in op.accesses:
                by_space.setdefault(acc.space, []).append(
                    (rank, idx, op, acc))
            if op.cookie >= 0 and op.cookie_verb in ("copy", "destroy"):
                by_cookie.setdefault(op.cookie, []).append((rank, idx, op))
    conflicts: "dict[int, list[tuple[int, int]]]" = {}

    def link(ra: int, ia: int, oa: Op, rb: int, ib: int, ob: Op) -> None:
        if hb is not None and oa.gid >= 0 and ob.gid >= 0 \
                and hb(oa.gid, ob.gid):
            return
        conflicts.setdefault(id(oa), []).append((rb, ib))
        conflicts.setdefault(id(ob), []).append((ra, ia))

    for entries in by_space.values():
        for i, (ra, ia, oa, aa) in enumerate(entries):
            for rb, ib, ob, ab in entries[i + 1:]:
                if ra == rb or not (aa.write or ab.write):
                    continue
                if intervals_overlap(aa.start, aa.end, ab.start, ab.end):
                    link(ra, ia, oa, rb, ib, ob)
    for entries in by_cookie.values():
        for i, (ra, ia, oa) in enumerate(entries):
            for rb, ib, ob in entries[i + 1:]:
                if ra == rb:
                    continue
                verbs = (oa.cookie_verb, ob.cookie_verb)
                if "destroy" in verbs and verbs != ("destroy", "destroy"):
                    link(ra, ia, oa, rb, ib, ob)
    return conflicts


class _Explorer:
    def __init__(self, ops: "list[list[Op]]", max_transitions: int,
                 hb: "Optional[Callable[[int, int], bool]]" = None):
        self.ops = ops
        self.nranks = len(ops)
        self.max_transitions = max_transitions
        self.hb = hb
        self.future_conflicts = _future_conflicts(ops, hb=hb)
        self.pc = [0] * self.nranks
        self.sent: "dict[tuple[object, ...], int]" = {}
        self.rcvd: "dict[tuple[object, ...], int]" = {}
        self.cookies_live: "set[int]" = set()
        self.transitions = 0
        self.executions = 0
        self.branch_states = 0
        self.deadlocks: "list[str]" = []
        self.race_witnesses: "dict[tuple[int, int], tuple[Op, Op]]" = {}
        self.cookie_witnesses: "dict[tuple[int, int], tuple[Op, Op]]" = {}
        self.bounded = False

    # -- state transitions (with undo) ------------------------------------
    def _next_op(self, rank: int) -> "Optional[Op]":
        seq = self.ops[rank]
        pc = self.pc[rank]
        return seq[pc] if pc < len(seq) else None

    def _enabled(self, op: Op) -> bool:
        if op.kind == "wait_recv":
            assert op.chan is not None
            return self.sent.get(op.chan, 0) > op.idx
        if op.kind == "wait_fin":
            assert op.chan is not None
            return self.rcvd.get(op.chan, 0) > op.idx
        return True

    def _execute(self, op: Op) -> None:
        self.pc[op.rank] += 1
        self.transitions += 1
        if op.kind == "send":
            assert op.chan is not None
            self.sent[op.chan] = self.sent.get(op.chan, 0) + 1
        elif op.kind == "recv":
            assert op.chan is not None
            self.rcvd[op.chan] = self.rcvd.get(op.chan, 0) + 1
        elif op.cookie_verb == "register":
            self.cookies_live.add(op.cookie)
        elif op.cookie_verb == "destroy":
            self.cookies_live.discard(op.cookie)
        elif op.cookie_verb == "copy" and op.cookie not in self.cookies_live:
            # a real interleaving in which this copy runs against a dead
            # cookie — keep one witness per (copy, cookie) pair
            key = (op.gid, op.cookie)
            self.cookie_witnesses.setdefault(key, (op, op))

    def _undo(self, op: Op) -> None:
        self.pc[op.rank] -= 1
        if op.kind == "send":
            assert op.chan is not None
            self.sent[op.chan] -= 1
        elif op.kind == "recv":
            assert op.chan is not None
            self.rcvd[op.chan] -= 1
        elif op.cookie_verb == "register":
            self.cookies_live.discard(op.cookie)
        elif op.cookie_verb == "destroy":
            self.cookies_live.add(op.cookie)

    # -- the DFS ----------------------------------------------------------
    def run(self) -> None:
        frames: "list[_Frame]" = [self._open_state(set())]
        while frames:
            fr = frames[-1]
            if fr.child_op is not None:
                self._undo(fr.child_op)
                fr.sleep.add(fr.child_op.rank)
                fr.child_op = None
            if self.transitions >= self.max_transitions:
                self.bounded = True
                frames.pop()
                continue
            rank = fr.take()
            if rank is None:
                frames.pop()
                continue
            op = self._next_op(rank)
            assert op is not None
            self._execute(op)
            fr.child_op = op
            child_sleep = {s for s in fr.sleep
                           if not self._sleep_wakes(s, op)}
            frames.append(self._open_state(child_sleep))
        if not frames:
            return

    def _pending_conflict(self, op: Op) -> bool:
        """Does ``op`` conflict with an op of another rank not yet run?"""
        for rank, idx in self.future_conflicts.get(id(op), ()):
            if idx >= self.pc[rank]:
                return True
        return False

    def _sleep_wakes(self, sleeping_rank: int, executed: Op) -> bool:
        other = self._next_op(sleeping_rank)
        return other is not None and _dependent(other, executed)

    def _open_state(self, sleep: "set[int]") -> "_Frame":
        nexts = [(r, op) for r in range(self.nranks)
                 for op in (self._next_op(r),) if op is not None]
        enabled = [(r, op) for r, op in nexts if self._enabled(op)]
        if not enabled:
            if nexts:  # some rank still has work: a genuine wait cycle
                blocked = "; ".join(op.describe() for _r, op in nexts)
                self.deadlocks.append(blocked)
            else:
                self.executions += 1
            return _Frame([], sleep)
        # witness scan over co-enabled pairs (both orders are reachable
        # once we branch, so a co-enabled conflict is a proven race)
        for i, (ra, oa) in enumerate(enabled):
            for rb, ob in enabled[i + 1:]:
                if ra == rb or not _dependent(oa, ob):
                    continue
                if self.hb is not None and oa.gid >= 0 and ob.gid >= 0 \
                        and self.hb(oa.gid, ob.gid):
                    continue  # ordered in every interleaving: benign
                if oa.accesses and ob.accesses \
                        and accesses_conflict(oa.accesses, ob.accesses):
                    key = (min(oa.gid, ob.gid), max(oa.gid, ob.gid))
                    self.race_witnesses.setdefault(key, (oa, ob))
                if oa.cookie >= 0 and oa.cookie == ob.cookie \
                        and "destroy" in (oa.cookie_verb, ob.cookie_verb):
                    key = (min(oa.gid, ob.gid), max(oa.gid, ob.gid))
                    self.cookie_witnesses.setdefault(key, (oa, ob))
        # persistent-set decision: a singleton {op} is valid only if op is
        # independent of every not-yet-executed op of other ranks; if any
        # enabled op still has a pending conflict, branch over all enabled
        if any(self._pending_conflict(op) for _r, op in enabled):
            self.branch_states += 1
            choices = [r for r, _op in enabled if r not in sleep]
        else:
            runnable = [r for r, _op in enabled if r not in sleep]
            choices = runnable[:1]
        if not choices:
            # every enabled op is asleep: this branch is covered elsewhere
            self.executions += 0
            return _Frame([], sleep)
        return _Frame(choices, sleep)


@dataclass
class _Frame:
    choices: "list[int]"
    sleep: "set[int]"
    i: int = 0
    child_op: "Optional[Op]" = None

    def take(self) -> "Optional[int]":
        while self.i < len(self.choices):
            rank = self.choices[self.i]
            self.i += 1
            if rank not in self.sleep:
                return rank
        return None


def explore_ops(ops: "list[list[Op]]",
                max_transitions: int = 250_000,
                hb: "Optional[Callable[[int, int], bool]]" = None,
                ) -> ExploreResult:
    """Explore every inequivalent interleaving of per-rank op sequences."""
    ex = _Explorer(ops, max_transitions, hb=hb)
    ex.run()
    result = ExploreResult()
    for blocked in sorted(set(ex.deadlocks)):
        result.findings.append(Finding(
            checker="interleave", category="deadlock", severity=ERROR,
            message=f"wait cycle: an interleaving exists in which no rank "
                    f"can progress — blocked ops: {blocked}"))
    for _key, (oa, ob) in sorted(ex.cookie_witnesses.items()):
        if oa is ob:
            msg = (f"{oa.describe()} can execute after cookie "
                   f"{oa.cookie:#x} is destroyed in a real interleaving")
        else:
            msg = (f"unordered copy/destroy on cookie {oa.cookie:#x}: "
                   f"{oa.describe()} vs {ob.describe()}")
        result.findings.append(Finding(
            checker="interleave", category="cookie-order", severity=ERROR,
            message=msg))
    for _key, (oa, ob) in sorted(ex.race_witnesses.items()):
        result.findings.append(Finding(
            checker="interleave", category="race-witness", severity=ERROR,
            message=f"co-enabled conflicting accesses (both orders "
                    f"reachable): {oa.describe()} vs {ob.describe()}"))
    if ex.bounded:
        result.findings.append(Finding(
            checker="interleave", category="exploration-bounded",
            severity=WARNING,
            message=f"exploration stopped at {ex.transitions} transitions "
                    f"(budget {max_transitions}); coverage is partial"))
    result.receipts = {
        "schedule_steps": sum(len(seq) for seq in ops),
        "executions": ex.executions,
        "transitions": ex.transitions,
        "branch_states": ex.branch_states,
        "deadlocks": len(set(ex.deadlocks)),
        "interleavings_log10": round(
            interleaving_log10(len(seq) for seq in ops), 2),
        "bounded": ex.bounded,
    }
    return result


def explore_model(model: object,
                  max_transitions: int = 250_000) -> ExploreResult:
    """Explore a :class:`~repro.analysis.static.schedules.ScheduleModel`.

    The model's vector clocks feed the ``hb`` predicate: pairs the unique
    match graph already orders never force a branch.
    """
    ops = getattr(model, "replay")
    vcs = {step.gid: step.vc for step in getattr(model, "steps")}

    def hb(gid_a: int, gid_b: int) -> bool:
        va, vb = vcs.get(gid_a), vcs.get(gid_b)
        if va is None or vb is None:
            return False
        return va.leq(vb) or vb.leq(va)

    return explore_ops(ops, max_transitions=max_transitions, hb=hb)
