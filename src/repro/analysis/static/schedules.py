"""Symbolic extraction and verification of collective schedules.

The schedule builders under ``repro/coll`` are generator functions that
describe *what* a collective does — who registers which byte range, who
copies what through which cookie, who waits on whom — while the simulator
only supplies *when*.  This module runs the **real, unmodified** builders
against symbolic stand-ins for the machine substrate (no
:class:`~repro.simtime.core.Simulator` instance is ever created), producing
a :class:`ScheduleModel`: per-rank ordered steps, message match edges,
cookie lifecycles and byte-range accesses, with an online vector clock per
rank.

:func:`verify_model` then checks happens-before properties that hold for
**all** interleavings of the schedule, not just the canonical extraction
order:

- ``byte-range-race`` — two HB-unordered accesses of different ranks
  overlap on a byte with at least one writer (uncovered overlap);
- ``use-after-invalidate`` / ``use-after-invalidate-window`` — a copy
  through a cookie is not strictly ordered before the cookie's
  deregistration;
- ``cookie-leak`` / ``forced-reclaim`` — a region never released on some
  completion path;
- ``board-unsynchronized`` — a board read not ordered after the matching
  post;
- ``deadlock`` — the canonical execution wedges (plus the DPOR explorer's
  all-interleavings wait-cycle proof, see
  :mod:`repro.analysis.static.interleave`).

Extraction soundness leans on two properties of the repro's collectives:
message matching is deterministic (every recv names source and a
phase-scoped tag), so there is exactly one match graph; and an HB-unordered
conflicting pair implies a real interleaving that reorders it.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.analysis.findings import ERROR, WARNING, Finding
from repro.analysis.static.interleave import ExploreResult, Op, explore_model
from repro.analysis.static.shadowmem import Access, intervals_overlap
from repro.analysis.vectorclock import VectorClock
from repro.errors import (
    HardwareConfigError,
    KnemBoundsError,
    KnemInvalidCookie,
    KnemPermissionError,
)
from repro.hardware.machines import get_machine
from repro.hardware.spec import MachineSpec
from repro.kernel.costs import KernelCosts
from repro.kernel.knem import PROT_READ, PROT_WRITE
from repro.topology.binding import bind_ranks
from repro.units import KiB

__all__ = [
    "ScheduleModel",
    "VerifyResult",
    "extract_model",
    "verify_model",
    "verify_schedule",
    "verify_registry",
    "component_stack",
]

_MAX_STEPS = 500_000


# ---------------------------------------------------------------------------
# model types
# ---------------------------------------------------------------------------

@dataclass
class Step:
    """One recorded schedule action with its vector-clock snapshot."""

    gid: int
    rank: int
    kind: str
    vc: VectorClock
    accesses: "tuple[Access, ...]" = ()
    info: "dict[str, Any]" = field(default_factory=dict)

    def describe(self) -> str:
        extra = ", ".join(f"{k}={v}" for k, v in self.info.items()
                          if k in ("dest", "src", "cookie", "nbytes", "tag"))
        return f"step {self.gid} (rank {self.rank} {self.kind}" + \
            (f", {extra})" if extra else ")")


@dataclass
class RegionModel:
    """Lifecycle of one symbolic KNEM region."""

    cookie: int
    owner_rank: int
    owner_core: int
    buf: Any
    offset: int
    length: int
    prot: int
    register_step: Step
    destroy_step: "Optional[Step]" = None
    forced: bool = False
    copies: "list[Step]" = field(default_factory=list)


@dataclass
class ScheduleModel:
    """The extracted happens-before model of one collective schedule."""

    nranks: int
    steps: "list[Step]" = field(default_factory=list)
    replay: "list[list[Op]]" = field(default_factory=list)
    regions: "dict[int, RegionModel]" = field(default_factory=dict)
    board_posts: "dict[Any, Step]" = field(default_factory=dict)
    board_gets: "list[tuple[Any, Step]]" = field(default_factory=list)
    findings: "list[Finding]" = field(default_factory=list)
    messages: int = 0
    deadlocked: bool = False
    error: str = ""

    def accesses(self) -> "dict[Any, list[tuple[Step, Access]]]":
        spaces: "dict[Any, list[tuple[Step, Access]]]" = {}
        for step in self.steps:
            for acc in step.accesses:
                spaces.setdefault(acc.space, []).append((step, acc))
        return spaces


def _concurrent(a: Step, b: Step) -> bool:
    return not a.vc.leq(b.vc) and not b.vc.leq(a.vc)


# ---------------------------------------------------------------------------
# symbolic substrate
# ---------------------------------------------------------------------------

class _Ready:
    """An immediately-completed pseudo event (timeouts, local copies)."""

    __slots__ = ("value",)

    def __init__(self, value: Any = None):
        self.value = value


class SymEvent:
    """A blocking point in a symbolic schedule (recv delivery or fin)."""

    __slots__ = ("triggered", "value", "join_vc", "ref")

    def __init__(self, ref: "Optional[tuple[Any, ...]]" = None):
        self.triggered = False
        self.value: Any = None
        self.join_vc: Optional[VectorClock] = None
        self.ref = ref

    def succeed(self, value: Any = None,
                join_vc: Optional[VectorClock] = None) -> None:
        self.triggered = True
        self.value = value
        self.join_vc = join_vc


class SymRequest:
    __slots__ = ("event",)

    def __init__(self, event: SymEvent):
        self.event = event


@dataclass(frozen=True)
class SymStatus:
    source: int
    tag: Any
    nbytes: int
    payload: Any = None


class SymBuffer:
    """A symbolic buffer: an address space with a size and no bytes."""

    __slots__ = ("id", "size", "label", "rank", "backed", "data", "array")

    def __init__(self, buf_id: int, size: int, label: str, rank: int):
        self.id = buf_id
        self.size = size
        self.label = label
        self.rank = rank
        self.backed = False  # keeps reduction combines symbolic
        self.data = None
        self.array = None

    def check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise KnemBoundsError(
                f"[{offset}, {offset + nbytes}) outside buffer "
                f"{self.label or self.id} of size {self.size}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SymBuffer #{self.id} {self.label} {self.size}B r{self.rank}>"


class _SymHealth:
    """Stand-in for :class:`repro.faults.health.KnemHealth` (never trips)."""

    def __init__(self) -> None:
        self.fail_limit = 8
        self.disqualified = False

    def note_success(self) -> None:
        pass

    def note_failure(self, *_args: Any) -> None:
        pass


@dataclass
class _Chan:
    queue: "deque[_Envelope]" = field(default_factory=deque)
    waiting: "deque[_RecvPost]" = field(default_factory=deque)
    sends: int = 0
    recvs: int = 0


@dataclass
class _Envelope:
    payload: Any
    nbytes: int
    rendezvous: bool
    is_obj: bool
    send_vc: VectorClock
    event: SymEvent


@dataclass
class _RecvPost:
    rank: int
    req: SymRequest
    post_vc: VectorClock
    is_obj: bool
    buf: Optional[SymBuffer] = None
    offset: int = 0
    nbytes: int = 0


#: matches ``repro.mpi.pml.OBJECT_NBYTES`` (control messages are tiny)
_OBJECT_NBYTES = 8


class SymKnem:
    """Symbolic KNEM driver: records lifecycle steps, mimics ioctl checks."""

    def __init__(self, ex: "_Extractor"):
        self._ex = ex
        self._cookie_seq = itertools.count(0xA000)
        self.regions: "dict[int, RegionModel]" = {}
        self.health = _SymHealth()
        self.fault_plan: Optional[Any] = None

    def create_region(self, core: int, buffer: SymBuffer, offset: int,
                      length: int, prot: int) -> "Iterator[Any]":
        if False:  # pragma: no cover - generator marker
            yield None
        ex = self._ex
        if prot & ~(PROT_READ | PROT_WRITE) or prot == 0:
            ex.finding(ERROR, "symknem", "bad-protection",
                       f"register with bad protection flags {prot:#x}")
            raise KnemPermissionError(f"bad protection flags {prot:#x}")
        try:
            buffer.check_range(offset, length)
        except KnemBoundsError as exc:
            ex.finding(ERROR, "symknem", "register-out-of-bounds", str(exc))
            raise
        cookie = next(self._cookie_seq)
        step = ex.record("register", cookie=cookie, buf=buffer.id,
                         offset=offset, length=length, prot=prot)
        region = RegionModel(cookie=cookie, owner_rank=step.rank,
                             owner_core=core, buf=buffer.id, offset=offset,
                             length=length, prot=prot, register_step=step)
        self.regions[cookie] = region
        ex.model.regions[cookie] = region
        ex.replay_op(Op(rank=step.rank, kind="local", cookie_verb="register",
                        cookie=cookie, gid=step.gid,
                        label=f"register cookie {cookie:#x}"))
        return cookie

    def copy(self, core: int, cookie: int, region_offset: int,
             local: SymBuffer, local_offset: int, nbytes: int, write: bool,
             flags: int = 0) -> "Iterator[Any]":
        if False:  # pragma: no cover - generator marker
            yield None
        ex = self._ex
        region = self.regions.get(cookie)
        kind = "write" if write else "read"
        if region is None or region.destroy_step is not None or region.forced:
            ex.finding(ERROR, "symknem", "use-after-invalidate",
                       f"{kind} copy through cookie {cookie:#x} after it "
                       f"was destroyed (canonical order)")
            raise KnemInvalidCookie(f"cookie {cookie:#x} is not a live region")
        want = PROT_WRITE if write else PROT_READ
        if not region.prot & want:
            ex.finding(ERROR, "symknem", "direction-violation",
                       f"{kind} copy against region {cookie:#x} protection "
                       f"{region.prot:#x}")
            raise KnemPermissionError(
                f"region {cookie:#x} does not allow {kind} access")
        if region_offset < 0 or nbytes < 0 \
                or region_offset + nbytes > region.length:
            ex.finding(ERROR, "symknem", "copy-out-of-bounds",
                       f"copy [{region_offset}, {region_offset + nbytes}) "
                       f"outside region {cookie:#x} of length {region.length}")
            raise KnemBoundsError(
                f"[{region_offset}, {region_offset + nbytes}) outside "
                f"region of length {region.length}")
        local.check_range(local_offset, nbytes)
        start = region.offset + region_offset
        accesses = (
            Access(region.buf, start, start + nbytes, write),
            Access(local.id, local_offset, local_offset + nbytes, not write),
        )
        step = ex.record("knem-copy", accesses=accesses, cookie=cookie,
                         nbytes=nbytes, write=write)
        region.copies.append(step)
        ex.replay_op(Op(rank=step.rank, kind="local", accesses=accesses,
                        cookie_verb="copy", cookie=cookie, gid=step.gid,
                        label=f"{kind} copy via cookie {cookie:#x}"))
        return None

    def destroy_region(self, core: int, cookie: int) -> "Iterator[Any]":
        if False:  # pragma: no cover - generator marker
            yield None
        ex = self._ex
        region = self.regions.get(cookie)
        if region is None or region.destroy_step is not None or region.forced:
            ex.finding(ERROR, "symknem", "double-destroy",
                       f"destroy of cookie {cookie:#x} which is not live")
            raise KnemInvalidCookie(f"cookie {cookie:#x} is not a live region")
        step = ex.record("destroy", cookie=cookie)
        region.destroy_step = step
        ex.replay_op(Op(rank=step.rank, kind="local", cookie_verb="destroy",
                        cookie=cookie, gid=step.gid,
                        label=f"destroy cookie {cookie:#x}"))
        return None

    def destroy_region_safe(self, core: int, cookie: int) -> "Iterator[Any]":
        yield from self.destroy_region(core, cookie)

    def reclaim(self, core: int, cookie: int) -> None:
        region = self.regions.get(cookie)
        if region is None or region.destroy_step is not None or region.forced:
            return
        step = self._ex.record("reclaim", cookie=cookie)
        region.forced = True
        region.destroy_step = step
        self._ex.replay_op(Op(rank=step.rank, kind="local",
                              cookie_verb="destroy", cookie=cookie,
                              gid=step.gid,
                              label=f"reclaim cookie {cookie:#x}"))

    def reclaim_owned(self, core: int) -> "list[int]":
        cookies = [c for c, r in self.regions.items()
                   if r.owner_core == core and r.destroy_step is None]
        for cookie in cookies:
            self.reclaim(core, cookie)
        return cookies


class SymMem:
    def __init__(self, ex: "_Extractor"):
        self._ex = ex

    def copy(self, core: int, src: SymBuffer, src_off: int, dst: SymBuffer,
             dst_off: int, nbytes: int, label: str = "",
             kernel: bool = False) -> _Ready:
        src.check_range(src_off, nbytes)
        dst.check_range(dst_off, nbytes)
        accesses = (Access(src.id, src_off, src_off + nbytes, False),
                    Access(dst.id, dst_off, dst_off + nbytes, True))
        step = self._ex.record("local-copy", accesses=accesses,
                               nbytes=nbytes, label=label)
        self._ex.replay_op(Op(rank=step.rank, kind="local",
                              accesses=accesses, gid=step.gid,
                              label=f"local copy ({label})"))
        return _Ready(None)


class SymSim:
    def timeout(self, _delay: float) -> _Ready:
        return _Ready(None)


class _SymShm:
    def __init__(self) -> None:
        self.costs = KernelCosts()


class SymMachine:
    def __init__(self, ex: "_Extractor", spec: MachineSpec):
        self.spec = spec
        self.sim = SymSim()
        self.mem = SymMem(ex)
        self.shm = _SymShm()
        self.knem = SymKnem(ex)


class SymProc:
    def __init__(self, ex: "_Extractor", rank: int, core: int):
        self._ex = ex
        self.rank = rank
        self.core = core

    def alloc(self, nbytes: int, label: str = "",
              backed: bool = True) -> SymBuffer:
        return self._ex.alloc(nbytes, label, self.rank)

    def elem_ops(self, n: int) -> _Ready:
        return _Ready(None)

    def compute(self, seconds: float) -> _Ready:
        return _Ready(None)


class SymWorld:
    def __init__(self, machine: SymMachine, stack: Any, size: int):
        self.machine = machine
        self.stack = stack
        self.size = size


class _Board:
    """The collective bulletin board, instrumented for HB checking."""

    def __init__(self, ex: "_Extractor"):
        self._ex = ex
        self._data: "dict[Any, Any]" = {}

    def __setitem__(self, key: Any, value: Any) -> None:
        space = ("board",) + tuple(key) if isinstance(key, tuple) \
            else ("board", key)
        acc = (Access(space, 0, 1, True),)
        step = self._ex.record("board-post", accesses=acc, key=key)
        self._ex.model.board_posts[key] = step
        self._ex.replay_op(Op(rank=step.rank, kind="local", accesses=acc,
                              gid=step.gid, label=f"board post {key}"))
        self._data[key] = value

    def __getitem__(self, key: Any) -> Any:
        value = self._data[key]  # KeyError -> CommunicatorError upstream
        space = ("board",) + tuple(key) if isinstance(key, tuple) \
            else ("board", key)
        acc = (Access(space, 0, 1, False),)
        step = self._ex.record("board-get", accesses=acc, key=key)
        self._ex.model.board_gets.append((key, step))
        self._ex.replay_op(Op(rank=step.rank, kind="local", accesses=acc,
                              gid=step.gid, label=f"board get {key}"))
        return value

    def __contains__(self, key: Any) -> bool:
        return key in self._data


class _Shared:
    def __init__(self, ex: "_Extractor"):
        self.board = _Board(ex)
        self.coll_cache: "dict[Any, Any]" = {}


class SymComm:
    """Duck-typed :class:`repro.mpi.communicator.Comm` for one rank."""

    def __init__(self, ex: "_Extractor", rank: int):
        self._ex = ex
        self.rank = rank
        self.world = ex.world
        self.shared = ex.shared
        self.proc = ex.procs[rank]
        self.cid = 1

    @property
    def size(self) -> int:
        return self._ex.nprocs

    def core_of(self, rank: int) -> int:
        return self._ex.cores[rank]

    # -- posts ------------------------------------------------------------
    def isend(self, dest: int, buf: SymBuffer, offset: int = 0,
              nbytes: "Optional[int]" = None, tag: Any = 0) -> SymRequest:
        n = buf.size - offset if nbytes is None else nbytes
        return self._ex.post_send(self.rank, dest, tag, n,
                                  buf=buf, offset=offset)

    def isend_obj(self, dest: int, obj: Any, tag: Any = 0) -> SymRequest:
        return self._ex.post_send(self.rank, dest, tag, _OBJECT_NBYTES,
                                  payload=obj, is_obj=True)

    def irecv(self, source: int, buf: SymBuffer, offset: int = 0,
              nbytes: "Optional[int]" = None, tag: Any = 0) -> SymRequest:
        n = buf.size - offset if nbytes is None else nbytes
        return self._ex.post_recv(self.rank, source, tag,
                                  buf=buf, offset=offset, nbytes=n)

    # -- blocking wrappers (mirror ``Comm``'s generators) ----------------
    def send(self, dest: int, buf: SymBuffer, offset: int = 0,
             nbytes: "Optional[int]" = None, tag: Any = 0) -> "Iterator[Any]":
        req = self.isend(dest, buf, offset, nbytes, tag)
        yield req.event

    def send_obj(self, dest: int, obj: Any, tag: Any = 0) -> "Iterator[Any]":
        req = self.isend_obj(dest, obj, tag)
        yield req.event

    def recv(self, source: int, buf: SymBuffer, offset: int = 0,
             nbytes: "Optional[int]" = None, tag: Any = 0) -> "Iterator[Any]":
        req = self.irecv(source, buf, offset, nbytes, tag)
        status = yield req.event
        return status

    def recv_obj(self, source: int, tag: Any = 0) -> "Iterator[Any]":
        req = self._ex.post_recv(self.rank, source, tag, is_obj=True)
        status = yield req.event
        return status.payload, status

    def sendrecv(self, dest: int, sendbuf: SymBuffer, send_off: int,
                 send_n: int, source: int, recvbuf: SymBuffer, recv_off: int,
                 recv_n: int, tag: Any = 0) -> "Iterator[Any]":
        rreq = self.irecv(source, recvbuf, recv_off, recv_n, tag)
        sreq = self.isend(dest, sendbuf, send_off, send_n, tag)
        yield sreq.event
        status = yield rreq.event
        return status


# ---------------------------------------------------------------------------
# extraction engine
# ---------------------------------------------------------------------------

@dataclass
class _RankState:
    gen: "Iterator[Any]"
    vc: VectorClock
    blocked_on: Optional[SymEvent] = None
    resume: Any = None
    done: bool = False
    failed: bool = False


class _Extractor:
    def __init__(self, spec: MachineSpec, stack: Any, nprocs: int):
        self.spec = spec
        self.stack = stack
        self.nprocs = nprocs
        self.cores = bind_ranks(spec, nprocs)
        self.rank_of_core = {c: r for r, c in enumerate(self.cores)}
        self.model = ScheduleModel(nranks=nprocs,
                                   replay=[[] for _ in range(nprocs)])
        self.machine = SymMachine(self, spec)
        self.world = SymWorld(self.machine, stack, nprocs)
        self.procs = [SymProc(self, r, c) for r, c in enumerate(self.cores)]
        self.shared = _Shared(self)
        self.comms = [SymComm(self, r) for r in range(nprocs)]
        self.channels: "dict[tuple[Any, ...], _Chan]" = {}
        self.current_rank = 0
        self._gid = itertools.count(0)
        self._buf_seq = itertools.count(1)
        self.states: "list[_RankState]" = []

    # -- bookkeeping ------------------------------------------------------
    def alloc(self, nbytes: int, label: str, rank: int) -> SymBuffer:
        return SymBuffer(next(self._buf_seq), nbytes, label, rank)

    def finding(self, severity: str, checker: str, category: str,
                message: str, rank: "Optional[int]" = None) -> None:
        self.model.findings.append(Finding(
            checker=checker, category=category, severity=severity,
            message=message,
            rank=self.current_rank if rank is None else rank))

    def record(self, kind: str, rank: "Optional[int]" = None,
               accesses: "tuple[Access, ...]" = (), **info: Any) -> Step:
        r = self.current_rank if rank is None else rank
        vc = self.states[r].vc
        vc.tick(r)
        step = Step(gid=next(self._gid), rank=r, kind=kind, vc=vc.copy(),
                    accesses=accesses, info=info)
        self.model.steps.append(step)
        if step.gid > _MAX_STEPS:
            raise RuntimeError("schedule extraction exceeded step budget")
        return step

    def record_async(self, kind: str, rank: int, vc: VectorClock,
                     accesses: "tuple[Access, ...]" = (),
                     **info: Any) -> Step:
        step = Step(gid=next(self._gid), rank=rank, kind=kind, vc=vc,
                    accesses=accesses, info=info)
        self.model.steps.append(step)
        return step

    def replay_op(self, op: Op) -> None:
        self.model.replay[op.rank].append(op)

    def channel(self, key: "tuple[Any, ...]") -> _Chan:
        ch = self.channels.get(key)
        if ch is None:
            ch = self.channels[key] = _Chan()
        return ch

    # -- message plumbing -------------------------------------------------
    def post_send(self, src: int, dest: int, tag: Any, nbytes: int,
                  buf: Optional[SymBuffer] = None, offset: int = 0,
                  payload: Any = None, is_obj: bool = False) -> SymRequest:
        chan = (src, dest, tag)
        ch = self.channel(chan)
        accesses: "tuple[Access, ...]" = ()
        if not is_obj and buf is not None and nbytes > 0:
            accesses = (Access(buf.id, offset, offset + nbytes, False),)
        step = self.record("send", rank=src, accesses=accesses, dest=dest,
                           tag=tag, nbytes=nbytes, obj=is_obj)
        rendezvous = (not is_obj) and nbytes > self.stack.eager_limit
        idx = ch.sends
        ch.sends += 1
        self.replay_op(Op(rank=src, kind="send", chan=chan, idx=idx,
                          accesses=accesses, gid=step.gid,
                          label=("rendezvous send" if rendezvous
                                 else "eager send")))
        ev = SymEvent(ref=("fin", chan, idx) if rendezvous else None)
        req = SymRequest(ev)
        env = _Envelope(payload=payload, nbytes=nbytes, rendezvous=rendezvous,
                        is_obj=is_obj, send_vc=step.vc, event=ev)
        if not rendezvous:
            ev.succeed(None)
        self.model.messages += 1
        if ch.waiting:
            self._match(chan, env, ch.waiting.popleft())
        else:
            ch.queue.append(env)
        return req

    def post_recv(self, dst: int, source: int, tag: Any,
                  buf: Optional[SymBuffer] = None, offset: int = 0,
                  nbytes: int = 0, is_obj: bool = False) -> SymRequest:
        chan = (source, dst, tag)
        ch = self.channel(chan)
        idx = ch.recvs
        ch.recvs += 1
        step = self.record("recv-post", rank=dst, src=source, tag=tag)
        accesses: "tuple[Access, ...]" = ()
        if not is_obj and buf is not None and nbytes > 0:
            accesses = (Access(buf.id, offset, offset + nbytes, True),)
        self.replay_op(Op(rank=dst, kind="recv", chan=chan, idx=idx,
                          accesses=accesses, gid=step.gid,
                          label="recv post"))
        ev = SymEvent(ref=("recv", chan, idx))
        req = SymRequest(ev)
        post = _RecvPost(rank=dst, req=req, post_vc=step.vc, is_obj=is_obj,
                         buf=buf, offset=offset, nbytes=nbytes)
        if ch.queue:
            self._match(chan, ch.queue.popleft(), post)
        else:
            ch.waiting.append(post)
        return req

    def _match(self, chan: "tuple[Any, ...]", env: _Envelope,
               post: _RecvPost) -> None:
        src, dst, tag = chan
        if not env.is_obj and not post.is_obj and env.nbytes > post.nbytes:
            self.finding(ERROR, "symcomm", "truncation",
                         f"message of {env.nbytes} B from rank {src} "
                         f"truncated into a {post.nbytes} B recv at rank "
                         f"{dst} (tag {tag})", rank=dst)
        delivery_vc = post.post_vc.copy()
        delivery_vc.join(env.send_vc)
        accesses: "tuple[Access, ...]" = ()
        if not env.is_obj and post.buf is not None:
            n = min(env.nbytes, post.nbytes)
            if n > 0:
                accesses = (Access(post.buf.id, post.offset,
                                   post.offset + n, True),)
        self.record_async("deliver", post.rank, delivery_vc,
                          accesses=accesses, src=src, tag=tag,
                          nbytes=env.nbytes)
        status = SymStatus(source=src, tag=tag, nbytes=env.nbytes,
                           payload=env.payload)
        post.req.event.succeed(status, join_vc=delivery_vc)
        if env.rendezvous:
            env.event.succeed(None, join_vc=delivery_vc)

    # -- the cooperative scheduler ---------------------------------------
    def run(self, programs: "list[Iterator[Any]]") -> ScheduleModel:
        self.states = [_RankState(gen=g, vc=VectorClock(self.nprocs))
                       for g in programs]
        try:
            self._drive()
        except RuntimeError as exc:
            self.model.error = str(exc)
            self.finding(ERROR, "symcomm", "extraction-error", str(exc))
        return self.model

    def _drive(self) -> None:
        while True:
            progressed = False
            for rank, st in enumerate(self.states):
                if st.done:
                    continue
                ev = st.blocked_on
                if ev is not None:
                    if not ev.triggered:
                        continue
                    st.resume = ev.value
                    if ev.join_vc is not None:
                        st.vc.join(ev.join_vc)
                    st.blocked_on = None
                progressed = True
                self._step_rank(rank, st)
            if all(st.done for st in self.states):
                return
            if not progressed:
                self._report_deadlock()
                return

    def _step_rank(self, rank: int, st: _RankState) -> None:
        self.current_rank = rank
        while True:
            try:
                yielded = st.gen.send(st.resume)
            except StopIteration:
                st.done = True
                return
            except Exception as exc:  # noqa: BLE001 - surfaced as finding
                st.done = True
                st.failed = True
                self.finding(ERROR, "symcomm", "extraction-error",
                             f"rank {rank} raised {type(exc).__name__}: "
                             f"{exc}", rank=rank)
                return
            st.resume = None
            if isinstance(yielded, _Ready):
                st.resume = yielded.value
                continue
            if isinstance(yielded, SymEvent):
                if yielded.ref is not None:
                    kind, chan, idx = yielded.ref
                    self.replay_op(Op(
                        rank=rank,
                        kind="wait_fin" if kind == "fin" else "wait_recv",
                        chan=chan, idx=idx,
                        label=f"wait {kind} #{idx}"))
                if yielded.triggered:
                    st.resume = yielded.value
                    if yielded.join_vc is not None:
                        st.vc.join(yielded.join_vc)
                    continue
                st.blocked_on = yielded
                return
            st.done = True
            st.failed = True
            self.finding(ERROR, "symcomm", "extraction-error",
                         f"rank {rank} yielded unsupported object "
                         f"{type(yielded).__name__}", rank=rank)
            return

    def _report_deadlock(self) -> None:
        if any(st.failed for st in self.states):
            return  # an extraction error already explains the wedge
        self.model.deadlocked = True
        blocked = []
        for rank, st in enumerate(self.states):
            if st.done or st.blocked_on is None:
                continue
            ref = st.blocked_on.ref
            if ref is None:
                blocked.append(f"rank {rank} waiting on an internal event")
                continue
            kind, chan, idx = ref
            src, dst, tag = chan
            if kind == "recv":
                blocked.append(f"rank {rank} waiting for message #{idx} "
                               f"from rank {src} (tag {tag})")
            else:
                blocked.append(f"rank {rank} waiting for rank {dst} to "
                               f"drain rendezvous send #{idx} (tag {tag})")
        self.model.findings.append(Finding(
            checker="symcomm", category="deadlock", severity=ERROR,
            message="canonical execution wedged: " + "; ".join(blocked)))


# ---------------------------------------------------------------------------
# drivers and public API
# ---------------------------------------------------------------------------

_COMPONENT_STACK_NAMES = {
    "knem": "KNEM_COLL",
    "tuned": "TUNED_KNEM",
    "mpich2": "MPICH2_KNEM",
    "basic": "BASIC_SM",
    "smtree": "SM_TREE",
}


def component_stack(component: str) -> Any:
    """The library stack a component is verified under."""
    from repro.mpi import stacks as _stacks
    try:
        return getattr(_stacks, _COMPONENT_STACK_NAMES[component])
    except KeyError:
        raise KeyError(f"no stack mapping for component {component!r}") \
            from None


def _drive(op: str, coll: Any, ctx: Any, proc: SymProc, nbytes: int,
           size: int) -> "Iterator[Any]":
    """Per-rank driver generator invoking the real component method."""
    if op == "barrier":
        yield from coll.barrier(ctx)
    elif op == "bcast":
        buf = proc.alloc(nbytes, label=f"bcast-r{proc.rank}")
        yield from coll.bcast(ctx, buf, 0, nbytes, 0)
    elif op == "scatter":
        sendbuf = proc.alloc(nbytes * size, label=f"scatter-send-r{proc.rank}")
        recvbuf = proc.alloc(nbytes, label=f"scatter-recv-r{proc.rank}")
        yield from coll.scatter(ctx, sendbuf, recvbuf, nbytes, 0)
    elif op == "gather":
        sendbuf = proc.alloc(nbytes, label=f"gather-send-r{proc.rank}")
        recvbuf = proc.alloc(nbytes * size, label=f"gather-recv-r{proc.rank}")
        yield from coll.gather(ctx, sendbuf, recvbuf, nbytes, 0)
    elif op == "allgather":
        sendbuf = proc.alloc(nbytes, label=f"ag-send-r{proc.rank}")
        recvbuf = proc.alloc(nbytes * size, label=f"ag-recv-r{proc.rank}")
        yield from coll.allgather(ctx, sendbuf, recvbuf, nbytes)
    elif op in ("alltoall", "alltoallv"):
        sendbuf = proc.alloc(nbytes * size, label=f"a2a-send-r{proc.rank}")
        recvbuf = proc.alloc(nbytes * size, label=f"a2a-recv-r{proc.rank}")
        yield from coll.alltoall(ctx, sendbuf, recvbuf, nbytes)
    elif op == "reduce":
        sendbuf = proc.alloc(nbytes, label=f"red-send-r{proc.rank}")
        recvbuf = proc.alloc(nbytes, label=f"red-recv-r{proc.rank}")
        yield from coll.reduce(ctx, sendbuf, recvbuf, nbytes, 0)
    elif op == "allreduce":
        sendbuf = proc.alloc(nbytes, label=f"ared-send-r{proc.rank}")
        recvbuf = proc.alloc(nbytes, label=f"ared-recv-r{proc.rank}")
        yield from coll.allreduce(ctx, sendbuf, recvbuf, nbytes)
    else:
        raise ValueError(f"no symbolic driver for operation {op!r}")


def extract_model(component: str, op: str, machine: "str | MachineSpec",
                  nprocs: int, nbytes: int = 64 * KiB,
                  stack: Any = None,
                  coll_factory: "Optional[Callable[[Any], Any]]" = None,
                  ) -> ScheduleModel:
    """Extract the schedule of one collective without running the simulator.

    ``coll_factory`` overrides component lookup (used by tests to inject
    deliberately broken schedules).
    """
    from repro.coll.base import make_component
    from repro.mpi.communicator import CollCtx

    spec = get_machine(machine) if isinstance(machine, str) else machine
    if stack is None:
        stack = component_stack(component)
    ex = _Extractor(spec, stack, nprocs)
    if coll_factory is None:
        coll = make_component(component, ex.world)
    else:
        coll = coll_factory(ex.world)
    programs = []
    for rank in range(nprocs):
        ctx = CollCtx(ex.comms[rank], seq=1)
        programs.append(_drive(op, coll, ctx, ex.procs[rank], nbytes, nprocs))
    return ex.run(programs)


# ---------------------------------------------------------------------------
# happens-before verification
# ---------------------------------------------------------------------------

_MAX_RACES_PER_SPACE = 8


def _check_races(model: ScheduleModel) -> "list[Finding]":
    findings: "list[Finding]" = []
    for space in sorted(model.accesses(), key=str):
        entries = model.accesses()[space]
        writes = [(s, a) for s, a in entries if a.write]
        if not writes:
            continue
        reported = 0
        for i, (sa, aa) in enumerate(writes):
            others = writes[i + 1:] + [(s, a) for s, a in entries
                                       if not a.write]
            for sb, ab in others:
                if sa.rank == sb.rank:
                    continue
                if not intervals_overlap(aa.start, aa.end, ab.start, ab.end):
                    continue
                if not _concurrent(sa, sb):
                    continue
                kind = "write-write" if ab.write else "read-write"
                findings.append(Finding(
                    checker="schedule", category="byte-range-race",
                    severity=ERROR,
                    message=f"{kind} overlap on {space} "
                            f"[{max(aa.start, ab.start)}, "
                            f"{min(aa.end, ab.end)}) with no happens-before "
                            f"edge: {sa.describe()} vs {sb.describe()}"))
                reported += 1
                if reported >= _MAX_RACES_PER_SPACE:
                    break
            if reported >= _MAX_RACES_PER_SPACE:
                break
    return findings


def _check_cookies(model: ScheduleModel) -> "list[Finding]":
    findings: "list[Finding]" = []
    regions = sorted(model.regions.values(), key=lambda r: r.cookie)
    for region in regions:
        destroy = region.destroy_step
        if destroy is None:
            findings.append(Finding(
                checker="schedule", category="cookie-leak", severity=ERROR,
                message=f"cookie {region.cookie:#x} (registered at "
                        f"{region.register_step.describe()}) is never "
                        f"released on the completion path"))
            continue
        if region.forced:
            findings.append(Finding(
                checker="schedule", category="forced-reclaim",
                severity=WARNING,
                message=f"cookie {region.cookie:#x} only released by "
                        f"forced reclaim ({destroy.describe()}) — abort "
                        f"path, not a schedule release"))
        for copy in region.copies:
            if copy.vc.leq(destroy.vc):
                continue
            category = ("use-after-invalidate"
                        if destroy.vc.leq(copy.vc)
                        else "use-after-invalidate-window")
            findings.append(Finding(
                checker="schedule", category=category, severity=ERROR,
                message=f"{copy.describe()} through cookie "
                        f"{region.cookie:#x} is not ordered before its "
                        f"deregistration ({destroy.describe()}): an "
                        f"interleaving exists where the copy hits a dead "
                        f"cookie"))
    # overlapping concurrent registrations with a writer
    for i, ra in enumerate(regions):
        for rb in regions[i + 1:]:
            if ra.buf != rb.buf:
                continue
            if not (ra.prot & PROT_WRITE or rb.prot & PROT_WRITE):
                continue
            if not intervals_overlap(ra.offset, ra.offset + ra.length,
                                     rb.offset, rb.offset + rb.length):
                continue
            if (ra.destroy_step is not None
                    and ra.destroy_step.vc.leq(rb.register_step.vc)):
                continue
            if (rb.destroy_step is not None
                    and rb.destroy_step.vc.leq(ra.register_step.vc)):
                continue
            findings.append(Finding(
                checker="schedule", category="overlapping-registration",
                severity=WARNING,
                message=f"cookies {ra.cookie:#x} and {rb.cookie:#x} expose "
                        f"overlapping writable ranges of buffer {ra.buf} "
                        f"with concurrent lifetimes"))
    return findings


def _check_board(model: ScheduleModel) -> "list[Finding]":
    findings: "list[Finding]" = []
    for key, get_step in model.board_gets:
        post = model.board_posts.get(key)
        if post is None:
            continue  # the KeyError path already raised upstream
        if post.rank == get_step.rank or post.vc.leq(get_step.vc):
            continue
        findings.append(Finding(
            checker="schedule", category="board-unsynchronized",
            severity=ERROR,
            message=f"board entry {key} read at {get_step.describe()} "
                    f"without a happens-before edge from its post "
                    f"({post.describe()}); needs a barrier"))
    return findings


def _check_direction(model: ScheduleModel, direction: str) -> "list[Finding]":
    if direction not in ("read", "write"):
        return []
    want = PROT_READ if direction == "read" else PROT_WRITE
    findings: "list[Finding]" = []
    for region in model.regions.values():
        if region.prot & ~want:
            findings.append(Finding(
                checker="schedule", category="direction-mismatch",
                severity=ERROR,
                message=f"cookie {region.cookie:#x} registered with "
                        f"protection {region.prot:#x} but the schedule "
                        f"declares direction {direction!r} "
                        f"(over-permissive region)"))
    return findings


def verify_model(model: ScheduleModel, direction: str = "mixed",
                 explore: bool = True,
                 max_transitions: int = 250_000,
                 ) -> "tuple[list[Finding], dict[str, object]]":
    """All HB checks plus (optionally) the DPOR interleaving exploration."""
    findings = list(model.findings)
    findings += _check_races(model)
    findings += _check_cookies(model)
    findings += _check_board(model)
    findings += _check_direction(model, direction)
    receipts: "dict[str, object]" = {
        "steps": len(model.steps),
        "messages": model.messages,
        "regions": len(model.regions),
    }
    if explore and not model.error:
        result: ExploreResult = explore_model(
            model, max_transitions=max_transitions)
        findings += result.findings
        receipts.update(result.receipts)
    return findings, receipts


# ---------------------------------------------------------------------------
# registry sweep
# ---------------------------------------------------------------------------

@dataclass
class VerifyResult:
    """One (schedule, variant, machine, nprocs) verification outcome."""

    schedule: str
    variant: str
    machine: str
    nprocs: int
    nbytes: int
    findings: "list[Finding]" = field(default_factory=list)
    receipts: "dict[str, object]" = field(default_factory=dict)
    skipped: str = ""

    @property
    def clean(self) -> bool:
        return not any(f.severity == ERROR for f in self.findings)

    @property
    def name(self) -> str:
        variant = f"+{self.variant}" if self.variant else ""
        return (f"{self.schedule}{variant}@{self.machine}"
                f"x{self.nprocs}/{self.nbytes}B")

    def to_dict(self) -> "dict[str, object]":
        return {
            "schedule": self.schedule,
            "variant": self.variant,
            "machine": self.machine,
            "nprocs": self.nprocs,
            "nbytes": self.nbytes,
            "skipped": self.skipped,
            "clean": self.clean,
            "findings": [
                {"id": f.fid, "checker": f.checker, "category": f.category,
                 "severity": f.severity, "rank": f.rank,
                 "message": f.message}
                for f in self.findings
            ],
            "receipts": dict(self.receipts),
        }


def verify_schedule(name: str, machine: str = "zoot", nprocs: int = 8,
                    nbytes: int = 64 * KiB, variant: str = "",
                    explore: bool = True,
                    max_transitions: int = 250_000) -> VerifyResult:
    """Model-check one exported schedule on one machine at one comm size."""
    import repro.coll  # noqa: F401 - populates the schedule registry
    from repro.coll.algorithms import get_schedule

    spec = get_schedule(name)
    result = VerifyResult(schedule=name, variant=variant, machine=machine,
                          nprocs=nprocs, nbytes=nbytes)
    stack = component_stack(spec.component)
    direction = spec.direction
    if variant:
        overrides = dict(dict(spec.variants).get(variant, ()))
        if not overrides:
            raise KeyError(f"schedule {name} has no variant {variant!r}")
        stack = stack.with_tuning(**overrides)
        direction = "mixed"  # variants may flip the declared direction
    hw = get_machine(machine)
    if nprocs > hw.n_cores:
        result.skipped = (f"{nprocs} ranks oversubscribe {machine} "
                          f"({hw.n_cores} cores); binding policy rejects it")
        return result
    try:
        model = extract_model(spec.component, spec.op, hw, nprocs,
                              nbytes=nbytes, stack=stack)
    except HardwareConfigError as exc:
        result.skipped = str(exc)
        return result
    result.findings, result.receipts = verify_model(
        model, direction=direction, explore=explore,
        max_transitions=max_transitions)
    return result


def verify_registry(machines: "tuple[str, ...]" = ("zoot",),
                    sizes: "tuple[int, ...]" = (2, 4, 8, 16),
                    nbytes: int = 64 * KiB,
                    names: "Optional[list[str]]" = None,
                    variants: bool = True,
                    explore: bool = True,
                    max_transitions: int = 250_000) -> "list[VerifyResult]":
    """Model-check every exported schedule across machines and comm sizes."""
    import repro.coll  # noqa: F401 - populates the schedule registry
    from repro.coll.algorithms import exported_schedules

    results: "list[VerifyResult]" = []
    for spec in exported_schedules():
        if names is not None and spec.name not in names:
            continue
        runs = [""]
        if variants:
            runs += [v for v, _changes in spec.variants]
        for machine in machines:
            for nprocs in sizes:
                for variant in runs:
                    results.append(verify_schedule(
                        spec.name, machine=machine, nprocs=nprocs,
                        nbytes=nbytes, variant=variant, explore=explore,
                        max_transitions=max_transitions))
    return results
