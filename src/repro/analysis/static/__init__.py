"""Static schedule verification and the KNEM-San runtime sanitizer.

Three trace-independent layers on top of the PR 1 trace analyzers:

- :mod:`repro.analysis.static.schedules` — a symbolic extractor that runs
  the *real* ``coll/`` schedule builders against stub hardware (no
  :class:`~repro.simtime.core.Simulator` involved) and checks the resulting
  happens-before model for byte-range races, cookie use-after-invalidate
  and board synchronization;
- :mod:`repro.analysis.static.interleave` — a sleep-set/DPOR explorer that
  replays the extracted per-rank schedules under every inequivalent
  interleaving, proving wait-cycle deadlock freedom and witnessing racy
  orders;
- :mod:`repro.analysis.static.shadowmem` — byte-interval shadow memory:
  the pure interval logic shared with the checker, plus the runtime
  "KNEM-San" sanitizer armed via :meth:`repro.mpi.runtime.Machine.arm_sanitizer`;
- :mod:`repro.analysis.static.lint` — the repro-specific AST lint pass
  (wall-clock time, unseeded randomness, unguarded trace emits, cookie
  release on abort paths).
"""

from repro.analysis.static.interleave import (
    ExploreResult,
    Op,
    explore_model,
    explore_ops,
    interleaving_log10,
)
from repro.analysis.static.lint import (lint_paths, lint_source,
                                        lint_tracked_bytecode)
from repro.analysis.static.schedules import (
    ScheduleModel,
    VerifyResult,
    component_stack,
    extract_model,
    verify_model,
    verify_registry,
    verify_schedule,
)
from repro.analysis.static.shadowmem import (
    Access,
    FifoSanitizer,
    KnemSanitizer,
    SingleCopySanitizer,
    accesses_conflict,
    intervals_overlap,
)

__all__ = [
    "ExploreResult",
    "Op",
    "explore_model",
    "explore_ops",
    "interleaving_log10",
    "lint_paths",
    "lint_source",
    "lint_tracked_bytecode",
    "ScheduleModel",
    "VerifyResult",
    "component_stack",
    "extract_model",
    "verify_model",
    "verify_registry",
    "verify_schedule",
    "Access",
    "FifoSanitizer",
    "KnemSanitizer",
    "SingleCopySanitizer",
    "accesses_conflict",
    "intervals_overlap",
]
