"""Byte-interval shadow memory and the runtime "KNEM-San" sanitizer.

Two consumers share the interval logic in this module:

- the static model checker (:mod:`repro.analysis.static.schedules`), which
  uses :func:`intervals_overlap` over symbolic byte ranges, and
- the **runtime sanitizer**: :class:`KnemSanitizer` /
  :class:`FifoSanitizer`, hooked into :class:`repro.kernel.knem.KnemDriver`
  and :class:`repro.kernel.shm.FifoSegment` behind ``is not None`` guards so
  a machine with no sanitizer armed pays exactly one attribute test per
  kernel call (the same zero-cost pattern the fault-injection plan uses).

The sanitizer tracks *ownership intervals*: every in-flight KNEM copy holds
a byte window on the region's backing buffer until its completion event
fires; every FIFO slot walks a free → held → published → free state
machine.  Overlapping windows with a writer, destruction with copies still
in flight, driver-rejected ioctls, and slot-protocol violations all become
typed :class:`~repro.analysis.findings.Finding` objects naming the
offending schedule step.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.analysis.findings import ERROR, WARNING, Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.knem import KnemRegion
    from repro.kernel.shm import FifoSegment
    from repro.simtime.core import Event

__all__ = [
    "intervals_overlap",
    "Access",
    "accesses_conflict",
    "KnemSanitizer",
    "FifoSanitizer",
    "SingleCopySanitizer",
]


def intervals_overlap(a_start: int, a_end: int, b_start: int, b_end: int) -> bool:
    """True when the half-open byte ranges ``[a_start, a_end)`` and
    ``[b_start, b_end)`` share at least one byte."""
    return a_start < b_end and b_start < a_end


@dataclass(frozen=True)
class Access:
    """One byte-range access in an address space (symbolic or simulated).

    ``space`` names the backing object — a :class:`SimBuffer` id for memory,
    or a tuple key for non-byte shared state like the collective board.
    """

    space: object
    start: int
    end: int
    write: bool


def accesses_conflict(a: "tuple[Access, ...]", b: "tuple[Access, ...]") -> bool:
    """Do two access sets touch a common byte with at least one writer?"""
    for x in a:
        for y in b:
            if (x.write or y.write) and x.space == y.space \
                    and intervals_overlap(x.start, x.end, y.start, y.end):
                return True
    return False


@dataclass
class _CopyWindow:
    """One in-flight KNEM copy's claim on a backing buffer."""

    seq: int
    cookie: int
    core: int
    buf: int
    start: int
    end: int
    write: bool
    live: bool = True

    def describe(self) -> str:
        kind = "write" if self.write else "read"
        return (f"step {self.seq}: core {self.core} {kind} "
                f"[{self.start}, {self.end}) of buf {self.buf} "
                f"via cookie {self.cookie:#x}")


class KnemSanitizer:
    """Shadow-memory tracking for the KNEM driver (one per machine)."""

    def __init__(self) -> None:
        self.findings: list[Finding] = []
        self._seq = itertools.count(1)
        #: live windows per backing buffer id
        self._windows: dict[int, list[_CopyWindow]] = {}
        #: cookie -> number of in-flight copies
        self._inflight: dict[int, int] = {}

    # -- hooks called from kernel/knem.py (guarded by ``is not None``) ----
    def note_register(self, core: int, region: "KnemRegion") -> None:
        self._inflight[region.cookie] = 0
        if region.offset < 0 or region.offset + region.length > region.buffer.size:
            self._finding(ERROR, "out-of-bounds",
                          f"region {region.cookie:#x} covers "
                          f"[{region.offset}, {region.offset + region.length}) "
                          f"outside buf {region.buffer.id} "
                          f"of size {region.buffer.size}", core=core)

    def note_copy(self, core: int, region: "KnemRegion", region_offset: int,
                  nbytes: int, write: bool, done: "Event") -> None:
        start = region.offset + region_offset
        window = _CopyWindow(seq=next(self._seq), cookie=region.cookie,
                             core=core, buf=region.buffer.id,
                             start=start, end=start + nbytes, write=write)
        peers = self._windows.setdefault(window.buf, [])
        for other in peers:
            if not other.live or other.core == core:
                continue
            if not (window.write or other.write):
                continue
            if intervals_overlap(window.start, window.end,
                                 other.start, other.end):
                self._finding(
                    ERROR, "concurrent-overlap",
                    f"overlapping single-copy windows with a writer: "
                    f"{window.describe()} vs {other.describe()}",
                    core=core,
                    details={"cookie": window.cookie, "buf": window.buf,
                             "steps": (other.seq, window.seq)})
        peers.append(window)
        self._inflight[region.cookie] = self._inflight.get(region.cookie, 0) + 1
        done.add_callback(lambda _ev: self._retire(window))

    def note_destroy(self, core: int, region: "KnemRegion",
                     forced: bool = False) -> None:
        pending = self._inflight.pop(region.cookie, 0)
        if pending:
            windows = [w for w in self._windows.get(region.buffer.id, ())
                       if w.live and w.cookie == region.cookie]
            how = "reclaimed" if forced else "destroyed"
            self._finding(
                ERROR, "destroy-during-copy",
                f"cookie {region.cookie:#x} {how} by core {core} with "
                f"{pending} copy window(s) still in flight: "
                + "; ".join(w.describe() for w in windows),
                core=core,
                details={"cookie": region.cookie, "pending": pending,
                         "forced": forced})
        # the region is gone: stale windows must not raise further overlaps
        for w in self._windows.get(region.buffer.id, ()):
            if w.cookie == region.cookie:
                w.live = False

    def note_fail(self, core: int, cookie: int, op: str, error: str,
                  nbytes: int = 0, write: bool = False) -> None:
        if "FaultInjected" in error:
            return  # injected faults are the fault plan's business
        category = {
            "KnemInvalidCookie": "use-after-invalidate",
            "KnemPermissionError": "direction-violation",
            "KnemBoundsError": "out-of-bounds",
        }.get(error, "driver-error")
        kind = "write" if write else "read"
        self._finding(ERROR, category,
                      f"driver rejected {op} ({kind}, {nbytes} B) by core "
                      f"{core} on cookie {cookie:#x}: {error}",
                      core=core, details={"cookie": cookie, "op": op,
                                          "error": error})

    # -- internals --------------------------------------------------------
    def _retire(self, window: _CopyWindow) -> None:
        window.live = False
        count = self._inflight.get(window.cookie)
        if count:
            self._inflight[window.cookie] = count - 1
        peers = self._windows.get(window.buf)
        if peers is not None and len(peers) > 64:
            peers[:] = [w for w in peers if w.live]

    def _finding(self, severity: str, category: str, message: str,
                 core: Optional[int] = None,
                 details: "Optional[dict[str, object]]" = None) -> None:
        self.findings.append(Finding(
            checker="knemsan", category=category, severity=severity,
            message=message, rank=core,
            details=dict(details) if details else {}))


#: FIFO slot protocol states.
_FREE, _HELD, _PUBLISHED = "free", "held", "published"


class FifoSanitizer:
    """Slot-protocol state machine for the copy-in/copy-out FIFOs."""

    def __init__(self) -> None:
        self.findings: list[Finding] = []
        #: (fifo name, slot) -> state
        self._state: dict[tuple[str, int], str] = {}

    def note_acquire(self, fifo: "FifoSegment", slot: int) -> None:
        key = (fifo.name, slot)
        state = self._state.get(key, _FREE)
        if state != _FREE:
            self._finding(ERROR, "double-acquire",
                          f"slot {slot} of {fifo.name} acquired while {state}")
        self._state[key] = _HELD

    def note_publish(self, fifo: "FifoSegment", slot: int, nbytes: int) -> None:
        key = (fifo.name, slot)
        state = self._state.get(key, _FREE)
        if state == _PUBLISHED:
            self._finding(ERROR, "double-publish",
                          f"slot {slot} of {fifo.name} published twice")
        elif state == _FREE:
            # publishing without a tracked acquire: tolerated (the sanitizer
            # may have been armed mid-run) but the fill must still fit.
            self._finding(WARNING, "publish-unheld",
                          f"slot {slot} of {fifo.name} published without a "
                          f"tracked acquire")
        if nbytes > fifo.fragment_size:
            self._finding(ERROR, "fragment-overflow",
                          f"{nbytes} B published into slot {slot} of "
                          f"{fifo.name} (fragment size "
                          f"{fifo.fragment_size} B)")
        self._state[key] = _PUBLISHED

    def note_release(self, fifo: "FifoSegment", slot: int) -> None:
        key = (fifo.name, slot)
        if self._state.get(key, _FREE) != _PUBLISHED:
            self._finding(ERROR, "release-unpublished",
                          f"slot {slot} of {fifo.name} released while "
                          f"{self._state.get(key, _FREE)}")
        self._state[key] = _FREE

    def note_reclaim(self, fifo: "FifoSegment") -> None:
        for key in [k for k in self._state if k[0] == fifo.name]:
            del self._state[key]

    def _finding(self, severity: str, category: str, message: str) -> None:
        self.findings.append(Finding(checker="fifosan", category=category,
                                     severity=severity, message=message))


@dataclass
class SingleCopySanitizer:
    """The machine-level sanitizer armed via ``Machine.arm_sanitizer``."""

    knem: KnemSanitizer = field(default_factory=KnemSanitizer)
    fifo: FifoSanitizer = field(default_factory=FifoSanitizer)

    @property
    def findings(self) -> list[Finding]:
        return list(self.knem.findings) + list(self.fifo.findings)

    @property
    def clean(self) -> bool:
        return not self.findings
