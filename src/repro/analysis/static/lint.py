"""Repro-specific AST lint pass.

Four rules keep the simulation deterministic and its kernel model honest,
complementing the trace-time direction scan in
:mod:`repro.analysis.direction`:

- ``wall-clock-time`` — no ``time.time()`` / ``perf_counter()`` /
  ``datetime.now()`` inside the simulation; virtual time comes from the
  simulator clock.  The benchmark harness (``bench/``) is exempt: measuring
  real wall-clock time is its job.
- ``unseeded-randomness`` — no module-level ``random.*`` /
  ``numpy.random.*`` calls; randomness must flow through seeded
  ``Random(seed)`` / ``default_rng(seed)`` instances so runs replay.
- ``unguarded-trace-emit`` — ``tracer.emit(...)`` must sit under an
  ``if tracer.enabled:`` guard (with a ``tick`` in the else arm), because
  ``emit`` on a disabled tracer still bumps event counters; exempt are
  emits that carry ``injected=True`` (fault-path events are always traced)
  and emits immediately followed by a ``raise`` (failure paths are rare and
  must be visible).
- ``unreleased-cookie-path`` — a function that binds a cookie from
  ``create_region`` / ``_register_or_degrade`` must either return it to its
  caller or release it in a ``finally`` block, so abort paths cannot leak
  pinned regions.

One repository-level rule rides along with the AST pass:

- ``tracked-bytecode`` — no ``.pyc`` file or ``__pycache__`` entry may be
  tracked by git.  Generated kernels (:mod:`repro.bench.kernels`) make
  compiled artifacts easy to produce by accident, and a committed ``.pyc``
  silently pins one host's bytecode over everyone else's source.

:func:`lint_paths` walks files (default: everything under ``src/repro``);
:func:`lint_source` checks one source string (used by tests);
:func:`lint_tracked_bytecode` asks git about the working tree.
"""

from __future__ import annotations

import ast
import subprocess
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.analysis.findings import ERROR, Finding

__all__ = ["lint_paths", "lint_source", "lint_tracked_bytecode"]

#: time/datetime attributes that read the host clock
_WALL_CLOCK = {
    ("time", "time"), ("time", "monotonic"), ("time", "perf_counter"),
    ("time", "process_time"), ("time", "thread_time"), ("time", "sleep"),
    ("time", "monotonic_ns"), ("time", "perf_counter_ns"),
    ("time", "time_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}

#: module-level randomness calls that are fine (they take or carry a seed)
_SEEDED_RANDOM = {"default_rng", "Generator", "SeedSequence", "Random",
                  "seed", "getstate", "setstate"}

#: path fragments exempt from the wall-clock rule
_WALL_CLOCK_EXEMPT = ("/bench/", "/analysis/", "/chaos/", "/service/")

#: receivers treated as tracers for the emit rule
_TRACER_NAMES = {"tr", "tracer"}

#: releasing calls that satisfy the cookie rule inside ``finally``
_RELEASERS = {"reclaim", "destroy_region_safe", "destroy_region",
              "_release", "reclaim_owned"}

#: calls whose result binds a cookie
_COOKIE_SOURCES = {"create_region", "_register_or_degrade"}


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an attribute chain (``a.b.c``)."""
    parts: "list[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, tree: ast.AST):
        self.path = path
        self.findings: "list[Finding]" = []
        #: local alias -> canonical module ("import numpy.random as npr")
        self.module_aliases: "dict[str, str]" = {}
        #: names imported from time/datetime/random modules
        self.from_imports: "dict[str, tuple[str, str]]" = {}
        self._parents: "dict[ast.AST, ast.AST]" = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def finding(self, category: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        self.findings.append(Finding(
            checker="lint", category=category, severity=ERROR,
            message=f"{self.path}:{line}: {message}",
            details={"file": self.path, "line": line}))

    # -- imports ----------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name.split(".")[0]] = \
                alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module in ("time", "datetime", "random", "numpy.random"):
            for alias in node.names:
                self.from_imports[alias.asname or alias.name] = \
                    (module, alias.name)
        self.generic_visit(node)

    # -- calls ------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._check_wall_clock(node)
        self._check_randomness(node)
        self._check_trace_emit(node)
        self.generic_visit(node)

    def _check_wall_clock(self, node: ast.Call) -> None:
        if any(frag in self.path for frag in _WALL_CLOCK_EXEMPT):
            return
        func = node.func
        if isinstance(func, ast.Attribute):
            dotted = _dotted(func)
            head = dotted.split(".")[0]
            module = self.module_aliases.get(head, head)
            key = (module.split(".")[-1], func.attr)
            chain_key = (dotted.split(".")[-2] if "." in dotted else "",
                         func.attr)
            if key in _WALL_CLOCK or chain_key in _WALL_CLOCK:
                self.finding(
                    "wall-clock-time", node,
                    f"wall-clock call {dotted}(): simulation code must use "
                    f"the simulator clock, not host time")
        elif isinstance(func, ast.Name) and func.id in self.from_imports:
            module, original = self.from_imports[func.id]
            if (module.split(".")[-1], original) in _WALL_CLOCK \
                    or (module, original) in _WALL_CLOCK:
                self.finding(
                    "wall-clock-time", node,
                    f"wall-clock call {original}() (from {module}): "
                    f"simulation code must use the simulator clock")

    def _check_randomness(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            if isinstance(func, ast.Name) and func.id in self.from_imports:
                module, original = self.from_imports[func.id]
                if module in ("random", "numpy.random") \
                        and original not in _SEEDED_RANDOM:
                    self.finding(
                        "unseeded-randomness", node,
                        f"module-level {module}.{original}() call shares "
                        f"global RNG state; use a seeded Random/default_rng "
                        f"instance")
            return
        dotted = _dotted(func)
        head = dotted.split(".")[0]
        module = self.module_aliases.get(head, head)
        is_random = (module == "random" and dotted.count(".") == 1) \
            or dotted.startswith(("random.", "np.random.", "numpy.random."))
        if module == "numpy.random":
            is_random = True
        if is_random and func.attr not in _SEEDED_RANDOM:
            self.finding(
                "unseeded-randomness", node,
                f"module-level {dotted}() call shares global RNG state; "
                f"use a seeded Random/default_rng instance")

    # -- trace emits ------------------------------------------------------
    def _check_trace_emit(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "emit":
            return
        recv = func.value
        is_tracer = (isinstance(recv, ast.Name) and recv.id in _TRACER_NAMES) \
            or (isinstance(recv, ast.Attribute) and recv.attr == "tracer")
        if not is_tracer:
            return
        if self.path.endswith(("simtime/trace.py", "simtime\\trace.py")):
            return
        for kw in node.keywords:
            if kw.arg == "injected" and isinstance(kw.value, ast.Constant) \
                    and kw.value.value is True:
                return
        if self._guarded_by_enabled(node) or self._followed_by_raise(node):
            return
        self.finding(
            "unguarded-trace-emit", node,
            "tracer.emit() outside an `if tracer.enabled:` guard — emit on "
            "a disabled tracer still bumps counters; guard it and tick() in "
            "the else arm")

    def _guarded_by_enabled(self, node: ast.AST) -> bool:
        cur: Optional[ast.AST] = node
        while cur is not None:
            parent = self._parents.get(cur)
            if isinstance(parent, ast.If) and cur in parent.body:
                for sub in ast.walk(parent.test):
                    if isinstance(sub, ast.Attribute) \
                            and sub.attr == "enabled":
                        return True
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
            cur = parent
        return False

    def _followed_by_raise(self, node: ast.AST) -> bool:
        # climb to the enclosing statement, then look a few siblings ahead
        stmt: Optional[ast.AST] = node
        while stmt is not None \
                and not isinstance(stmt, ast.stmt):
            stmt = self._parents.get(stmt)
        if stmt is None:
            return False
        parent = self._parents.get(stmt)
        for body in (getattr(parent, "body", None),
                     getattr(parent, "orelse", None),
                     getattr(parent, "finalbody", None)):
            if not body or stmt not in body:
                continue
            i = body.index(stmt)
            for sibling in body[i + 1:i + 4]:
                if isinstance(sibling, ast.Raise):
                    return True
                if any(isinstance(n, ast.Raise) for n in ast.walk(sibling)):
                    return True
        return False

    # -- cookie release on abort paths ------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_cookie_paths(node)
        self.generic_visit(node)

    def _check_cookie_paths(self, node: ast.FunctionDef) -> None:
        if node.name in _COOKIE_SOURCES:
            return  # the sources themselves hand the cookie to their caller
        bindings: "list[tuple[str, ast.AST]]" = []
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Assign) or len(sub.targets) != 1:
                continue
            target = sub.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = sub.value
            if isinstance(value, ast.YieldFrom):
                value = value.value
            if isinstance(value, ast.Call) \
                    and _call_name(value) in _COOKIE_SOURCES:
                bindings.append((target.id, sub))
        if not bindings:
            return
        returned = {
            n.value.id
            for n in ast.walk(node)
            if isinstance(n, ast.Return) and isinstance(n.value, ast.Name)
        }
        protected = self._finally_releases(node)
        for name, assign in bindings:
            if name in returned or protected:
                continue
            self.finding(
                "unreleased-cookie-path", assign,
                f"function {node.name}() binds cookie {name!r} from a "
                f"register call without a finally-block release or "
                f"returning it — an abort path leaks the pinned region")

    @staticmethod
    def _finally_releases(node: ast.FunctionDef) -> bool:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Try) or not sub.finalbody:
                continue
            for stmt in sub.finalbody:
                for inner in ast.walk(stmt):
                    if isinstance(inner, ast.Call) \
                            and _call_name(inner) in _RELEASERS:
                        return True
        return False


def lint_source(source: str, path: str = "<memory>") -> "list[Finding]":
    """Lint one Python source string; returns findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(checker="lint", category="syntax-error",
                        severity=ERROR,
                        message=f"{path}:{exc.lineno}: {exc.msg}")]
    linter = _Linter(path.replace("\\", "/"), tree)
    linter.visit(tree)
    return linter.findings


def _default_paths() -> "list[Path]":
    root = Path(__file__).resolve().parents[3]  # .../src
    return sorted((root / "repro").rglob("*.py"))


def lint_paths(paths: "Optional[Iterable[Union[str, Path]]]" = None,
               ) -> "list[Finding]":
    """Lint files (default: every module under ``src/repro``)."""
    targets = [Path(p) for p in paths] if paths is not None \
        else _default_paths()
    findings: "list[Finding]" = []
    for target in targets:
        findings.extend(lint_source(target.read_text(encoding="utf-8"),
                                    path=str(target)))
    return findings


def lint_tracked_bytecode(root: "Union[str, Path, None]" = None,
                          ) -> "list[Finding]":
    """Flag git-tracked compiled artifacts (``.pyc`` / ``__pycache__``).

    Asks ``git ls-files`` in ``root`` (default: the current directory).
    Outside a git checkout — or without git on PATH — there is nothing to
    check and the rule passes vacuously.
    """
    try:
        out = subprocess.run(
            ["git", "ls-files", "-z", "--", "*.pyc", "*__pycache__*"],
            cwd=str(root) if root is not None else None,
            capture_output=True, text=True, timeout=30, check=True,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        return []
    return [
        Finding(checker="lint", category="tracked-bytecode", severity=ERROR,
                message=f"{path}: compiled artifact tracked by git; "
                        f"bytecode belongs to the build, not the history "
                        f"(git rm --cached it and let .gitignore cover it)")
        for path in sorted(p for p in out.split("\0") if p)
    ]
