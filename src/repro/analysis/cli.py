"""Command-line entry point: ``python -m repro.analysis``.

Examples::

    python -m repro.analysis --algo knem_bcast --machine zoot
    python -m repro.analysis --algo knem_gather --machine ig --nprocs 12
    python -m repro.analysis --all --machine zoot
    python -m repro.analysis --static
    python -m repro.analysis --list

Exit status: 0 when every analyzed schedule is clean, 2 when any checker
reported a finding (or a run failed outright) and on usage errors.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.direction import static_scan
from repro.analysis.findings import Report, checker_names
from repro.analysis.runner import ALGOS, algo_names, run_analysis
from repro.hardware.machines import MACHINES
from repro.units import KiB

__all__ = ["main"]


def _parse_size(text: str) -> int:
    """Parse ``65536``, ``64K``/``64KiB``, ``1M``/``1MiB``."""
    t = text.strip().upper().removesuffix("IB").removesuffix("B")
    factor = 1
    if t.endswith("K"):
        factor, t = 1024, t[:-1]
    elif t.endswith("M"):
        factor, t = 1024 * 1024, t[:-1]
    try:
        return int(t) * factor
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad size {text!r}") from None


def _print_listing() -> None:
    print("algos:")
    for name in algo_names():
        print(f"  {name:20s} {ALGOS[name].description}")
    print("checkers:")
    for name in checker_names():
        print(f"  {name}")


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Analyze KNEM collective schedules for races, cookie "
                    "lifecycle bugs, direction-control mistakes, and "
                    "deadlocks.",
    )
    what = parser.add_mutually_exclusive_group(required=True)
    what.add_argument("--algo", choices=algo_names(),
                      help="analyze one registered schedule")
    what.add_argument("--all", action="store_true",
                      help="analyze every registered schedule (smoke run)")
    what.add_argument("--static", action="store_true",
                      help="AST-scan collective sources for direction "
                           "mismatches (no simulation)")
    what.add_argument("--list", action="store_true",
                      help="list registered algos and checkers")
    parser.add_argument("--machine", choices=sorted(MACHINES),
                        default="zoot", help="machine spec (default: zoot)")
    parser.add_argument("--nprocs", type=int, default=None,
                        help="ranks to launch (default: min(8, cores))")
    parser.add_argument("--size", type=_parse_size, default=None,
                        help="per-rank message size, e.g. 64K or 1M "
                             "(default: per-algo)")
    parser.add_argument("--checkers", default=None,
                        help="comma-separated checker subset "
                             f"(default: all of {','.join(checker_names())})")
    args = parser.parse_args(argv)

    if args.list:
        _print_listing()
        return 0

    if args.static:
        findings = static_scan()
        report = Report(subject="static scan of src/repro/coll",
                        findings=findings)
        print(report.render())
        return 2 if findings else 0

    checkers = args.checkers.split(",") if args.checkers else None
    if checkers:
        unknown = sorted(set(checkers) - set(checker_names()))
        if unknown:
            parser.error(f"unknown checker(s): {', '.join(unknown)} "
                         f"(available: {','.join(checker_names())})")
    names = algo_names() if args.all else [args.algo]
    dirty = False
    for name in names:
        report = run_analysis(name, machine=args.machine,
                              nprocs=args.nprocs, nbytes=args.size,
                              checkers=checkers)
        print(report.render())
        print()
        dirty = dirty or bool(report.findings) or bool(report.error)
    return 2 if dirty else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
