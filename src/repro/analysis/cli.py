"""Command-line entry point: ``python -m repro.analysis``.

Examples::

    python -m repro.analysis --algo knem_bcast --machine zoot
    python -m repro.analysis --all --machine zoot
    python -m repro.analysis --verify --machine all --format json
    python -m repro.analysis --verify knem.bcast --nprocs 8 --size 256K
    python -m repro.analysis --lint
    python -m repro.analysis --static
    python -m repro.analysis --list

``--verify`` model-checks exported schedules symbolically (no simulator
run): byte-range races, cookie lifecycle, board synchronization, plus a
DPOR interleaving exploration with receipts.  ``--lint`` runs the
repro-specific AST rules over ``src/repro``.

Exit status: 0 when every analyzed schedule is clean, 2 when any checker
reported an unsuppressed finding (or a run failed outright) and on usage
errors.  ``--baseline FILE`` suppresses known findings by stable id
(``analysis-baseline.json``); suppressed findings are still printed but do
not affect the exit code.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.direction import static_scan
from repro.analysis.findings import Baseline, Finding, Report, checker_names
from repro.analysis.runner import ALGOS, algo_names, run_analysis
from repro.hardware.machines import MACHINES
from repro.units import KiB

__all__ = ["main"]

#: the paper's four machine specs, swept by ``--machine all``
_ALL_MACHINES = tuple(sorted(MACHINES))
_DEFAULT_SIZES = (2, 4, 8, 16)


def _parse_size(text: str) -> int:
    """Parse ``65536``, ``64K``/``64KiB``, ``1M``/``1MiB``."""
    t = text.strip().upper().removesuffix("IB").removesuffix("B")
    factor = 1
    if t.endswith("K"):
        factor, t = 1024, t[:-1]
    elif t.endswith("M"):
        factor, t = 1024 * 1024, t[:-1]
    try:
        return int(t) * factor
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad size {text!r}") from None


def _print_listing() -> None:
    import repro.coll  # noqa: F401 - populates the schedule registry
    from repro.coll.algorithms import exported_schedules

    print("algos:")
    for name in algo_names():
        print(f"  {name:20s} {ALGOS[name].description}")
    print("checkers:")
    for name in checker_names():
        print(f"  {name}")
    print("schedules (--verify):")
    for spec in exported_schedules():
        variants = ""
        if spec.variants:
            variants = " (+" + ",".join(v for v, _c in spec.variants) + ")"
        print(f"  {spec.name:20s} {spec.description}{variants}")


def _finding_dict(f: Finding, suppressed: bool) -> "dict[str, object]":
    return {"id": f.fid, "checker": f.checker, "category": f.category,
            "severity": f.severity, "rank": f.rank, "message": f.message,
            "suppressed": suppressed}


def _emit(payload: "dict[str, object]", findings: "list[Finding]",
          baseline: "Baseline | None", fmt: str,
          text_lines: "list[str]") -> int:
    """Render output and compute the exit code under the baseline."""
    if baseline is None:
        active, quiet = findings, []
    else:
        active, quiet = baseline.partition(findings)
    if fmt == "json":
        payload["findings"] = (
            [_finding_dict(f, False) for f in active]
            + [_finding_dict(f, True) for f in quiet])
        payload["suppressed"] = len(quiet)
        payload["exit"] = 2 if active else 0
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for line in text_lines:
            print(line)
        for f in quiet:
            print(f"SUPPRESSED {f.render()}")
    return 2 if active else 0


def _run_verify(args: "argparse.Namespace", fmt: str,
                baseline: "Baseline | None") -> int:
    from repro.analysis.static import verify_registry

    machines = _ALL_MACHINES if args.machine == "all" else (args.machine,)
    sizes = (args.nprocs,) if args.nprocs else _DEFAULT_SIZES
    nbytes = args.size or 64 * KiB
    names = args.verify if args.verify else None
    results = verify_registry(machines=machines, sizes=sizes, nbytes=nbytes,
                              names=names)
    if names:
        known = {r.schedule for r in results}
        missing = sorted(set(names) - known)
        if missing:
            print(f"unknown schedule(s): {', '.join(missing)}",
                  file=sys.stderr)
            return 2
    findings = [f for r in results for f in r.findings]
    lines = []
    for r in results:
        if r.skipped:
            lines.append(f"SKIP  {r.name}: {r.skipped}")
            continue
        mark = "ok   " if r.clean else "FAIL "
        receipts = r.receipts
        lines.append(
            f"{mark} {r.name}: {receipts.get('executions', 0)} execution(s),"
            f" {receipts.get('transitions', 0)} transitions cover"
            f" ~1e{receipts.get('interleavings_log10', 0)} interleavings")
        for f in r.findings:
            lines.append(f"      {f.render()}")
    verified = [r for r in results if not r.skipped]
    lines.append(f"verified {len(verified)} schedule instance(s) "
                 f"({len(results) - len(verified)} skipped), "
                 f"{len(findings)} finding(s)")
    payload: "dict[str, object]" = {
        "mode": "verify",
        "machines": list(machines),
        "sizes": list(sizes),
        "nbytes": nbytes,
        "results": [r.to_dict() for r in results],
    }
    return _emit(payload, findings, baseline, fmt, lines)


def _run_lint(fmt: str, baseline: "Baseline | None") -> int:
    from repro.analysis.static import lint_paths, lint_tracked_bytecode

    findings = lint_paths() + lint_tracked_bytecode()
    lines = [f.render() for f in findings]
    lines.append(f"lint: {len(findings)} finding(s) over src/repro")
    return _emit({"mode": "lint"}, findings, baseline, fmt, lines)


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Analyze KNEM collective schedules for races, cookie "
                    "lifecycle bugs, direction-control mistakes, and "
                    "deadlocks.",
    )
    what = parser.add_mutually_exclusive_group(required=True)
    what.add_argument("--algo", choices=algo_names(),
                      help="analyze one registered schedule (trace-based)")
    what.add_argument("--all", action="store_true",
                      help="analyze every registered schedule (smoke run)")
    what.add_argument("--verify", nargs="*", metavar="SCHEDULE",
                      help="symbolically model-check exported schedules "
                           "(all of them, or the named ones) without "
                           "running the simulator")
    what.add_argument("--lint", action="store_true",
                      help="run the repro-specific AST lint rules over "
                           "src/repro")
    what.add_argument("--static", action="store_true",
                      help="AST-scan collective sources for direction "
                           "mismatches (no simulation)")
    what.add_argument("--list", action="store_true",
                      help="list registered algos, checkers and schedules")
    parser.add_argument("--machine", choices=sorted(MACHINES) + ["all"],
                        default="zoot",
                        help="machine spec, or 'all' for the paper's four "
                             "(default: zoot)")
    parser.add_argument("--nprocs", type=int, default=None,
                        help="ranks to launch (default: min(8, cores); "
                             "for --verify: sweep {2,4,8,16})")
    parser.add_argument("--size", type=_parse_size, default=None,
                        help="per-rank message size, e.g. 64K or 1M "
                             "(default: per-algo; 64K for --verify)")
    parser.add_argument("--checkers", default=None,
                        help="comma-separated checker subset "
                             f"(default: all of {','.join(checker_names())})")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="suppression baseline (analysis-baseline.json); "
                             "suppressed findings do not affect the exit "
                             "code")
    args = parser.parse_args(argv)

    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            parser.error(f"cannot load baseline {args.baseline}: {exc}")

    if args.list:
        _print_listing()
        return 0

    if args.verify is not None:
        return _run_verify(args, args.format, baseline)

    if args.lint:
        return _run_lint(args.format, baseline)

    if args.static:
        findings = static_scan()
        report = Report(subject="static scan of src/repro/coll",
                        findings=findings)
        return _emit({"mode": "static",
                      "subject": report.subject},
                     findings, baseline, args.format, [report.render()])

    checkers = args.checkers.split(",") if args.checkers else None
    if checkers:
        unknown = sorted(set(checkers) - set(checker_names()))
        if unknown:
            parser.error(f"unknown checker(s): {', '.join(unknown)} "
                         f"(available: {','.join(checker_names())})")
    if args.machine == "all":
        parser.error("--machine all is only supported with --verify")
    names = algo_names() if args.all else [args.algo]
    findings: "list[Finding]" = []
    lines: "list[str]" = []
    reports = []
    errored = False
    for name in names:
        report = run_analysis(name, machine=args.machine,
                              nprocs=args.nprocs, nbytes=args.size,
                              checkers=checkers)
        lines.append(report.render())
        lines.append("")
        findings.extend(report.findings)
        errored = errored or bool(report.error)
        reports.append({"subject": report.subject, "machine": report.machine,
                        "nprocs": report.nprocs, "nbytes": report.nbytes,
                        "error": report.error})
    code = _emit({"mode": "trace", "reports": reports},
                 findings, baseline, args.format, lines)
    return 2 if errored else code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
