"""Run a collective schedule under the analyzer and report findings.

Each registered *algo* pairs a stack (KNEM-Coll, Tuned-KNEM, MPICH2-KNEM)
with a self-verifying program: buffers are filled with rank-dependent
patterns, the collective runs on a traced machine, the payload is checked,
and every registered checker is run over the resulting trace model.  A
:class:`~repro.analysis.findings.Report` comes back even when the run
deadlocks or raises — that is exactly when the checkers are most useful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

import numpy as np

# Importing the checker modules registers them.
import repro.analysis.cookies    # noqa: F401
import repro.analysis.deadlock   # noqa: F401
import repro.analysis.direction  # noqa: F401
import repro.analysis.races      # noqa: F401
from repro.analysis.direction import DirectionSpec
from repro.analysis.findings import Report, run_checkers
from repro.analysis.model import build_model
from repro.errors import CollectiveError, DeadlockError, ReproError
from repro.mpi.runtime import Job, Machine, Proc
from repro.mpi.stacks import KNEM_COLL, MPICH2_KNEM, TUNED_KNEM, Stack
from repro.units import KiB

__all__ = ["AlgoSpec", "ALGOS", "algo_names", "run_analysis"]


@dataclass(frozen=True)
class AlgoSpec:
    """One analyzable schedule: stack + program + declared direction."""

    name: str
    stack: Stack
    program: Callable
    direction: Optional[DirectionSpec]
    nbytes: int
    description: str


ALGOS: dict[str, AlgoSpec] = {}


def algo_names() -> list[str]:
    return sorted(ALGOS)


# ------------------------------------------------------------- programs ----

def _pattern(seed: int, nbytes: int) -> np.ndarray:
    """A deterministic, seed-dependent byte pattern."""
    return ((np.arange(nbytes, dtype=np.uint64) * 31 + seed * 131) % 251
            ).astype(np.uint8)


def _verify(proc: Proc, got: np.ndarray, want: np.ndarray, what: str) -> None:
    if not np.array_equal(got, want):
        bad = int(np.flatnonzero(got != want)[0])
        raise CollectiveError(
            f"rank {proc.rank}: {what} payload wrong at byte {bad} "
            f"(got {got[bad]}, want {want[bad]})"
        )


def _bcast_program(proc: Proc, nbytes: int):
    buf = proc.alloc_array(nbytes, label=f"bcast-r{proc.rank}")
    want = _pattern(0, nbytes)
    if proc.rank == 0:
        buf.array[:] = want
    yield from proc.comm.bcast(buf.sim, 0, nbytes, 0)
    _verify(proc, buf.array, want, "bcast")
    return proc.now


def _scatter_program(proc: Proc, nbytes: int):
    size = proc.comm.size
    recv = proc.alloc_array(nbytes, label=f"scatter-recv-r{proc.rank}")
    send = None
    if proc.rank == 0:
        root = proc.alloc_array(nbytes * size, label="scatter-send")
        for r in range(size):
            root.array[r * nbytes:(r + 1) * nbytes] = _pattern(r, nbytes)
        send = root.sim
    yield from proc.comm.scatter(send, recv.sim, nbytes, 0)
    _verify(proc, recv.array, _pattern(proc.rank, nbytes), "scatter")
    return proc.now


def _gather_program(proc: Proc, nbytes: int):
    size = proc.comm.size
    send = proc.alloc_array(nbytes, label=f"gather-send-r{proc.rank}")
    send.array[:] = _pattern(proc.rank, nbytes)
    recv = None
    if proc.rank == 0:
        recv = proc.alloc_array(nbytes * size, label="gather-recv")
    yield from proc.comm.gather(send.sim, recv.sim if recv else None,
                                nbytes, 0)
    if proc.rank == 0:
        for r in range(size):
            _verify(proc, recv.array[r * nbytes:(r + 1) * nbytes],
                    _pattern(r, nbytes), f"gather slice {r}")
    return proc.now


def _allgather_program(proc: Proc, nbytes: int):
    size = proc.comm.size
    send = proc.alloc_array(nbytes, label=f"allgather-send-r{proc.rank}")
    send.array[:] = _pattern(proc.rank, nbytes)
    recv = proc.alloc_array(nbytes * size, label=f"allgather-recv-r{proc.rank}")
    yield from proc.comm.allgather(send.sim, recv.sim, nbytes)
    for r in range(size):
        _verify(proc, recv.array[r * nbytes:(r + 1) * nbytes],
                _pattern(r, nbytes), f"allgather slice {r}")
    return proc.now


def _alltoallv_program(proc: Proc, nbytes: int):
    size = proc.comm.size
    me = proc.rank
    send = proc.alloc_array(nbytes * size, label=f"a2av-send-r{me}")
    for dest in range(size):
        send.array[dest * nbytes:(dest + 1) * nbytes] = \
            _pattern(me * size + dest, nbytes)
    recv = proc.alloc_array(nbytes * size, label=f"a2av-recv-r{me}")
    counts = [nbytes] * size
    displs = [r * nbytes for r in range(size)]
    yield from proc.comm.alltoallv(send.sim, counts, displs,
                                   recv.sim, counts, displs)
    for src in range(size):
        _verify(proc, recv.array[src * nbytes:(src + 1) * nbytes],
                _pattern(src * size + me, nbytes), f"alltoallv block {src}")
    return proc.now


_PROGRAMS: dict[str, Callable] = {
    "bcast": _bcast_program,
    "scatter": _scatter_program,
    "gather": _gather_program,
    "allgather": _allgather_program,
    "alltoallv": _alltoallv_program,
}

#: KNEM-Coll's declared direction contracts (Section V of the paper).
_KNEM_DIRECTIONS: dict[str, DirectionSpec] = {
    "bcast": DirectionSpec("read", concurrent=True),
    "scatter": DirectionSpec("read", concurrent=True),
    "gather": DirectionSpec("write", concurrent=True),
    "allgather": DirectionSpec("mixed", concurrent=True),
    "alltoallv": DirectionSpec("read", concurrent=True),
}

#: Point-to-point stacks: the pml's KNEM rendezvous is always
#: receiver-reading, and no concurrency contract is declared (tree
#: algorithms legitimately funnel copies through inner ranks).
_P2P_DIRECTION = DirectionSpec("read", concurrent=False)


def _register_stacks() -> None:
    for prefix, stack, nbytes, direction_of in (
        ("knem", KNEM_COLL, 64 * KiB, _KNEM_DIRECTIONS.get),
        ("tuned", TUNED_KNEM, 256 * KiB, lambda _op: _P2P_DIRECTION),
        ("mpich2", MPICH2_KNEM, 1024 * KiB, lambda _op: _P2P_DIRECTION),
    ):
        for op, program in _PROGRAMS.items():
            name = f"{prefix}_{op}"
            ALGOS[name] = AlgoSpec(
                name=name, stack=stack, program=program,
                direction=direction_of(op), nbytes=nbytes,
                description=f"{op} on the {stack.name} stack "
                            f"({nbytes // KiB} KiB per rank)",
            )


_register_stacks()


# --------------------------------------------------------------- driving ----

def run_analysis(algo: str, machine: str = "zoot",
                 nprocs: Optional[int] = None, nbytes: Optional[int] = None,
                 checkers: Optional[Iterable[str]] = None) -> Report:
    """Run one registered algo on a traced machine and check the schedule."""
    try:
        spec = ALGOS[algo]
    except KeyError:
        raise KeyError(
            f"unknown algo {algo!r}; available: {algo_names()}"
        ) from None
    m = Machine.build(machine, trace=True)
    if nprocs is None:
        nprocs = min(8, m.spec.n_cores)
    nbytes = spec.nbytes if nbytes is None else nbytes
    try:
        job = Job(m, nprocs, stack=spec.stack)
    except ReproError as exc:
        # e.g. oversubscribing the machine: report it, don't traceback.
        return Report(subject=algo, findings=[], machine=m.spec.name,
                      nprocs=nprocs, nbytes=nbytes,
                      error=f"{type(exc).__name__}: {exc}")
    deadlock: Optional[DeadlockError] = None
    error = ""
    try:
        job.run(spec.program, nbytes)
    except DeadlockError as exc:
        deadlock = exc
        error = str(exc)
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"
    model = build_model(job, deadlock=deadlock,
                        direction_spec=spec.direction)
    findings = run_checkers(model, checkers)
    return Report(subject=algo, findings=findings, machine=m.spec.name,
                  nprocs=nprocs, nbytes=nbytes, error=error)
