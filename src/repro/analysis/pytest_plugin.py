"""Pytest integration: analyze traced schedules behind a marker.

Opt a test in with one decorator::

    @pytest.mark.analyze_schedule
    def test_bcast(job_factory):
        job = job_factory("zoot", 8, KNEM_COLL)
        job.run(program, args)

While the marker is active, every :class:`~repro.mpi.runtime.Job` created
by the test forces tracing on its machine **and arms the KNEM-San runtime
sanitizer** (:class:`~repro.analysis.static.shadowmem.SingleCopySanitizer`);
each ``run()`` records the slice of trace it produced, and at teardown all
registered checkers run over each slice and sanitizer findings are merged
in — the test fails if any checker or the sanitizer reports a finding.

Marker options::

    @pytest.mark.analyze_schedule(checkers=["race", "cookie"],
                                  direction=DirectionSpec("read", True))
"""

from __future__ import annotations

import pytest

from repro.analysis.findings import run_checkers
from repro.analysis.model import build_model
from repro.analysis.static.shadowmem import SingleCopySanitizer
from repro.mpi.runtime import Job

__all__ = ["pytest_configure"]


def pytest_configure(config) -> None:
    config.addinivalue_line(
        "markers",
        "analyze_schedule(checkers=None, direction=None): trace every Job "
        "the test runs and fail on analyzer findings",
    )


@pytest.fixture(autouse=True)
def _schedule_analysis(request, monkeypatch):
    marker = request.node.get_closest_marker("analyze_schedule")
    if marker is None:
        yield
        return
    checkers = marker.kwargs.get("checkers")
    direction = marker.kwargs.get("direction")
    runs: list[tuple[Job, int, int]] = []

    orig_init = Job.__init__
    orig_run = Job.run

    def traced_init(self, machine, *args, **kwargs):
        machine.tracer.enabled = True
        if machine.sanitizer is None:
            machine.arm_sanitizer(SingleCopySanitizer())
        orig_init(self, machine, *args, **kwargs)

    def traced_run(self, program, *args):
        start = len(self.machine.tracer.records)
        try:
            return orig_run(self, program, *args)
        finally:
            runs.append((self, start, len(self.machine.tracer.records)))

    monkeypatch.setattr(Job, "__init__", traced_init)
    monkeypatch.setattr(Job, "run", traced_run)
    yield
    findings = []
    sanitized = set()
    for job, start, end in runs:
        model = build_model(job,
                            records=job.machine.tracer.records[start:end],
                            direction_spec=direction)
        findings.extend(run_checkers(model, checkers))
        sanitizer = job.machine.sanitizer
        if sanitizer is not None and id(sanitizer) not in sanitized:
            sanitized.add(id(sanitizer))
            findings.extend(sanitizer.findings)
    if findings:
        pytest.fail(
            "schedule analysis found issues:\n"
            + "\n".join(f.render() for f in findings),
            pytrace=False,
        )
