"""Vector clocks over simulated MPI processes.

The analyzer replays the trace record stream (which is totally ordered by
the deterministic simulator) and maintains one clock per world rank.  Two
recorded operations are *concurrent* when neither's snapshot
happens-before the other — the standard Mattern/Fidge construction, here
over ranks instead of OS threads.
"""

from __future__ import annotations

__all__ = ["VectorClock"]


class VectorClock:
    """A fixed-width vector clock (one component per world rank)."""

    __slots__ = ("c",)

    def __init__(self, n: int, init: "list[int] | None" = None):
        self.c = list(init) if init is not None else [0] * n

    def copy(self) -> "VectorClock":
        return VectorClock(len(self.c), self.c)

    def tick(self, rank: int) -> None:
        """Advance ``rank``'s own component (one per attributed record)."""
        self.c[rank] += 1

    def join(self, other: "VectorClock") -> None:
        """Component-wise max — the receive side of an HB edge."""
        mine, theirs = self.c, other.c
        for i in range(len(mine)):
            if theirs[i] > mine[i]:
                mine[i] = theirs[i]

    def leq(self, other: "VectorClock") -> bool:
        """True when this clock happens-before-or-equals ``other``."""
        return all(a <= b for a, b in zip(self.c, other.c))

    @staticmethod
    def ordered(a: "VectorClock", a_rank: int,
                b: "VectorClock", b_rank: int) -> bool:
        """Are two snapshots (by ``a_rank`` / ``b_rank``) HB-ordered?

        Snapshot ``a`` taken by process ``p`` happens-before snapshot ``b``
        iff ``a.c[p] <= b.c[p]`` (``b`` has seen ``a``'s tick); symmetric in
        the other direction.  Same-process snapshots are always ordered.
        """
        if a_rank == b_rank:
            return True
        return a.c[a_rank] <= b.c[a_rank] or b.c[b_rank] <= a.c[b_rank]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VC{self.c!r}"
