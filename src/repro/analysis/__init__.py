"""Trace-driven schedule analysis for the KNEM collective stacks.

The analyzer consumes the :class:`~repro.simtime.trace.Tracer` event stream
of a traced run and checks the properties the paper's design leans on:

- ``race`` — vector-clock happens-before race detection over KNEM copies
  and collective local copies (:mod:`repro.analysis.races`);
- ``cookie`` — region lifecycle lint: use-after-deregister, double
  destroy, out-of-band cookie visibility, overlapping registrations,
  leaks (:mod:`repro.analysis.cookies`);
- ``direction`` — direction-control verification against each algorithm's
  declared strategy, plus a static AST scan of the collective sources
  (:mod:`repro.analysis.direction`);
- ``deadlock`` — wait-for-graph reconstruction and cycle naming when a run
  dies with :class:`~repro.errors.DeadlockError`
  (:mod:`repro.analysis.deadlock`).

A second, trace-independent layer lives in :mod:`repro.analysis.static`:
the symbolic schedule model checker (``--verify``), the DPOR interleaving
explorer, the KNEM-San runtime sanitizer, and the repro-specific AST lint
pass (``--lint``).

Entry points: ``python -m repro.analysis`` (CLI), :func:`run_analysis` /
:func:`repro.analysis.static.verify_schedule` (programmatic), and the
``analyze_schedule`` pytest marker (:mod:`repro.analysis.pytest_plugin`).
"""

from repro.analysis.direction import DirectionSpec, static_scan
from repro.analysis.findings import (
    ERROR,
    WARNING,
    Baseline,
    Finding,
    Report,
    checker_names,
    finding_id,
    run_checkers,
)
from repro.analysis.model import TraceModel, build_model
from repro.analysis.runner import ALGOS, AlgoSpec, algo_names, run_analysis
from repro.analysis.vectorclock import VectorClock

__all__ = [
    "ERROR",
    "WARNING",
    "Baseline",
    "Finding",
    "Report",
    "checker_names",
    "finding_id",
    "run_checkers",
    "TraceModel",
    "build_model",
    "VectorClock",
    "DirectionSpec",
    "static_scan",
    "ALGOS",
    "AlgoSpec",
    "algo_names",
    "run_analysis",
]
