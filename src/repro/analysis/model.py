"""Replay a trace into an analyzable model of one run.

:class:`TraceModel` walks the recorded event stream once and builds the
structures every checker consumes:

- per-rank **vector clocks** threaded through the message-layer HB edges
  (``mpi.inject``/``mpi.send`` → ``mpi.recv``, ``mpi.fin_send`` →
  ``mpi.fin_recv``), so any two recorded operations can be tested for
  concurrency;
- byte-range **accesses** to simulated buffers (in-kernel KNEM copies plus
  the collectives' explicit local copies), each stamped with the issuing
  rank's clock;
- the **region table**: every KNEM registration with its protection flags,
  owner, live interval, deregistration point, and the copies that used it;
- **failed ioctls** (``knem.fail``) and the set of message-layer operations
  still outstanding at the end of the run (for deadlock diagnosis).

The record stream is totally ordered (the simulator is deterministic and
single-threaded), and records attributed to one rank appear in that rank's
program order, so scanning the stream once while ticking each rank's clock
on its own records yields a sound happens-before relation for *this*
execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.analysis.vectorclock import VectorClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.errors import DeadlockError
    from repro.mpi.runtime import Job
    from repro.simtime.trace import TraceRecord

__all__ = ["Access", "CopyUse", "Region", "Failure", "HealthEvent",
           "RankEvent", "BenchEvent", "ServiceEvent", "TraceModel",
           "build_model"]

#: Copy-record labels that double-count a ``knem.copy`` record and must be
#: skipped when collecting accesses.
_KNEM_COPY_LABELS = frozenset({"knem", "knem-dma"})

#: The only plain-copy label included in race analysis: a collective moving
#: a rank's own contribution.  FIFO/eager transport copies are excluded —
#: their slot reuse is serialized by untraced semaphores and would appear
#: as false write/write races.
_TRACKED_COPY_LABEL = "coll-local"


@dataclass
class Access:
    """One byte-range access to a simulated buffer by one rank."""

    index: int          # position in the record stream
    rank: int
    core: int
    buf: int            # SimBuffer id
    start: int
    nbytes: int
    write: bool
    vc: VectorClock
    via: str            # "knem" | "local"
    cookie: Optional[int] = None

    @property
    def end(self) -> int:
        return self.start + self.nbytes

    def overlaps(self, other: "Access") -> bool:
        return (self.buf == other.buf
                and self.start < other.end and other.start < self.end)

    def describe(self) -> str:
        kind = "write" if self.write else "read"
        via = f" via cookie {self.cookie:#x}" if self.cookie is not None else ""
        return (f"rank {self.rank} {kind} of buf#{self.buf}"
                f"[{self.start}:{self.end}){via}")


@dataclass
class CopyUse:
    """One ``knem.copy`` against a region (for lifecycle/direction checks)."""

    index: int
    rank: Optional[int]
    core: int
    write: bool
    nbytes: int
    vc: Optional[VectorClock]


@dataclass
class Region:
    """Lifecycle of one registered KNEM region."""

    cookie: int
    owner_rank: Optional[int]
    owner_core: int
    buf: int
    buf_label: str
    offset: int
    length: int
    prot: int
    reg_index: int
    reg_vc: Optional[VectorClock]
    dereg_index: Optional[int] = None
    dereg_rank: Optional[int] = None
    dereg_vc: Optional[VectorClock] = None
    uses: list[CopyUse] = field(default_factory=list)

    @property
    def leaked(self) -> bool:
        return self.dereg_index is None

    @property
    def end(self) -> int:
        return self.offset + self.length


@dataclass
class Failure:
    """One failed KNEM ioctl (``knem.fail`` record)."""

    index: int
    rank: Optional[int]
    op: str
    error: str
    fields: dict[str, Any]


@dataclass
class HealthEvent:
    """One ``knem.degrade`` / ``knem.requalify`` health transition."""

    index: int
    rank: Optional[int]
    kind: str                     # "degrade" | "requalify"
    op: str
    consecutive: int
    disqualified: bool


@dataclass
class BenchEvent:
    """One sweep-substrate event (``chunk.quarantine`` / ``journal.skip`` /
    ``journal.error``): not attributed to any rank — the substrate around
    the simulation, not the simulation itself — but modelled so chaos
    campaigns can assert on the substrate's behaviour the same way the
    checkers assert on schedules."""

    index: int
    kind: str                     # "quarantine" | "skip" | "error"
    cell: Optional[str]
    fields: dict[str, Any]


@dataclass
class ServiceEvent:
    """One sweep-service event (``service.request`` / ``service.cache_hit``
    / ``service.restart``): the client side of a served sweep, emitted via
    ``SweepStats.events`` like the other substrate events.  Chaos
    campaigns use these to assert that a restarted server's cache kept
    its promises (restart followed by cache hits, never silent
    recomputation drift)."""

    index: int
    kind: str                     # "request" | "cache_hit" | "restart"
    cell: Optional[str]
    fields: dict[str, Any]


@dataclass
class RankEvent:
    """One process-level fault event (``rank.crash``/``rank.stall``) or a
    ``watchdog.timeout`` (rank is ``None`` for machine-wide events)."""

    index: int
    rank: Optional[int]
    kind: str                     # "crash" | "stall" | "timeout"
    op: str
    fields: dict[str, Any]


class TraceModel:
    """Everything the checkers need, extracted from one record stream."""

    def __init__(self, nprocs: int, machine: str = ""):
        self.nprocs = nprocs
        self.machine = machine
        self.core_rank: dict[int, int] = {}
        self.clocks = [VectorClock(nprocs) for _ in range(nprocs)]
        self.accesses: list[Access] = []
        self.regions: dict[int, Region] = {}
        self.failures: list[Failure] = []
        #: KNEM health transitions (fault-injected degraded runs).
        self.health_events: list[HealthEvent] = []
        #: process-level fault events (crash/stall/watchdog), alongside
        #: ``health_events`` — a degraded-but-clean schedule shows these
        #: without any race/deadlock findings.
        self.rank_events: list[RankEvent] = []
        #: sweep-substrate events (quarantined cells, journal skips/errors)
        #: emitted by ``run_sweep`` via ``SweepStats.events``.
        self.bench_events: list[BenchEvent] = []
        #: sweep-service events (requests routed to a server, cache hits,
        #: observed server restarts), also via ``SweepStats.events``.
        self.service_events: list[ServiceEvent] = []
        #: world ranks that died (fail-stop) during the run, in crash order.
        self.dead_ranks: list[int] = []
        #: hb token -> (sender rank, dest world rank) for sends that never
        #: recorded ``mpi.send_done`` (the sender is still inside the send).
        self.outstanding_sends: dict[int, tuple[int, int]] = {}
        #: request id -> (rank, source world rank or None) for receive posts
        #: that never matched an incoming envelope.
        self.pending_recvs: dict[int, tuple[int, Optional[int]]] = {}
        #: set by the runner when the run raised a DeadlockError.
        self.deadlock: Optional["DeadlockError"] = None
        #: set by the runner: the algorithm's declared direction contract.
        self.direction_spec = None
        self.n_records = 0

    # -- construction -----------------------------------------------------
    def ingest(self, records: "list[TraceRecord]") -> "TraceModel":
        """Scan the stream once, building clocks, accesses, and regions."""
        #: hb token -> sender snapshot the matching receive joins.  Written
        #: by ``mpi.send`` (call site) and overwritten by ``mpi.inject``
        #: (envelope post — includes protocol work such as registration).
        msg_snap: dict[int, VectorClock] = {}
        fin_snap: dict[int, VectorClock] = {}
        self.n_records = len(records)
        for index, rec in enumerate(records):
            handler = self._HANDLERS.get(rec.category)
            if handler is not None:
                handler(self, index, rec, msg_snap, fin_snap)
        return self

    def _rank_of_core(self, core: Optional[int]) -> Optional[int]:
        if core is None:
            return None
        return self.core_rank.get(core)

    def _tick(self, rank: Optional[int]) -> Optional[VectorClock]:
        """Advance ``rank``'s clock for one attributed record; snapshot it."""
        if rank is None or not 0 <= rank < self.nprocs:
            return None
        vc = self.clocks[rank]
        vc.tick(rank)
        return vc.copy()

    # -- record handlers --------------------------------------------------
    def _on_send(self, index, rec, msg_snap, fin_snap):
        rank = rec.fields["src"]
        snap = self._tick(rank)
        hb = rec.fields.get("hb", -1)
        if snap is not None and hb >= 0:
            msg_snap[hb] = snap
            self.outstanding_sends[hb] = (rank, rec.fields.get("dst", -1))

    def _on_inject(self, index, rec, msg_snap, fin_snap):
        rank = rec.fields["src"]
        snap = self._tick(rank)
        hb = rec.fields.get("hb", -1)
        if snap is not None and hb >= 0:
            msg_snap[hb] = snap

    def _on_send_done(self, index, rec, msg_snap, fin_snap):
        self._tick(rec.fields["src"])
        self.outstanding_sends.pop(rec.fields.get("hb", -1), None)

    def _on_recv_post(self, index, rec, msg_snap, fin_snap):
        rank = rec.fields["rank"]
        self._tick(rank)
        self.pending_recvs[rec.fields["req"]] = (rank, rec.fields.get("src"))

    def _on_recv(self, index, rec, msg_snap, fin_snap):
        rank = rec.fields["rank"]
        self._tick(rank)
        snap = msg_snap.get(rec.fields.get("hb", -1))
        if snap is not None and 0 <= rank < self.nprocs:
            self.clocks[rank].join(snap)
        self.pending_recvs.pop(rec.fields.get("req", -1), None)

    def _on_fin_send(self, index, rec, msg_snap, fin_snap):
        rank = rec.fields["rank"]
        snap = self._tick(rank)
        if snap is not None:
            fin_snap[rec.fields["seq"]] = snap

    def _on_fin_recv(self, index, rec, msg_snap, fin_snap):
        rank = rec.fields["rank"]
        self._tick(rank)
        snap = fin_snap.get(rec.fields["seq"])
        if snap is not None and 0 <= rank < self.nprocs:
            self.clocks[rank].join(snap)

    def _on_register(self, index, rec, msg_snap, fin_snap):
        f = rec.fields
        rank = self._rank_of_core(f.get("core"))
        snap = self._tick(rank)
        self.regions[f["cookie"]] = Region(
            cookie=f["cookie"], owner_rank=rank, owner_core=f.get("core", -1),
            buf=f["buf"], buf_label=f.get("buf_label", ""),
            offset=f.get("offset", 0), length=f["length"], prot=f["prot"],
            reg_index=index, reg_vc=snap,
        )

    def _on_deregister(self, index, rec, msg_snap, fin_snap):
        f = rec.fields
        rank = self._rank_of_core(f.get("core"))
        snap = self._tick(rank)
        region = self.regions.get(f["cookie"])
        if region is not None:
            region.dereg_index = index
            region.dereg_rank = rank
            region.dereg_vc = snap

    def _on_knem_copy(self, index, rec, msg_snap, fin_snap):
        f = rec.fields
        rank = self._rank_of_core(f.get("core"))
        snap = self._tick(rank)
        write = bool(f["write"])
        nbytes = f["nbytes"]
        region = self.regions.get(f["cookie"])
        if region is not None:
            region.uses.append(CopyUse(index, rank, f.get("core", -1),
                                       write, nbytes, snap))
        if rank is None or snap is None or not nbytes:
            return
        core = f.get("core", -1)
        # The region side: written by sender-writing copies, read otherwise.
        self.accesses.append(Access(
            index, rank, core, f["region_buf"], f["region_start"], nbytes,
            write, snap, via="knem", cookie=f["cookie"],
        ))
        # The local side moves the opposite direction.
        self.accesses.append(Access(
            index, rank, core, f["local_buf"], f["local_start"], nbytes,
            not write, snap, via="knem", cookie=f["cookie"],
        ))

    def _on_knem_fail(self, index, rec, msg_snap, fin_snap):
        f = rec.fields
        rank = self._rank_of_core(f.get("core"))
        self._tick(rank)
        self.failures.append(Failure(index, rank, f.get("op", "?"),
                                     f.get("error", "?"), dict(f)))

    def _on_degrade(self, index, rec, msg_snap, fin_snap):
        f = rec.fields
        rank = self._rank_of_core(f.get("core"))
        self._tick(rank)
        self.health_events.append(HealthEvent(
            index, rank, "degrade", f.get("op", "?"),
            f.get("consecutive", 0), bool(f.get("disqualified", False)),
        ))

    def _on_requalify(self, index, rec, msg_snap, fin_snap):
        f = rec.fields
        rank = self._rank_of_core(f.get("core"))
        self._tick(rank)
        self.health_events.append(HealthEvent(
            index, rank, "requalify", f.get("op", "?"),
            f.get("after_failures", 0), False,
        ))

    def _on_rank_crash(self, index, rec, msg_snap, fin_snap):
        f = rec.fields
        rank = f.get("rank")
        self._tick(rank)
        self.rank_events.append(RankEvent(index, rank, "crash",
                                          f.get("op", ""), dict(f)))
        if rank is not None and rank not in self.dead_ranks:
            self.dead_ranks.append(rank)

    def _on_rank_stall(self, index, rec, msg_snap, fin_snap):
        f = rec.fields
        rank = f.get("rank")
        self._tick(rank)
        self.rank_events.append(RankEvent(index, rank, "stall",
                                          f.get("op", ""), dict(f)))

    def _on_watchdog(self, index, rec, msg_snap, fin_snap):
        self.rank_events.append(RankEvent(index, None, "timeout", "",
                                          dict(rec.fields)))

    def _on_chunk_quarantine(self, index, rec, msg_snap, fin_snap):
        f = rec.fields
        self.bench_events.append(BenchEvent(index, "quarantine",
                                            f.get("cell"), dict(f)))

    def _on_journal_skip(self, index, rec, msg_snap, fin_snap):
        f = rec.fields
        self.bench_events.append(BenchEvent(index, "skip",
                                            f.get("cell"), dict(f)))

    def _on_journal_error(self, index, rec, msg_snap, fin_snap):
        f = rec.fields
        self.bench_events.append(BenchEvent(index, "error",
                                            f.get("cell"), dict(f)))

    def _on_service_request(self, index, rec, msg_snap, fin_snap):
        self.service_events.append(ServiceEvent(index, "request", None,
                                                dict(rec.fields)))

    def _on_service_cache_hit(self, index, rec, msg_snap, fin_snap):
        f = rec.fields
        self.service_events.append(ServiceEvent(index, "cache_hit",
                                                f.get("cell"), dict(f)))

    def _on_service_restart(self, index, rec, msg_snap, fin_snap):
        self.service_events.append(ServiceEvent(index, "restart", None,
                                                dict(rec.fields)))

    def _on_mem_copy(self, index, rec, msg_snap, fin_snap):
        f = rec.fields
        label = f.get("label", "")
        if label in _KNEM_COPY_LABELS or label != _TRACKED_COPY_LABEL:
            return
        rank = self._rank_of_core(f.get("core"))
        snap = self._tick(rank)
        if rank is None or snap is None or not f["nbytes"]:
            return
        core = f.get("core", -1)
        self.accesses.append(Access(index, rank, core, f["src_buf"],
                                    f["src_off"], f["nbytes"], False, snap,
                                    via="local"))
        self.accesses.append(Access(index, rank, core, f["dst_buf"],
                                    f["dst_off"], f["nbytes"], True, snap,
                                    via="local"))

    _HANDLERS = {
        "mpi.send": _on_send,
        "mpi.inject": _on_inject,
        "mpi.send_done": _on_send_done,
        "mpi.recv_post": _on_recv_post,
        "mpi.recv": _on_recv,
        "mpi.fin_send": _on_fin_send,
        "mpi.fin_recv": _on_fin_recv,
        "knem.register": _on_register,
        "knem.deregister": _on_deregister,
        "knem.copy": _on_knem_copy,
        "knem.fail": _on_knem_fail,
        "knem.degrade": _on_degrade,
        "knem.requalify": _on_requalify,
        "rank.crash": _on_rank_crash,
        "rank.stall": _on_rank_stall,
        "watchdog.timeout": _on_watchdog,
        "chunk.quarantine": _on_chunk_quarantine,
        "journal.skip": _on_journal_skip,
        "journal.error": _on_journal_error,
        "service.request": _on_service_request,
        "service.cache_hit": _on_service_cache_hit,
        "service.restart": _on_service_restart,
        "copy": _on_mem_copy,
    }

    # -- queries -----------------------------------------------------------
    def concurrent(self, a: Access, b: Access) -> bool:
        """True when neither access happens-before the other."""
        return not VectorClock.ordered(a.vc, a.rank, b.vc, b.rank)

    def accesses_by_buffer(self) -> dict[int, list[Access]]:
        grouped: dict[int, list[Access]] = {}
        for acc in self.accesses:
            grouped.setdefault(acc.buf, []).append(acc)
        return grouped


def build_model(job: "Job", records: "list[TraceRecord] | None" = None,
                deadlock: "DeadlockError | None" = None,
                direction_spec=None) -> TraceModel:
    """Build a :class:`TraceModel` from a completed (or crashed) job.

    ``records`` defaults to the machine tracer's full stream; pass a slice
    when several runs share one machine (the pytest plugin does).
    """
    model = TraceModel(job.nprocs, machine=job.machine.spec.name)
    model.core_rank = {p.core: p.rank for p in job.procs}
    model.deadlock = deadlock
    model.direction_spec = direction_spec
    if records is None:
        records = job.machine.tracer.records
    model.ingest(records)
    return model
