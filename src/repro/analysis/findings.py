"""Findings, reports, and the checker registry.

Every checker consumes a :class:`~repro.analysis.model.TraceModel` and
yields :class:`Finding` objects.  Checkers register themselves with
:func:`register_checker`, so the runner, the CLI, and the pytest plugin all
see the same set without hand-maintained lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.model import TraceModel

__all__ = [
    "ERROR",
    "WARNING",
    "Finding",
    "Report",
    "register_checker",
    "checker_names",
    "get_checker",
    "run_checkers",
]

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One structured analyzer finding.

    ``checker`` names the pass that produced it (``race``, ``cookie``,
    ``direction``, ``deadlock``); ``category`` is a stable machine-readable
    slug within that pass (e.g. ``write-write-race``).
    """

    checker: str
    category: str
    severity: str
    message: str
    rank: int | None = None
    details: dict = field(default_factory=dict)

    def render(self) -> str:
        where = f" [rank {self.rank}]" if self.rank is not None else ""
        return (f"{self.severity.upper():7s} "
                f"{self.checker}/{self.category}{where}: {self.message}")


@dataclass
class Report:
    """The outcome of analyzing one run: findings plus run metadata."""

    subject: str
    findings: list[Finding]
    machine: str = ""
    nprocs: int = 0
    nbytes: int = 0
    error: str = ""

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    def by_checker(self, name: str) -> list[Finding]:
        return [f for f in self.findings if f.checker == name]

    def render(self) -> str:
        head = f"analysis: {self.subject}"
        if self.machine:
            head += f" on {self.machine} ({self.nprocs} ranks, {self.nbytes}B)"
        lines = [head, "-" * len(head)]
        if self.error:
            lines.append(f"run raised: {self.error}")
        if not self.findings and not self.error:
            lines.append("clean: no findings")
        for f in self.findings:
            lines.append(f.render())
        return "\n".join(lines)


#: name -> checker callable(model) -> Iterable[Finding]
_CHECKERS: dict[str, Callable[["TraceModel"], Iterable[Finding]]] = {}


def register_checker(name: str):
    """Decorator adding a trace checker to the registry."""

    def wrap(fn: Callable[["TraceModel"], Iterable[Finding]]):
        _CHECKERS[name] = fn
        fn.checker_name = name  # type: ignore[attr-defined]
        return fn

    return wrap


def checker_names() -> list[str]:
    return sorted(_CHECKERS)


def get_checker(name: str) -> Callable[["TraceModel"], Iterable[Finding]]:
    try:
        return _CHECKERS[name]
    except KeyError:
        raise KeyError(
            f"unknown checker {name!r}; available: {checker_names()}"
        ) from None


def run_checkers(model: "TraceModel",
                 checkers: Iterable[str] | None = None) -> list[Finding]:
    """Run the named checkers (default: all registered) over one model."""
    names = list(checkers) if checkers is not None else checker_names()
    findings: list[Finding] = []
    for name in names:
        findings.extend(get_checker(name)(model))
    return findings


def iter_findings(findings: Iterable[Finding]) -> Iterator[str]:  # pragma: no cover
    for f in findings:
        yield f.render()
