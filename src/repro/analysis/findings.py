"""Findings, reports, and the checker registry.

Every checker consumes a :class:`~repro.analysis.model.TraceModel` and
yields :class:`Finding` objects.  Checkers register themselves with
:func:`register_checker`, so the runner, the CLI, and the pytest plugin all
see the same set without hand-maintained lists.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.model import TraceModel

__all__ = [
    "ERROR",
    "WARNING",
    "Finding",
    "Report",
    "Baseline",
    "finding_id",
    "register_checker",
    "checker_names",
    "get_checker",
    "run_checkers",
]

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One structured analyzer finding.

    ``checker`` names the pass that produced it (``race``, ``cookie``,
    ``direction``, ``deadlock``); ``category`` is a stable machine-readable
    slug within that pass (e.g. ``write-write-race``).
    """

    checker: str
    category: str
    severity: str
    message: str
    rank: int | None = None
    details: dict = field(default_factory=dict)

    @property
    def fid(self) -> str:
        """Stable 12-hex identifier (see :func:`finding_id`)."""
        return finding_id(self)

    def render(self) -> str:
        where = f" [rank {self.rank}]" if self.rank is not None else ""
        return (f"{self.severity.upper():7s} "
                f"{self.checker}/{self.category}{where} "
                f"({self.fid}): {self.message}")


@dataclass
class Report:
    """The outcome of analyzing one run: findings plus run metadata."""

    subject: str
    findings: list[Finding]
    machine: str = ""
    nprocs: int = 0
    nbytes: int = 0
    error: str = ""

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    def by_checker(self, name: str) -> list[Finding]:
        return [f for f in self.findings if f.checker == name]

    def render(self) -> str:
        head = f"analysis: {self.subject}"
        if self.machine:
            head += f" on {self.machine} ({self.nprocs} ranks, {self.nbytes}B)"
        lines = [head, "-" * len(head)]
        if self.error:
            lines.append(f"run raised: {self.error}")
        if not self.findings and not self.error:
            lines.append("clean: no findings")
        for f in self.findings:
            lines.append(f.render())
        return "\n".join(lines)


def finding_id(f: Finding) -> str:
    """Deterministic 12-hex id over the finding's identity fields.

    Computed from ``checker``/``category``/``rank``/``message`` only, so a
    finding keeps its id across runs, re-orderings, and detail changes —
    stable enough to pin in a suppression baseline.
    """
    payload = "\0".join((f.checker, f.category, str(f.rank), f.message))
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=6).hexdigest()


@dataclass
class Baseline:
    """Known-findings suppression list (``analysis-baseline.json``).

    Format::

        {"version": 1,
         "suppress": [{"id": "a1b2c3d4e5f6", "reason": "why"}]}

    Suppressed findings are still reported (marked) but do not affect the
    exit code.
    """

    suppress: dict[str, str] = field(default_factory=dict)
    path: str = ""

    @classmethod
    def load(cls, path: "str | Path") -> "Baseline":
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
        if raw.get("version") != 1:
            raise ValueError(
                f"{path}: unsupported baseline version {raw.get('version')!r}")
        suppress = {}
        for entry in raw.get("suppress", []):
            suppress[str(entry["id"])] = str(entry.get("reason", ""))
        return cls(suppress=suppress, path=str(path))

    def suppressed(self, f: Finding) -> bool:
        return f.fid in self.suppress

    def partition(self, findings: Iterable[Finding]
                  ) -> "tuple[list[Finding], list[Finding]]":
        """Split into (active, suppressed)."""
        active: list[Finding] = []
        quiet: list[Finding] = []
        for f in findings:
            (quiet if self.suppressed(f) else active).append(f)
        return active, quiet


#: name -> checker callable(model) -> Iterable[Finding]
_CHECKERS: dict[str, Callable[["TraceModel"], Iterable[Finding]]] = {}


def register_checker(name: str):
    """Decorator adding a trace checker to the registry."""

    def wrap(fn: Callable[["TraceModel"], Iterable[Finding]]):
        _CHECKERS[name] = fn
        fn.checker_name = name  # type: ignore[attr-defined]
        return fn

    return wrap


def checker_names() -> list[str]:
    return sorted(_CHECKERS)


def get_checker(name: str) -> Callable[["TraceModel"], Iterable[Finding]]:
    try:
        return _CHECKERS[name]
    except KeyError:
        raise KeyError(
            f"unknown checker {name!r}; available: {checker_names()}"
        ) from None


def run_checkers(model: "TraceModel",
                 checkers: Iterable[str] | None = None) -> list[Finding]:
    """Run the named checkers (default: all registered) over one model."""
    names = list(checkers) if checkers is not None else checker_names()
    findings: list[Finding] = []
    for name in names:
        findings.extend(get_checker(name)(model))
    return findings


def iter_findings(findings: Iterable[Finding]) -> Iterator[str]:  # pragma: no cover
    for f in findings:
        yield f.render()
