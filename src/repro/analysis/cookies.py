"""Cookie-lifecycle lint for KNEM regions.

Checks, per registered region:

- **use-after-deregister** — a copy against a cookie that the driver already
  rejected (``knem.fail`` with ``KnemInvalidCookie``), or a copy that
  succeeded but is vector-clock *concurrent* with the deregistration (the
  schedule only got away with it because of event ordering luck);
- **double-destroy** — deregistering a cookie that is not live;
- **out-of-band visibility** — a copy by a rank other than the owner whose
  clock does not include the registration: the cookie reached the copier
  without any traced synchronization, i.e. it was guessed, cached from an
  earlier collective, or leaked through an untraced channel;
- **overlapping registration** — two simultaneously-live regions covering
  overlapping byte ranges of one buffer (legal in the real driver, but in
  these schedules it means two collectives disagree about buffer ownership);
- **leaked regions** — registrations never deregistered by the end of the
  run (pinned pages held forever; the paper's persistent-region cache does
  this deliberately, a schedule under test should not).
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import ERROR, WARNING, Finding, register_checker
from repro.analysis.model import Region, TraceModel
from repro.analysis.vectorclock import VectorClock

__all__ = ["check_cookies"]


def _regions_overlap(a: Region, b: Region) -> bool:
    if a.buf != b.buf or not a.length or not b.length:
        return False
    if not (a.offset < b.end and b.offset < a.end):
        return False
    # Live intervals in stream order: [reg_index, dereg_index or inf).
    a_end = a.dereg_index if a.dereg_index is not None else float("inf")
    b_end = b.dereg_index if b.dereg_index is not None else float("inf")
    return a.reg_index < b_end and b.reg_index < a_end


@register_checker("cookie")
def check_cookies(model: TraceModel) -> Iterator[Finding]:
    # Failed ioctls recorded by the driver.
    for fail in model.failures:
        if fail.error != "KnemInvalidCookie":
            continue
        cookie = fail.fields.get("cookie")
        where = f"cookie {cookie:#x}" if cookie is not None else "a cookie"
        if fail.op == "copy":
            yield Finding(
                checker="cookie", category="use-after-deregister",
                severity=ERROR, rank=fail.rank,
                message=(f"copy through {where} rejected by the driver: the "
                         f"region was already deregistered"),
                details=dict(fail.fields, index=fail.index),
            )
        elif fail.op == "destroy":
            yield Finding(
                checker="cookie", category="double-destroy",
                severity=ERROR, rank=fail.rank,
                message=f"deregistration of {where} which is not live",
                details=dict(fail.fields, index=fail.index),
            )

    regions = sorted(model.regions.values(), key=lambda r: r.reg_index)
    for region in regions:
        for use in region.uses:
            # Copies concurrent with (or HB-after) the deregistration: the
            # driver accepted them only because the events happened to land
            # in a benign order.
            if (region.dereg_vc is not None and use.vc is not None
                    and region.dereg_rank is not None
                    and use.rank is not None
                    and not VectorClock.ordered(use.vc, use.rank,
                                                region.dereg_vc,
                                                region.dereg_rank)):
                yield Finding(
                    checker="cookie", category="deregister-race",
                    severity=ERROR, rank=use.rank,
                    message=(f"copy through cookie {region.cookie:#x} by "
                             f"rank {use.rank} is concurrent with its "
                             f"deregistration by rank {region.dereg_rank} — "
                             f"no happens-before edge orders the copy "
                             f"before the destroy"),
                    details={"cookie": region.cookie, "copy": use.index,
                             "deregister": region.dereg_index},
                )
            # Out-of-band visibility: a non-owner copier must have joined
            # the owner's clock at (or after) the registration tick.
            if (use.rank is not None and region.owner_rank is not None
                    and use.rank != region.owner_rank
                    and use.vc is not None and region.reg_vc is not None
                    and not region.reg_vc.leq(use.vc)):
                yield Finding(
                    checker="cookie", category="cookie-not-visible",
                    severity=ERROR, rank=use.rank,
                    message=(f"rank {use.rank} copied through cookie "
                             f"{region.cookie:#x} before rank "
                             f"{region.owner_rank}'s registration was "
                             f"visible to it (the cookie arrived through "
                             f"an unsynchronized channel)"),
                    details={"cookie": region.cookie, "copy": use.index,
                             "register": region.reg_index},
                )

    for i, a in enumerate(regions):
        for b in regions[i + 1:]:
            if _regions_overlap(a, b):
                yield Finding(
                    checker="cookie", category="overlapping-registration",
                    severity=WARNING, rank=b.owner_rank,
                    message=(f"cookie {b.cookie:#x} registers "
                             f"buf#{b.buf}[{b.offset}:{b.end}) while cookie "
                             f"{a.cookie:#x} covering "
                             f"[{a.offset}:{a.end}) is still live"),
                    details={"first": a.cookie, "second": b.cookie,
                             "buf": a.buf},
                )

    leaked = [r for r in regions if r.leaked]
    for region in leaked:
        yield Finding(
            checker="cookie", category="leaked-region",
            severity=WARNING, rank=region.owner_rank,
            message=(f"cookie {region.cookie:#x} "
                     f"({region.buf_label or f'buf#{region.buf}'}, "
                     f"{region.length}B) was never deregistered — the pages "
                     f"stay pinned past the end of the run"),
            details={"cookie": region.cookie, "register": region.reg_index},
        )
