"""Deadlock diagnosis: name the wait-for cycle, not just the stuck ranks.

When a run dies with :class:`~repro.errors.DeadlockError`, the simulator
reports *which* processes are blocked; this checker reconstructs *why* from
the trace: every ``mpi.send`` without its ``mpi.send_done`` is a sender
still inside a send (a rendezvous waiting for its FIN), every
``mpi.recv_post`` without a matching ``mpi.recv`` is an unmatched receive.
Those outstanding operations become wait-for edges between ranks, and a
cycle among the blocked ranks is the classic send/send (or mismatched-tag)
deadlock, reported by name.
"""

from __future__ import annotations

import re
from typing import Iterator, Optional

from repro.analysis.findings import ERROR, WARNING, Finding, register_checker
from repro.analysis.model import TraceModel

__all__ = ["check_deadlock"]

_RANK_NAME = re.compile(r"^rank(\d+)$")


def _blocked_ranks(model: TraceModel) -> set[int]:
    ranks = set()
    for name in model.deadlock.blocked:
        match = _RANK_NAME.match(name)
        if match:
            ranks.add(int(match.group(1)))
    return ranks


def _find_cycle(edges: dict[int, list[tuple[int, str]]]) -> Optional[list[int]]:
    """First wait-for cycle (DFS over definite edges), as a rank list."""
    state: dict[int, int] = {}  # 0 visiting, 1 done
    path: list[int] = []

    def dfs(rank: int) -> Optional[list[int]]:
        state[rank] = 0
        path.append(rank)
        for peer, _why in edges.get(rank, ()):
            if peer not in state:
                cycle = dfs(peer)
                if cycle is not None:
                    return cycle
            elif state[peer] == 0:
                return path[path.index(peer):]
        path.pop()
        state[rank] = 1
        return None

    for rank in sorted(edges):
        if rank not in state:
            cycle = dfs(rank)
            if cycle is not None:
                return cycle
    return None


@register_checker("deadlock")
def check_deadlock(model: TraceModel) -> Iterator[Finding]:
    if model.deadlock is None:
        return
    blocked = _blocked_ranks(model)

    # Wait-for edges among the blocked ranks.  Edges pointing at a rank
    # that died (fail-stop crash) are annotated: the wait is explained by
    # the death, not by a cyclic schedule — a crashed-rank hang is
    # degraded, not deadlocked.
    dead = set(model.dead_ranks)

    def _died(rank: int) -> str:
        return " — peer rank died (fail-stop)" if rank in dead else ""

    edges: dict[int, list[tuple[int, str]]] = {}
    for hb, (src, dst) in sorted(model.outstanding_sends.items()):
        if src in blocked and src not in dead:
            edges.setdefault(src, []).append(
                (dst, f"send to rank {dst} never completed "
                      f"(hb token {hb}){_died(dst)}"))
    any_source: list[int] = []
    for req, (rank, src) in sorted(model.pending_recvs.items()):
        if rank not in blocked or rank in dead:
            continue
        if src is None:
            any_source.append(rank)
        else:
            edges.setdefault(rank, []).append(
                (src, f"receive from rank {src} never matched "
                      f"(request {req}){_died(src)}"))

    cycle = _find_cycle(edges)
    if cycle is not None:
        hops = []
        for i, rank in enumerate(cycle):
            peer = cycle[(i + 1) % len(cycle)]
            why = next(w for p, w in edges[rank] if p == peer)
            hops.append(f"rank {rank} -> rank {peer} ({why})")
        names = " -> ".join(f"rank {r}" for r in cycle + [cycle[0]])
        yield Finding(
            checker="deadlock", category="wait-cycle", severity=ERROR,
            rank=cycle[0],
            message=f"wait-for cycle {names}: " + "; ".join(hops),
            details={"cycle": cycle},
        )

    # Per-rank explanation of what each blocked rank was stuck on, whether
    # or not a definite cycle exists (ANY_SOURCE receives have no single
    # target edge, mismatched tags may leave a dangling chain).
    waiting = model.deadlock.waiting
    for name in model.deadlock.blocked:
        match = _RANK_NAME.match(name)
        rank = int(match.group(1)) if match else None
        reasons = [why for _peer, why in edges.get(rank, [])]
        if rank in any_source:
            reasons.append("receive from ANY_SOURCE never matched")
        if not reasons:
            event = waiting.get(name)
            reasons.append(f"blocked on {event}" if event
                           else "blocked on an untraced event")
        yield Finding(
            checker="deadlock",
            category="blocked-rank" if cycle is None else "cycle-member",
            severity=ERROR if cycle is None else WARNING,
            rank=rank,
            message=f"{name}: " + "; ".join(reasons),
            details={"process": name},
        )
