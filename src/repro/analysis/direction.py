"""Direction-control checking: do copies match the declared strategy?

The paper's Section III direction control is the contract under test: a
*receiver-reading* schedule registers regions ``PROT_READ`` and every peer
pulls (``write=False``); a *sender-writing* schedule (Gather) registers the
root's receive buffer ``PROT_WRITE`` and every peer pushes.  Two layers:

- **trace checks** (:func:`check_direction`, registered as ``direction``):
  protection violations the driver rejected, over-permissive registrations,
  copies whose direction contradicts the algorithm's declared
  :class:`DirectionSpec`, and the root-serialization anti-pattern — a
  schedule declared concurrent whose cross-rank copies are all issued by a
  single core (the bottleneck direction control exists to remove);
- **static checks** (:func:`static_scan`): an AST walk over collective
  sources pairing ``create_region`` protection flags with ``knem.copy``
  directions *within each function* — catching a mismatched schedule
  without running it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from repro.analysis.findings import ERROR, WARNING, Finding, register_checker
from repro.analysis.model import TraceModel
from repro.kernel.knem import PROT_READ, PROT_WRITE

__all__ = ["DirectionSpec", "check_direction", "static_scan"]

#: Direction names for a copy (write flag) and a protection mask.
_DIR_NAME = {False: "receiver-reading", True: "sender-writing"}


@dataclass(frozen=True)
class DirectionSpec:
    """An algorithm's declared direction-control contract.

    ``direction`` is ``"read"`` (all cross-rank copies receiver-reading),
    ``"write"`` (all sender-writing), or ``"mixed"`` (composed schedules
    like AllGather = Gather + Bcast; per-copy direction is not checked).
    ``concurrent`` declares that cross-rank copies are expected to be
    spread over several issuing cores — the root-serialization check only
    fires for specs that declare it.
    """

    direction: str = "mixed"
    concurrent: bool = False

    def __post_init__(self) -> None:
        if self.direction not in ("read", "write", "mixed"):
            raise ValueError(f"bad direction {self.direction!r}")


@register_checker("direction")
def check_direction(model: TraceModel) -> Iterator[Finding]:
    # Copies the driver rejected for wrong direction.
    for fail in model.failures:
        if fail.op == "copy" and fail.error == "KnemPermissionError":
            want = _DIR_NAME[bool(fail.fields.get("write"))]
            yield Finding(
                checker="direction", category="protection-violation",
                severity=ERROR, rank=fail.rank,
                message=(f"a {want} copy was rejected: the region's "
                         f"protection flags do not allow that direction"),
                details=dict(fail.fields, index=fail.index),
            )

    for region in sorted(model.regions.values(), key=lambda r: r.reg_index):
        used = {use.write for use in region.uses}
        if region.prot == (PROT_READ | PROT_WRITE) and len(used) < 2:
            how = (_DIR_NAME[used.pop()] + " only") if used else "never"
            yield Finding(
                checker="direction", category="over-permissive-region",
                severity=WARNING, rank=region.owner_rank,
                message=(f"cookie {region.cookie:#x} is registered "
                         f"read+write but used {how}: grant only the "
                         f"direction the schedule needs"),
                details={"cookie": region.cookie, "prot": region.prot},
            )

    spec: Optional[DirectionSpec] = model.direction_spec
    if spec is None:
        return

    # Cross-rank copies: a rank moving data through a peer's region.
    cross = [(region, use)
             for region in model.regions.values()
             for use in region.uses
             if use.rank is not None and use.rank != region.owner_rank]
    if spec.direction in ("read", "write"):
        want_write = spec.direction == "write"
        for region, use in sorted(cross, key=lambda ru: ru[1].index):
            if use.write != want_write:
                yield Finding(
                    checker="direction", category="direction-mismatch",
                    severity=ERROR, rank=use.rank,
                    message=(f"schedule declares {_DIR_NAME[want_write]} "
                             f"but rank {use.rank}'s copy through cookie "
                             f"{region.cookie:#x} is "
                             f"{_DIR_NAME[use.write]}"),
                    details={"cookie": region.cookie, "copy": use.index},
                )
    if spec.concurrent and len(cross) >= 2:
        issuers = {use.rank for _region, use in cross}
        if len(issuers) == 1:
            only = next(iter(issuers))
            yield Finding(
                checker="direction", category="root-serialization",
                severity=WARNING, rank=only,
                message=(f"schedule declares concurrent copies but all "
                         f"{len(cross)} cross-rank copies were issued by "
                         f"rank {only}'s core — the schedule serializes on "
                         f"one core instead of using direction control"),
                details={"rank": only, "copies": len(cross)},
            )


# ---------------------------------------------------------------- static ----

def _prot_of(node: ast.expr) -> Optional[int]:
    """Evaluate a protection-flag expression (names, |, int literals)."""
    if isinstance(node, ast.Name):
        return {"PROT_READ": PROT_READ, "PROT_WRITE": PROT_WRITE}.get(node.id)
    if isinstance(node, ast.Attribute):
        return {"PROT_READ": PROT_READ, "PROT_WRITE": PROT_WRITE}.get(node.attr)
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left, right = _prot_of(node.left), _prot_of(node.right)
        if left is not None and right is not None:
            return left | right
    return None


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


class _FunctionScan(ast.NodeVisitor):
    """Collects region protections and copy directions inside one function."""

    def __init__(self) -> None:
        self.prots: list[tuple[int, int]] = []    # (lineno, prot mask)
        self.writes: list[tuple[int, bool]] = []  # (lineno, write flag)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested functions are scanned as their own scope

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name == "create_region":
            prot_node: Optional[ast.expr] = node.args[-1] if node.args else None
            for kw in node.keywords:
                if kw.arg == "prot":
                    prot_node = kw.value
            prot = _prot_of(prot_node) if prot_node is not None else None
            if prot is not None:
                self.prots.append((node.lineno, prot))
        elif name in ("copy", "icopy"):
            for kw in node.keywords:
                if kw.arg == "write" and isinstance(kw.value, ast.Constant):
                    self.writes.append((node.lineno, bool(kw.value.value)))
        self.generic_visit(node)


def _scan_function(path: Path, func: ast.FunctionDef) -> Iterator[Finding]:
    scan = _FunctionScan()
    for stmt in func.body:
        scan.visit(stmt)
    if not scan.prots or not scan.writes:
        return
    mask = 0
    for _line, prot in scan.prots:
        mask |= prot
    for line, write in scan.writes:
        needed = PROT_WRITE if write else PROT_READ
        if not mask & needed:
            granted = " | ".join(
                n for n, bit in (("PROT_READ", PROT_READ),
                                 ("PROT_WRITE", PROT_WRITE)) if mask & bit
            ) or "nothing"
            yield Finding(
                checker="direction", category="static-direction-mismatch",
                severity=ERROR,
                message=(f"{path.name}:{line} in {func.name}(): "
                         f"{_DIR_NAME[write]} copy (write={write}) but the "
                         f"function only registers regions with {granted}"),
                details={"file": str(path), "function": func.name,
                         "line": line},
            )


def static_scan(paths: "list[Path | str] | None" = None) -> list[Finding]:
    """AST-scan collective sources for direction mismatches.

    Defaults to every module in ``src/repro/coll/`` next to this package.
    """
    if paths is None:
        coll_dir = Path(__file__).resolve().parent.parent / "coll"
        paths = sorted(coll_dir.glob("*.py"))
    findings: list[Finding] = []
    for path in paths:
        path = Path(path)
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(_scan_function(path, node))
    return findings
