"""Data-race detection over traced buffer accesses.

Two accesses race when they come from different ranks, touch overlapping
byte ranges of the same :class:`~repro.hardware.memory.SimBuffer`, at least
one writes, and their vector-clock snapshots are concurrent (neither
happens-before the other through the message-layer edges).

Scope: in-kernel KNEM copies and the collectives' explicit ``coll-local``
copies.  Transport-internal copies (FIFO fragments, eager staging) are
excluded — their buffers are recycled under semaphore protection the trace
does not model, which would read as false write/write races.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import ERROR, Finding, register_checker
from repro.analysis.model import Access, TraceModel

__all__ = ["check_races"]

#: Cap on reported races per buffer — a broken schedule races everywhere,
#: and one finding per overlapping pair buries the signal.
_MAX_PER_BUFFER = 8


def _race_category(a: Access, b: Access) -> str:
    return "write-write-race" if a.write and b.write else "read-write-race"


@register_checker("race")
def check_races(model: TraceModel) -> Iterator[Finding]:
    for buf, accesses in sorted(model.accesses_by_buffer().items()):
        reported = 0
        for i, a in enumerate(accesses):
            for b in accesses[i + 1:]:
                if a.rank == b.rank:
                    continue
                if not (a.write or b.write):
                    continue
                if not a.overlaps(b):
                    continue
                if not model.concurrent(a, b):
                    continue
                lo = max(a.start, b.start)
                hi = min(a.end, b.end)
                yield Finding(
                    checker="race",
                    category=_race_category(a, b),
                    severity=ERROR,
                    message=(f"{a.describe()} is concurrent with "
                             f"{b.describe()} (overlap [{lo}:{hi}) of "
                             f"buf#{buf}, no happens-before edge)"),
                    rank=a.rank,
                    details={"buf": buf, "overlap": (lo, hi),
                             "first": a.index, "second": b.index},
                )
                reported += 1
                if reported >= _MAX_PER_BUFFER:
                    break
            if reported >= _MAX_PER_BUFFER:
                break
