"""The paper's experiments: one entry per figure/table plus ablations.

Each experiment returns an :class:`~repro.bench.harness.ExperimentResult`
(figures) or a dict (Table I / ablations) and accepts a ``scale`` knob:

- ``scale="full"``   — paper-size grids (slow; use the CLI overnight);
- ``scale="bench"``  — reduced iteration counts, full size range (the
  pytest-benchmark targets use this);
- ``scale="smoke"``  — minimal grid for CI smoke tests.

Expected shapes (from the paper) are encoded in ``PAPER_EXPECTATIONS`` so
benches and EXPERIMENTS.md can compare measured against published claims.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.bench.harness import ExperimentResult, checkpoint_path, run_sweep
from repro.bench.imb import ImbSettings
from repro.errors import BenchmarkError
from repro.mpi import stacks as stk
from repro.units import KiB, MiB

__all__ = [
    "SCALES",
    "PAPER_EXPECTATIONS",
    "figure4",
    "figure5",
    "figure6",
    "scatter_text",
    "figure7",
    "figure8",
    "table1",
    "ablation_direction",
    "ablation_registration",
    "ablation_topology",
    "ablation_rotation",
    "EXPERIMENTS",
]

SCALES = ("full", "bench", "smoke")

#: IMB message grid of Figures 5-8 (32K..8M) and Figure 4 (512K..8M).
FIG_SIZES = [32 * KiB, 64 * KiB, 128 * KiB, 256 * KiB, 512 * KiB,
             1 * MiB, 2 * MiB, 4 * MiB, 8 * MiB]
FIG4_SIZES = [512 * KiB, 1 * MiB, 2 * MiB, 4 * MiB, 8 * MiB]

#: ranks used per machine (one per core, Section VI-A)
MACHINE_RANKS = {"zoot": 16, "dancer": 8, "saturn": 16, "ig": 48}

#: Published claims, for EXPERIMENTS.md and shape assertions.
PAPER_EXPECTATIONS = {
    "fig4": "hierarchy alone 2.2-2.4x over linear; pipelining an extra up to 1.25x; "
            "best pipeline 16K (intermediate sizes) / 512K (large)",
    "fig5": {"zoot": (1.0, 2.5), "dancer": (1.2, 2.8), "saturn": (1.0, 1.8),
             "ig": (1.5, 2.1)},
    "fig6": {"zoot": 3.1, "dancer": 2.2, "saturn": 2.6, "ig": 3.2},
    "scatter": {"zoot": 3.0, "dancer": 2.0, "saturn": 4.0, "ig": 4.0},
    "fig7": {"zoot": 2.0, "dancer": 1.9, "saturn": 1.25, "ig": 2.7},
    "fig8": "KNEM AllGather best on Zoot/Dancer/Saturn (except some medium sizes); "
            "Tuned-KNEM up to 25% better on IG",
    "table1": {
        "zoot": {"Open MPI": (405.7, 2891.2), "MPICH2": (152.3, 2640.4),
                 "KNEM Coll": (26.8, 2508.4)},
        "ig": {"Open MPI": (550.2, 6650.9), "MPICH2": (293.9, 6413.8),
               "KNEM Coll": (198.0, 6288.1)},
    },
}


def _settings(scale: str) -> ImbSettings:
    if scale == "full":
        return ImbSettings(max_iterations=8)
    if scale == "bench":
        # off_cache makes every iteration cold, so skipping the warm-up
        # does not change per-op times — it halves simulation cost.
        return ImbSettings(max_iterations=1, warmups=0)
    if scale == "smoke":
        return ImbSettings(max_iterations=1, warmups=0)
    raise BenchmarkError(f"unknown scale {scale!r}; use one of {SCALES}")


def _sizes(scale: str, sizes: list[int]) -> list[int]:
    if scale == "smoke":
        return [sizes[0], sizes[-1]]
    if scale == "bench":
        # Every other point of the paper grid.  The 9-point IMB grids also
        # drop the 8 MiB endpoint: simulating the copy-in/copy-out stacks at
        # 8 MiB on the 48-core machine costs minutes of wall time per point
        # and the 2 MiB point already shows the large-message regime (the
        # full grid is scale="full").
        trimmed = sizes[::2] if len(sizes) > 5 else sizes
        return trimmed[:-1] if len(sizes) > 5 else trimmed
    return sizes


def _paper_grid(experiment: str, operation: str, machine: str, scale: str,
                stacks: Optional[Iterable] = None,
                resume: bool = False, jobs: int = 1,
                service: Optional[str] = None) -> ExperimentResult:
    ranks = MACHINE_RANKS[machine]
    return run_sweep(
        experiment=experiment,
        machine=machine,
        operation=operation,
        nprocs=ranks,
        stacks=list(stacks or stk.PAPER_STACKS),
        sizes=_sizes(scale, FIG_SIZES),
        settings=_settings(scale),
        reference="KNEM-Coll",
        checkpoint=checkpoint_path(experiment, machine) if resume else None,
        parallel=jobs,
        service=service,
    )


# ---------------------------------------------------------------- figure 4
def figure4(scale: str = "bench",
            pipeline_sizes: Optional[list[int]] = None,
            resume: bool = False, jobs: int = 1,
            service: Optional[str] = None) -> ExperimentResult:
    """Pipeline-size sweep of the hierarchical pipelined Broadcast on IG.

    Series: ``linear``, ``no-pipeline``, and one per pipeline segment size;
    normalization reference is ``no-pipeline`` (as in the paper's Figure 4).
    """
    settings = _settings(scale)
    sizes = _sizes(scale, FIG4_SIZES)
    if pipeline_sizes is None:
        pipeline_sizes = [4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, 512 * KiB,
                          2 * MiB]
        if scale == "full":
            pipeline_sizes = [4 * KiB, 8 * KiB, 16 * KiB, 32 * KiB, 64 * KiB,
                              128 * KiB, 256 * KiB, 512 * KiB, 1 * MiB, 2 * MiB]
        elif scale == "smoke":
            pipeline_sizes = [16 * KiB, 512 * KiB]
    base = stk.KNEM_COLL
    stacks = [
        base.with_tuning(name="linear", hierarchical=False),
        base.with_tuning(name="no-pipeline", pipeline=False),
    ]
    for seg in pipeline_sizes:
        stacks.append(base.with_tuning(name=f"pipe-{seg // KiB}K",
                                       pipeline_seg_intermediate=seg,
                                       pipeline_seg_large=seg,
                                       pipeline_large_at=1 << 62))
    return run_sweep(
        experiment="fig4", machine="ig", operation="bcast", nprocs=48,
        stacks=stacks, sizes=sizes, settings=settings,
        reference="no-pipeline",
        checkpoint=checkpoint_path("fig4", "ig") if resume else None,
        parallel=jobs,
        service=service,
    )


# ------------------------------------------------------------- figures 5-8
def figure5(machine: str = "ig", scale: str = "bench",
            resume: bool = False, jobs: int = 1,
            service: Optional[str] = None) -> ExperimentResult:
    """Broadcast, 5 stacks, normalized to KNEM-Coll (Figure 5)."""
    return _paper_grid("fig5", "bcast", machine, scale, resume=resume,
                       jobs=jobs, service=service)


def figure6(machine: str = "ig", scale: str = "bench",
            resume: bool = False, jobs: int = 1,
            service: Optional[str] = None) -> ExperimentResult:
    """Gather (Figure 6)."""
    return _paper_grid("fig6", "gather", machine, scale, resume=resume,
                       jobs=jobs, service=service)


def scatter_text(machine: str = "ig", scale: str = "bench",
                 resume: bool = False, jobs: int = 1,
                 service: Optional[str] = None) -> ExperimentResult:
    """Scatter (text-only results in Section VI-C)."""
    return _paper_grid("scatter", "scatter", machine, scale,
                       resume=resume, jobs=jobs, service=service)


def figure7(machine: str = "ig", scale: str = "bench",
            resume: bool = False, jobs: int = 1,
            service: Optional[str] = None) -> ExperimentResult:
    """AlltoAllv (Figure 7)."""
    return _paper_grid("fig7", "alltoallv", machine, scale, resume=resume,
                       jobs=jobs, service=service)


def figure8(machine: str = "ig", scale: str = "bench",
            resume: bool = False, jobs: int = 1,
            service: Optional[str] = None) -> ExperimentResult:
    """AllGather (Figure 8)."""
    return _paper_grid("fig8", "allgather", machine, scale, resume=resume,
                       jobs=jobs, service=service)


# ---------------------------------------------------------------- table I
def table1(machine: str = "zoot", scale: str = "bench",
           sample: Optional[int] = None) -> dict:
    """ASP application timing breakdown (Table I).

    Returns ``{stack name: {"bcast": s, "total": s}}`` for the three
    libraries of the table.  ``sample`` controls iteration sampling (see
    :func:`repro.apps.asp.run_asp_timed`); ``None`` picks the scale default.
    """
    from repro.apps.asp import asp_paper_config, run_asp_timed

    cfg = asp_paper_config(machine)
    if sample is None:
        sample = {"full": 1, "bench": 64 if machine == "ig" else 16,
                  "smoke": 512}[scale]
    rows = {}
    for label, stack in (("Open MPI", stk.TUNED_SM),
                         ("MPICH2", stk.MPICH2_SM),
                         ("KNEM Coll", stk.KNEM_COLL)):
        timing = run_asp_timed(machine, stack, cfg, sample=sample)
        rows[label] = {"bcast": timing.bcast_time, "total": timing.total_time}
    return rows


# ---------------------------------------------------------------- ablations
def ablation_direction(machine: str = "zoot", scale: str = "bench",
                       resume: bool = False, jobs: int = 1,
                       service: Optional[str] = None) -> ExperimentResult:
    """Gather with vs without sender-writing direction control."""
    return _paper_grid(
        "abl-direction", "gather", machine, scale, resume=resume,
        jobs=jobs, service=service,
        stacks=[stk.KNEM_COLL.with_tuning(name="KNEM-root-reads",
                                          gather_direction_write=False),
                stk.KNEM_COLL],
    )


def ablation_registration(machine: str = "dancer", scale: str = "bench") -> dict:
    """Registration counts: KNEM-Coll persistent region vs p2p per-message.

    Returns driver statistics for one broadcast under both stacks.
    """
    from repro.mpi.runtime import Job, Machine

    msg = 4 * MiB
    out = {}
    for stack in (stk.KNEM_COLL, stk.TUNED_KNEM):
        machine_obj = Machine.build(machine)
        job = Job(machine_obj, nprocs=MACHINE_RANKS[machine], stack=stack)

        def prog(proc):
            buf = proc.alloc(msg, backed=False)
            yield from proc.comm.bcast(buf, 0, msg, root=0)

        job.run(prog)
        out[stack.name] = {
            "registrations": machine_obj.knem.stats_registrations,
            "kernel_copies": machine_obj.knem.stats_copies,
        }
    return out


def ablation_topology(scale: str = "bench",
                      resume: bool = False, jobs: int = 1,
                      service: Optional[str] = None) -> ExperimentResult:
    """IG Broadcast: topology-aware tree vs logical rank-order tree."""
    return _paper_grid(
        "abl-topology", "bcast", "ig", scale, resume=resume, jobs=jobs,
        service=service,
        stacks=[stk.KNEM_COLL.with_tuning(name="KNEM-rank-order",
                                          topology_aware=False),
                stk.KNEM_COLL],
    )


def ablation_rotation(machine: str = "ig", scale: str = "bench",
                      resume: bool = False, jobs: int = 1,
                      service: Optional[str] = None) -> ExperimentResult:
    """Alltoall: rotated (Figure 3) vs naive fetch order."""
    return _paper_grid(
        "abl-rotation", "alltoall", machine, scale, resume=resume,
        jobs=jobs, service=service,
        stacks=[stk.KNEM_COLL.with_tuning(name="KNEM-naive-order",
                                          rotate_alltoall=False),
                stk.KNEM_COLL],
    )


#: CLI registry: name -> (callable, supports-machine-arg)
EXPERIMENTS = {
    "fig4": (figure4, False),
    "fig5": (figure5, True),
    "fig6": (figure6, True),
    "scatter": (scatter_text, True),
    "fig7": (figure7, True),
    "fig8": (figure8, True),
    "abl-direction": (ablation_direction, True),
    "abl-topology": (ablation_topology, False),
    "abl-rotation": (ablation_rotation, True),
}
