"""Parallel sweep execution engine (``--jobs N`` / ``run_sweep(parallel=)``).

The paper's evaluation grid — machines × collectives × stacks × message
sizes — is embarrassingly parallel: every (stack, size) cell builds a fresh
:class:`~repro.mpi.runtime.Machine`, fault plans fork per build, and each
simulator iterates its flows and events in creation-id order, so a cell's
measured time is a pure function of its inputs.  This module fans cells
(and, for ``repro.bench all``, whole experiments) across worker processes;
the parent remains the single writer merging results into the cell map and
the checkpoint journal, which is what makes parallel sweeps byte-identical
to serial ones (see DESIGN.md §11).

Workers resolve ``harness.imb_time`` dynamically, so a monkeypatched
measurement function is honoured in forked workers too (the equivalence
tests rely on this).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Iterator, Optional, Sequence

from repro.errors import BenchmarkError

__all__ = ["resolve_jobs", "run_cells", "run_experiments"]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Worker count for a ``--jobs`` value (0/None = one per CPU)."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise BenchmarkError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _mp_context():
    """Prefer fork (workers inherit monkeypatches and loaded specs)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _run_cell(task: tuple) -> tuple[str, float, Any]:
    """Measure one (stack, size) cell; runs inside a worker process."""
    machine, stack, nprocs, operation, size, settings = task
    from repro.bench import harness, imb

    t = harness.imb_time(machine, stack, nprocs, operation, size, settings)
    return f"{stack.name}|{size}", t, imb.consume_cell_stats()


def run_cells(
    machine: str,
    operation: str,
    nprocs: int,
    settings,
    cells: Sequence[tuple],
    jobs: int,
) -> Iterator[tuple[str, float, Any]]:
    """Yield ``(cell key, seconds, CellStats|None)`` for each (stack, size).

    Results arrive in completion order — the caller journals them as they
    land and rebuilds the (deterministic) series from the full cell map at
    the end, so ordering never affects output.  A worker exception
    propagates to the caller and terminates the pool; cells already yielded
    stay journaled, so a failed parallel sweep resumes exactly like a
    killed serial one.
    """
    tasks = [(machine, stack, nprocs, operation, size, settings)
             for stack, size in cells]
    n = min(resolve_jobs(jobs), len(tasks))
    if n <= 1:
        for task in tasks:
            yield _run_cell(task)
        return
    ctx = _mp_context()
    with ctx.Pool(processes=n) as pool:
        yield from pool.imap_unordered(_run_cell, tasks)


def _run_experiment(spec: tuple) -> Any:
    """Run one whole (experiment, machine) combo; runs inside a worker."""
    name, machine, kwargs = spec
    from repro.bench.experiments import EXPERIMENTS

    fn, takes_machine = EXPERIMENTS[name]
    if takes_machine:
        return fn(machine, **kwargs)
    return fn(**kwargs)


def run_experiments(specs: Sequence[tuple], jobs: int) -> list:
    """Run ``(name, machine, kwargs)`` combos across workers, preserving
    input order in the returned results.

    Used by ``repro.bench all --jobs N``: fanning whole experiments keeps
    each worker's cells serial (no oversubscription) while the independent
    experiments overlap.  Results are ExperimentResults (picklable).
    """
    specs = list(specs)
    n = min(resolve_jobs(jobs), len(specs))
    if n <= 1:
        return [_run_experiment(s) for s in specs]
    ctx = _mp_context()
    with ctx.Pool(processes=n) as pool:
        return pool.map(_run_experiment, specs)
