"""Warm-pool parallel sweep executor (``--jobs N`` / ``run_sweep(parallel=)``).

The paper's evaluation grid — machines × collectives × stacks × message
sizes — is embarrassingly parallel: every (stack, size) cell builds a fresh
:class:`~repro.mpi.runtime.Machine`, fault plans fork per build, and each
simulator iterates its flows and events in creation-id order, so a cell's
measured time is a pure function of its inputs.

The old executor paid a cold pool per sweep: process spawn, imports, and
per-worker re-memoization of machine specs dwarfed the tiny cells of the
smoke grid (the committed baseline recorded speedup 0.225 — parallel
*slower* than serial).  This one amortizes the setup the way the paper
amortizes kernel buffer registration:

- the parent **warms every per-spec memo** (named specs, topology tree,
  distance matrix, route tables) and forks workers *once per sweep*, so
  workers inherit populated caches through copy-on-write;
- workers pull **chunked cell batches** sized by a measured per-cell cost
  estimate (see :mod:`repro.bench.chunking`) from per-worker queues, one
  chunk in flight per worker, demand-driven;
- results stream back over **per-worker pipes** and the parent remains the
  **single writer** merging them into the cell map and the JSONL journal,
  which is what keeps parallel sweeps byte-identical to serial ones;
- a worker that dies mid-chunk is detected promptly (its pipe hits EOF) or
  by liveness polling, its unrecorded cells are requeued (first-wins
  dedupe absorbs any result it flushed before dying), and a replacement is
  forked from the still-warm parent.

Results deliberately do *not* share one ``multiprocessing.Queue``: queue
puts go through a per-process feeder thread holding a cross-process write
lock, so a fail-stop death (``os._exit``, ``kill -9``, OOM) can take the
lock down with it and wedge every other worker forever.  A pipe's
``Connection.send`` runs synchronously in the worker with no shared lock;
the worst a dying worker can do is truncate its own last frame, which the
parent reads as ``EOFError`` and treats as the death it is.

Workers resolve ``harness.imb_time`` dynamically, so a monkeypatched
measurement function is honoured in forked workers too (the equivalence
tests rely on this).
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import pickle
import signal
import threading
import time
from multiprocessing import connection as _mp_connection
from typing import Any, Iterator, Optional, Sequence

from repro.bench.chunking import DEFAULT_RETRY_LIMIT, ChunkScheduler
from repro.errors import BenchmarkError

__all__ = ["resolve_jobs", "run_cells", "run_experiments", "WarmPool",
           "install_cell_chaos", "in_worker", "sigterm_interrupts"]

#: seconds between liveness polls while the result queue is quiet
_POLL_INTERVAL = 0.05

#: exponential-backoff respawn schedule after consecutive worker deaths:
#: delay = BASE * 2**(deaths-1), capped.  A single death respawns almost
#: immediately; a poison chunk killing its isolated retries in a row backs
#: off instead of fork-bombing the parent.
RESPAWN_BACKOFF_BASE = 0.02
RESPAWN_BACKOFF_CAP = 0.5

#: chaos-campaign cell hook: called with the cell key before each
#: measurement (in workers *and* on the serial path).  Installed in the
#: parent before the pool forks so workers inherit it; the hook may raise
#: a typed error or — inside a worker only, see :func:`in_worker` — call
#: ``os._exit`` to simulate a fail-stop worker death.
_CELL_CHAOS_HOOK = None

#: True inside a warm-pool worker process (set at worker start; inherited
#: ``False`` everywhere else).
_IN_WORKER = False


def install_cell_chaos(hook) -> None:
    """Install (or clear, with ``None``) the per-cell chaos hook."""
    global _CELL_CHAOS_HOOK
    _CELL_CHAOS_HOOK = hook


def in_worker() -> bool:
    """True when called inside a warm-pool worker process."""
    return _IN_WORKER


@contextlib.contextmanager
def sigterm_interrupts():
    """Convert SIGTERM into ``KeyboardInterrupt`` for the enclosed block.

    A sweep killed by the default SIGTERM disposition dies without
    unwinding: no ``finally`` runs, so the warm pool's daemon workers are
    never sent their sentinels — ``multiprocessing``'s atexit reaper does
    not run either, and the workers are orphaned onto init, blocked in
    ``task_q.get()`` forever.  Raising ``KeyboardInterrupt`` instead
    drives the normal unwind path: the executor shuts the pool down, the
    harness closes the journal after its last complete record, and the
    process exits like a Ctrl-C'd one.

    Signal handlers can only be installed from the main thread; anywhere
    else (a sweep-service runner thread, a pytest worker thread) this is
    a no-op and the hosting process owns signal policy.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    def _raise(signum, frame):
        raise KeyboardInterrupt("SIGTERM")

    previous = signal.signal(signal.SIGTERM, _raise)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Worker count for a ``--jobs`` value (0/None = one per CPU)."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise BenchmarkError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _mp_context():
    """Prefer fork (workers inherit monkeypatches and warmed caches)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _picklable(exc: BaseException) -> BaseException:
    """The exception itself if it survives pickling, else a summary."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return BenchmarkError(f"worker cell failed: {exc!r}")


def _run_cell(task: tuple) -> tuple[str, float, Any]:
    """Measure one (stack, size) cell; also the serial fallback path."""
    machine, stack, nprocs, operation, size, settings = task
    from repro.bench import harness, imb

    key = f"{stack.name}|{size}"
    if _CELL_CHAOS_HOOK is not None:
        _CELL_CHAOS_HOOK(key)
    t = harness.imb_time(machine, stack, nprocs, operation, size, settings)
    return key, t, imb.consume_cell_stats()


def _worker_main(worker_id: int, task_q, result_conn) -> None:
    """Warm-pool worker loop: chunks in, per-cell results out.

    Messages out (over this worker's exclusive pipe): ``("cell", wid, gen,
    chunk_id, idx, key, t, stats, wall)`` per measured cell, ``("done",
    wid, gen, chunk_id)`` per finished chunk, ``("error", wid, gen,
    chunk_id, exc)`` then exit on a cell failure.  ``gen`` echoes the
    generation tag of the chunk message, so a parent reusing a persistent
    pool across runs can discard a prior run's late flushes.  ``None`` in
    shuts the worker down.
    """
    global _IN_WORKER
    _IN_WORKER = True
    # The parent translates Ctrl-C/SIGTERM into an orderly pool shutdown
    # (sentinels down the task queues); a worker that also caught the
    # terminal's process-group SIGINT would die mid-frame and turn a clean
    # interrupt into a spurious fail-stop death.  SIGTERM is reset to the
    # default so the parent's ``terminate()`` straggler path still works
    # even if the parent had remapped its own handler before forking.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - exotic host policy
        pass
    try:
        while True:
            msg = task_q.get()
            if msg is None:
                return
            gen, chunk_id, cells = msg
            for idx, task in cells:
                wall0 = time.perf_counter()
                try:
                    key, t, stats = _run_cell(task)
                except BaseException as exc:  # propagate to the parent
                    result_conn.send(
                        ("error", worker_id, gen, chunk_id, _picklable(exc)))
                    return
                wall = time.perf_counter() - wall0
                result_conn.send(
                    ("cell", worker_id, gen, chunk_id, idx, key, t, stats,
                     wall))
            result_conn.send(("done", worker_id, gen, chunk_id))
    finally:
        result_conn.close()


class WarmPool:
    """Persistent forked workers with per-worker task queues and pipes.

    Forked once (per sweep) from a parent whose spec/topology/route memos
    are already warm; each worker owns a dedicated task queue (so the
    parent always knows which chunk a dead worker was holding) and a
    dedicated result pipe (so a dying worker cannot wedge anyone else's
    results — see the module docstring).
    """

    def __init__(self, workers: int, ctx=None):
        self._ctx = ctx or _mp_context()
        self._procs: dict[int, Any] = {}
        self._task_qs: dict[int, Any] = {}
        self._conns: dict[int, Any] = {}  # wid -> parent (read) pipe end
        self._next_id = 0
        #: workers forked to replace dead ones (diagnostics)
        self.respawns = 0
        #: current run generation — chunk messages are tagged with it and
        #: workers echo it back, so a persistent pool reused across runs
        #: (the sweep service) can discard a previous run's late flushes.
        self.generation = 0
        for _ in range(workers):
            self._spawn()

    def new_generation(self) -> int:
        """Advance to (and return) a fresh run generation."""
        self.generation += 1
        return self.generation

    def _spawn(self) -> int:
        wid = self._next_id
        self._next_id += 1
        tq = self._ctx.Queue()
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_worker_main, args=(wid, tq, send_conn), daemon=True)
        proc.start()
        # The send end must live only in its worker: EOF on the parent's
        # read end then means exactly "that worker is gone".
        send_conn.close()
        self._procs[wid] = proc
        self._task_qs[wid] = tq
        self._conns[wid] = recv_conn
        return wid

    @property
    def worker_ids(self) -> list[int]:
        return sorted(self._procs)

    def send(self, wid: int, chunk_msg) -> None:
        self._task_qs[wid].put(chunk_msg)

    def get(self, timeout: float):
        """Next result message, ``("eof", wid)`` for a worker whose pipe
        closed (fail-stop death), or None after ``timeout`` quiet seconds."""
        ready = _mp_connection.wait(list(self._conns.values()), timeout)
        if not ready:
            return None
        for wid, conn in self._conns.items():
            if conn is ready[0]:
                try:
                    return conn.recv()
                except (EOFError, OSError):
                    return ("eof", wid)
        return None  # pragma: no cover - conn vanished mid-wait

    def reap(self, wid: int) -> None:
        """Discard one worker (dead or presumed dead) and its plumbing."""
        proc = self._procs.pop(wid)
        if proc.is_alive():  # pragma: no cover - EOF from a live worker
            proc.terminate()
        proc.join()
        self._task_qs.pop(wid).close()
        self._conns.pop(wid).close()

    def reap_dead(self) -> list[int]:
        """Remove workers that exited; returns their ids."""
        dead = [wid for wid, p in self._procs.items() if not p.is_alive()]
        for wid in dead:
            self.reap(wid)
        return dead

    def respawn(self) -> int:
        """Fork a replacement worker (caches are still warm in the parent)."""
        self.respawns += 1
        return self._spawn()

    def shutdown(self) -> None:
        """Send every worker its sentinel; terminate stragglers."""
        for wid, tq in self._task_qs.items():
            if self._procs[wid].is_alive():
                try:
                    tq.put(None)
                except ValueError:  # pragma: no cover - queue already closed
                    pass
        deadline = time.perf_counter() + 2.0
        for proc in self._procs.values():
            proc.join(timeout=max(0.0, deadline - time.perf_counter()))
            if proc.is_alive():
                proc.terminate()
                proc.join()
        for tq in self._task_qs.values():
            tq.close()
        for conn in self._conns.values():
            conn.close()
        self._procs.clear()
        self._task_qs.clear()
        self._conns.clear()


def run_cells(
    machine: str,
    operation: str,
    nprocs: int,
    settings,
    cells: Sequence[tuple],
    jobs: int,
    report: Optional[dict] = None,
    retry_limit: Optional[int] = DEFAULT_RETRY_LIMIT,
    pool: Optional[WarmPool] = None,
    chunk_base: int = 0,
) -> Iterator[tuple[str, Any, Any]]:
    """Yield ``(cell key, seconds | CellAborted, CellStats|None)`` per cell.

    Results arrive in completion order — the caller journals them as they
    land and rebuilds the (deterministic) series from the full cell map at
    the end, so ordering never affects output.  A worker exception
    propagates to the caller and shuts the pool down; cells already yielded
    stay journaled, so a failed parallel sweep resumes exactly like a
    killed serial one.  A worker that *dies* (fail-stop, no exception
    message) is replaced — after exponential backoff when deaths repeat —
    and its unfinished cells re-run, climbing the quarantine ladder: a cell
    that exhausts ``retry_limit`` worker deaths is yielded as a typed
    :class:`~repro.bench.chunking.CellAborted` instead of a measurement
    (``retry_limit=None`` restores the unbounded requeue-forever
    behaviour).

    ``report``, when given, receives pool diagnostics (workers, chunks,
    requeues, respawns, aborts, backoff) after the run.

    ``pool``, when given, is an external persistent :class:`WarmPool`
    (the sweep service's): the run tags its chunks with a fresh pool
    generation, filters out any late flushes from prior generations, and
    leaves the pool running afterwards instead of shutting it down.
    ``chunk_base`` offsets chunk ids so runs sharing a pool never reuse
    one (defence in depth on top of the generation filter).
    """
    tasks = [(machine, stack, nprocs, operation, size, settings)
             for stack, size in cells]
    external_pool = pool is not None
    if external_pool:
        n = min(len(pool.worker_ids), len(tasks)) or 1
    else:
        n = min(resolve_jobs(jobs), len(tasks))
    if n <= 1 and not external_pool:
        for task in tasks:
            yield _run_cell(task)
        return

    if not external_pool:
        # Warm every per-spec memo before forking so the workers inherit
        # populated caches instead of rebuilding them per process.
        from repro.hardware.machines import warm_caches

        try:
            warm_caches(machine)
        except Exception:
            # Monkeypatched measurement functions may use machine names
            # the hardware layer does not know; the pool works either way.
            pass

    # Static seed: simulated event counts scale with segment count, i.e.
    # message size; measured wall costs per stack refine this as cells land.
    scheduler = ChunkScheduler(
        [float(size) for _stack, size in cells],
        workers=n,
        classes=[stack.name for stack, _size in cells],
        retry_limit=retry_limit,
        chunk_base=chunk_base,
    )
    if not external_pool:
        pool = WarmPool(n)
    gen = pool.new_generation()
    busy: dict[int, int] = {}  # worker id -> outstanding chunk id
    consecutive_deaths = 0
    backoff_total = 0.0

    def top_up() -> None:
        for wid in pool.worker_ids:
            if wid in busy:
                continue
            chunk = scheduler.next_chunk()
            if chunk is None:
                return
            pool.send(
                wid, (gen, chunk.id, [(i, tasks[i]) for i in chunk.cells]))
            busy[wid] = chunk.id

    def backoff_delay() -> float:
        """Pre-respawn delay for the current death streak (and count it)."""
        nonlocal backoff_total
        delay = 0.0
        if consecutive_deaths > 1:
            delay = min(RESPAWN_BACKOFF_CAP,
                        RESPAWN_BACKOFF_BASE * 2 ** (consecutive_deaths - 2))
            backoff_total += delay
        return delay

    def key_of(idx: int) -> str:
        stack, size = cells[idx]
        return f"{stack.name}|{size}"

    try:
        top_up()
        while not scheduler.finished:
            msg = pool.get(timeout=_POLL_INTERVAL)
            if msg is None:
                # Quiet queue: check for fail-stopped workers and reassign
                # whatever they were holding.
                died = pool.reap_dead()
                lost_chunks = [busy.pop(wid) for wid in died if wid in busy]
                if scheduler.idle and not busy and not lost_chunks:
                    raise BenchmarkError(
                        "warm pool stalled: no queued cells, no live "
                        "workers with work, but results are missing")
                for chunk_id in lost_chunks:
                    scheduler.fail(chunk_id)
                for idx, abort in scheduler.drain_aborted():
                    yield key_of(idx), abort, None
                for _ in died:
                    consecutive_deaths += 1
                    time.sleep(backoff_delay())
                    pool.respawn()
                if died:
                    top_up()
                continue
            kind = msg[0]
            if kind not in ("eof",) and msg[2] != gen:
                # Late flush from a previous run of a shared persistent
                # pool (its chunks were failed/requeued when that run was
                # torn down) — not ours, drop it.
                continue
            if kind == "cell":
                _kind, _wid, _gen, _chunk_id, idx, key, t, stats, wall = msg
                if scheduler.record(idx, t):
                    scheduler.observe(idx, wall)
                    yield key, t, stats
            elif kind == "done":
                _kind, wid, _gen, chunk_id = msg
                if busy.get(wid) == chunk_id:
                    del busy[wid]
                    scheduler.complete(chunk_id)
                    consecutive_deaths = 0
                    top_up()
                # else: the worker was presumed dead and its chunk already
                # failed/requeued — a late flush, already first-wins-safe.
            elif kind == "eof":
                # The worker's pipe closed: fail-stop death (possibly
                # truncating its final frame).  Requeue whatever it held
                # (quarantining budget-exhausted cells) and keep the pool
                # at full strength, backing off when deaths repeat.
                _kind, wid = msg
                pool.reap(wid)
                if wid in busy:
                    scheduler.fail(busy.pop(wid))
                for idx, abort in scheduler.drain_aborted():
                    yield key_of(idx), abort, None
                consecutive_deaths += 1
                time.sleep(backoff_delay())
                pool.respawn()
                top_up()
            elif kind == "error":
                _kind, _wid, _gen, _chunk_id, exc = msg
                raise exc
            else:  # pragma: no cover - protocol safety net
                raise BenchmarkError(f"unknown pool message {kind!r}")
    finally:
        if report is not None:
            report.update(
                workers=n,
                chunks=scheduler.chunks_issued,
                chunks_failed=scheduler.chunks_failed,
                cells_requeued=scheduler.cells_requeued,
                duplicates_dropped=scheduler.duplicates_dropped,
                cells_aborted=scheduler.cells_aborted,
                chunks_quarantined=scheduler.chunks_quarantined,
                respawns=pool.respawns,
                backoff_seconds=backoff_total,
            )
        if not external_pool:
            pool.shutdown()


def _run_experiment(spec: tuple) -> Any:
    """Run one whole (experiment, machine) combo; runs inside a worker."""
    name, machine, kwargs = spec
    from repro.bench.experiments import EXPERIMENTS

    fn, takes_machine = EXPERIMENTS[name]
    if takes_machine:
        return fn(machine, **kwargs)
    return fn(**kwargs)


def run_experiments(specs: Sequence[tuple], jobs: int) -> list:
    """Run ``(name, machine, kwargs)`` combos across workers, preserving
    input order in the returned results.

    Used by ``repro.bench all --jobs N``: fanning whole experiments keeps
    each worker's cells serial (no oversubscription) while the independent
    experiments overlap.  Results are ExperimentResults (picklable).
    """
    specs = list(specs)
    n = min(resolve_jobs(jobs), len(specs))
    if n <= 1:
        return [_run_experiment(s) for s in specs]
    ctx = _mp_context()
    with ctx.Pool(processes=n) as pool:
        return pool.map(_run_experiment, specs)
