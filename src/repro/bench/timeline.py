"""Copy-timeline rendering from trace records.

Turn a traced run (``Machine.build(..., trace=True)``) into an ASCII
timeline of data movements — which core copied what, when, over which
transport — the tool you reach for when a collective's schedule doesn't
look like Figure 1 or Figure 3.

Usage::

    machine = Machine.build("dancer", trace=True)
    ... run a job ...
    print(render_timeline(machine.tracer))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.simtime.trace import TraceRecord, Tracer
from repro.units import fmt_size, fmt_time

__all__ = ["CopySpan", "extract_copies", "render_timeline", "copy_stats"]


@dataclass(frozen=True)
class CopySpan:
    """One completed copy, as reconstructed from the trace."""

    time: float
    core: Optional[int]
    src: str
    dst: str
    nbytes: int
    kind: str  # "knem" | "fifo-in" | "fifo-out" | "eager-in" | ...


def extract_copies(tracer: Tracer) -> list[CopySpan]:
    """Pull completed-copy records (category ``copy``) out of a tracer."""
    spans = []
    for rec in tracer.select("copy"):
        spans.append(CopySpan(
            time=rec.time,
            core=rec.fields.get("core"),
            src=rec.fields.get("src", "?"),
            dst=rec.fields.get("dst", "?"),
            nbytes=rec.fields.get("nbytes", 0),
            kind=rec.fields.get("label", "copy"),
        ))
    return sorted(spans, key=lambda s: s.time)


def render_timeline(tracer: Tracer, width: int = 64,
                    max_rows: int = 200) -> str:
    """ASCII timeline: one row per copy completion, bucketed by time.

    Requires the tracer to have been enabled during the run.
    """
    spans = extract_copies(tracer)
    if not spans:
        return "(no copy records — was the tracer enabled?)"
    t_end = spans[-1].time or 1e-12
    lines = [
        f"{len(spans)} copies over {fmt_time(t_end)}   "
        f"(each row: completion time, core, size, transport)",
        "-" * (width + 40),
    ]
    for span in spans[:max_rows]:
        pos = min(int(span.time / t_end * (width - 1)), width - 1)
        bar = "." * pos + "#"
        core = f"core{span.core:>3}" if span.core is not None else "dma   "
        lines.append(
            f"{bar:<{width}} {fmt_time(span.time):>10} {core} "
            f"{fmt_size(span.nbytes):>6} {span.kind}"
        )
    if len(spans) > max_rows:
        lines.append(f"... {len(spans) - max_rows} more rows elided")
    return "\n".join(lines)


def copy_stats(tracer: Tracer) -> dict:
    """Aggregate copy statistics per transport kind and per core."""
    by_kind: dict[str, dict] = {}
    by_core: dict = {}
    for span in extract_copies(tracer):
        k = by_kind.setdefault(span.kind, {"copies": 0, "bytes": 0})
        k["copies"] += 1
        k["bytes"] += span.nbytes
        c = by_core.setdefault(span.core, {"copies": 0, "bytes": 0})
        c["copies"] += 1
        c["bytes"] += span.nbytes
    return {"by_kind": by_kind, "by_core": by_core}
