"""IMB-style collective timing on the simulated machine.

Reproduces the measurement protocol of the Intel MPI Benchmarks suite the
paper uses (IMB-3.2, Section VI-A):

- every rank executes the operation in a loop; the reported per-operation
  time is the *maximum over ranks* of (loop time / iterations);
- a warm-up iteration precedes timing;
- with ``off_cache`` (the paper enables ``-off_cache``) the communication
  buffers are evicted from every cache between iterations, so each
  iteration sees cold data — this is why the ASP application (which reuses
  cached buffers) shows a *larger* broadcast gain than the synthetic
  benchmark (Section VI-E).

Buffers are unbacked (timing-only): IMB does not validate payloads, and
skipping the real byte movement keeps large sweeps fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.errors import BenchmarkError
from repro.faults.plan import FaultPlan
from repro.mpi.runtime import Job, Machine, Proc
from repro.mpi.stacks import Stack

__all__ = ["ImbSettings", "OPS", "CellStats", "consume_cell_stats",
           "imb_time", "iterations_for"]


@dataclass(frozen=True)
class CellStats:
    """Simulator counters of one measured sweep cell (picklable)."""

    sim_events: int
    process_resumes: int
    peak_heap: int
    #: ``knem.degrade`` events this cell caused (tracer counters are always
    #: on, so this is free); nonzero means the KNEM recovery ladder fired
    #: and the cell's KNEM health is suspect — ``--strict`` fails on it.
    knem_degrades: int = 0


#: Counters of the most recent :func:`imb_time` call.  A module global
#: (consumed via :func:`consume_cell_stats`) instead of a richer return
#: type so tests can keep monkeypatching ``harness.imb_time`` with plain
#: ``float``-returning fakes.
_last_cell_stats: Optional[CellStats] = None


def consume_cell_stats() -> Optional[CellStats]:
    """Counters of the last :func:`imb_time` call, cleared on read.

    ``None`` when no real measurement ran since the previous consume (e.g.
    the caller's ``imb_time`` was monkeypatched).
    """
    global _last_cell_stats
    stats, _last_cell_stats = _last_cell_stats, None
    return stats


@dataclass(frozen=True)
class ImbSettings:
    """Measurement-loop parameters (IMB defaults scaled for simulation)."""

    warmups: int = 1
    max_iterations: int = 8
    #: target aggregate bytes per size step; iteration count is derived so
    #: small sizes iterate more (IMB behaviour), capped by max_iterations.
    target_bytes: int = 64 * 1024 * 1024
    off_cache: bool = True
    root: int = 0
    #: fault schedule armed (forked per fresh machine) before the run; None
    #: keeps the kernel path on its zero-overhead fast path.
    fault_plan: Optional[FaultPlan] = None


def iterations_for(msg_size: int, settings: ImbSettings) -> int:
    """IMB-style iteration count: small messages iterate more."""
    if msg_size <= 0:
        return settings.max_iterations
    return max(1, min(settings.max_iterations,
                      settings.target_bytes // max(msg_size, 1)))


def _op_bcast(proc: Proc, msg: int, settings: ImbSettings):
    buf = proc.alloc(msg, label="imb-bcast", backed=False)

    def call():
        yield from proc.comm.bcast(buf, 0, msg, root=settings.root)

    return call, [buf]


def _op_gather(proc: Proc, msg: int, settings: ImbSettings):
    size = proc.comm.size
    send = proc.alloc(msg, label="imb-gsend", backed=False)
    recv = (proc.alloc(msg * size, label="imb-grecv", backed=False)
            if proc.rank == settings.root else None)

    def call():
        yield from proc.comm.gather(send, recv, msg, root=settings.root)

    return call, [b for b in (send, recv) if b is not None]


def _op_scatter(proc: Proc, msg: int, settings: ImbSettings):
    size = proc.comm.size
    send = (proc.alloc(msg * size, label="imb-ssend", backed=False)
            if proc.rank == settings.root else None)
    recv = proc.alloc(msg, label="imb-srecv", backed=False)

    def call():
        yield from proc.comm.scatter(send, recv, msg, root=settings.root)

    return call, [b for b in (send, recv) if b is not None]


def _op_allgather(proc: Proc, msg: int, settings: ImbSettings):
    size = proc.comm.size
    send = proc.alloc(msg, label="imb-agsend", backed=False)
    recv = proc.alloc(msg * size, label="imb-agrecv", backed=False)

    def call():
        yield from proc.comm.allgather(send, recv, msg)

    return call, [send, recv]


def _op_alltoall(proc: Proc, msg: int, settings: ImbSettings):
    size = proc.comm.size
    send = proc.alloc(msg * size, label="imb-a2asend", backed=False)
    recv = proc.alloc(msg * size, label="imb-a2arecv", backed=False)

    def call():
        yield from proc.comm.alltoall(send, recv, msg)

    return call, [send, recv]


def _op_alltoallv(proc: Proc, msg: int, settings: ImbSettings):
    # IMB Alltoallv: uniform counts exercised through the v interface.
    size = proc.comm.size
    send = proc.alloc(msg * size, label="imb-a2avsend", backed=False)
    recv = proc.alloc(msg * size, label="imb-a2avrecv", backed=False)
    counts = [msg] * size
    displs = [r * msg for r in range(size)]

    def call():
        yield from proc.comm.alltoallv(send, counts, displs, recv, counts,
                                       displs)

    return call, [send, recv]


OPS: dict[str, Callable] = {
    "bcast": _op_bcast,
    "gather": _op_gather,
    "scatter": _op_scatter,
    "allgather": _op_allgather,
    "alltoall": _op_alltoall,
    "alltoallv": _op_alltoallv,
}


def _imb_program(proc: Proc, op: str, msg: int, iterations: int,
                 settings: ImbSettings):
    call, buffers = OPS[op](proc, msg, settings)
    caches = proc.machine.mem.caches

    def evict():
        for buf in buffers:
            caches.invalidate(buf)

    for _ in range(settings.warmups):
        yield from call()
    if settings.off_cache:
        evict()
    yield from proc.comm.barrier()
    t0 = proc.now
    for _ in range(iterations):
        yield from call()
        if settings.off_cache:
            evict()
    return proc.now - t0


def imb_time(
    machine_name,
    stack: Stack,
    nprocs: int,
    op: str,
    msg_size: int,
    settings: ImbSettings | None = None,
    iterations: int | None = None,
) -> float:
    """Per-operation time (seconds) of ``op`` at ``msg_size`` bytes.

    Builds a fresh machine (cold state) per call, runs the IMB loop on every
    rank, and returns ``max over ranks of loop_time / iterations``.
    """
    if op not in OPS:
        raise BenchmarkError(f"unknown IMB operation {op!r}; available: {sorted(OPS)}")
    settings = settings or ImbSettings()
    iters = iterations if iterations is not None else iterations_for(msg_size, settings)
    machine = Machine.build(machine_name)
    if settings.fault_plan is not None:
        machine.arm_faults(settings.fault_plan.fork())
    job = Job(machine, nprocs=nprocs, stack=stack)
    result = job.run(_imb_program, op, msg_size, iters, settings)
    global _last_cell_stats
    sim = machine.sim
    _last_cell_stats = CellStats(
        sim_events=sim.events_processed,
        process_resumes=sim.process_resumes,
        peak_heap=sim.peak_heap,
        knem_degrades=machine.tracer.counters.get("knem.degrade", 0),
    )
    return max(result.values) / iters
