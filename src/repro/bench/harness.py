"""Sweep runner and result containers for the paper's experiments.

An experiment is a sweep over (stack × message size) on one machine for one
operation.  Results are kept both as absolute per-op times and normalized
against a reference stack — the paper normalizes every curve to KNEM-Coll,
"the smaller these normalized values, the better the performance of the
corresponding collective component" (with the sense inverted: values above
1 mean the *other* component is slower).
"""

from __future__ import annotations

import contextlib
import csv
import hashlib
import json
import os
import time
from contextvars import ContextVar
from dataclasses import dataclass, field, replace
from typing import IO, Callable, Iterable, Iterator, Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.bench import imb
from repro.bench.chunking import DEFAULT_RETRY_LIMIT, CellAborted
from repro.bench.imb import CellStats, ImbSettings, imb_time
from repro.errors import BenchmarkError
from repro.faults.plan import FaultPlan
from repro.mpi.stacks import Stack
from repro.simtime.trace import TraceRecord
from repro.units import fmt_size, fmt_time

__all__ = ["Series", "ExperimentResult", "SweepStats", "JournalReport",
           "JournalLease", "run_sweep", "results_dir", "checkpoint_path",
           "verify_journal", "set_journal_wrapper", "journal_wrapper",
           "set_profile_dir", "profile_dir", "acquire_journal_lease"]


def results_dir() -> str:
    """Directory where experiment CSVs are written (created on demand)."""
    path = os.environ.get("REPRO_RESULTS_DIR",
                          os.path.join(os.getcwd(), "results"))
    os.makedirs(path, exist_ok=True)
    return path


@dataclass
class Series:
    """One curve: per-op seconds by message size for one configuration."""

    name: str
    times: dict[int, float] = field(default_factory=dict)

    def normalized_to(self, ref: "Series") -> dict[int, float]:
        """This series' per-size runtime divided by ``ref``'s.

        Sizes the reference never measured are skipped; a reference time of
        exactly zero is a measurement bug (a sweep cell cannot take no
        simulated time) and raises :class:`~repro.errors.BenchmarkError`
        rather than silently dropping the point.
        """
        out = {}
        for size, t in self.times.items():
            rt = ref.times.get(size)
            if rt is None:
                continue
            if rt == 0.0:
                raise BenchmarkError(
                    f"cannot normalize {self.name!r} at {fmt_size(size)}: "
                    f"reference series {ref.name!r} measured 0 s")
            out[size] = t / rt
        return out


@dataclass
class SweepStats:
    """Aggregate simulator counters and wall-clock of one sweep.

    Carried on :class:`ExperimentResult` (CSV output is unaffected) and
    printed by ``repro.bench --verbose`` so the perf claims of hot-path
    changes stay inspectable.  Cells replayed from a checkpoint contribute
    to ``cells_resumed`` only; monkeypatched measurements (tests) count as
    run cells with no simulator counters.
    """

    cells_run: int = 0
    cells_resumed: int = 0
    sim_events: int = 0
    process_resumes: int = 0
    peak_heap: int = 0
    wall_seconds: float = 0.0
    #: warm-pool diagnostics (zero for serial sweeps): worker count, chunks
    #: issued, and cells re-run after a worker death
    pool_workers: int = 0
    pool_chunks: int = 0
    pool_requeued: int = 0
    #: quarantine ladder: cells recorded as typed aborts after exhausting
    #: their worker-death retry budget, and replacement workers forked
    pool_respawns: int = 0
    cells_aborted: int = 0
    chunks_quarantined: int = 0
    #: cells whose cell run degraded KNEM health (``knem.degrade`` events)
    cells_degraded: int = 0
    #: journal robustness: corrupt mid-file records skipped (and recomputed)
    #: on resume, and append errors that downgraded journaling mid-sweep
    journal_skipped: int = 0
    journal_errors: int = 0
    #: sweep-service client accounting (zero for in-process sweeps):
    #: cells obtained from a sweep server, and how many of those the
    #: server answered from its content-addressed cache without running
    #: a simulation.
    service_cells: int = 0
    service_cache_hits: int = 0
    #: trace-model events emitted by the sweep substrate itself
    #: (``chunk.quarantine`` per aborted cell, ``journal.skip`` per
    #: skipped record) — feed to ``TraceModel.ingest`` alongside simulator
    #: streams
    events: list = field(default_factory=list)

    def add_cell(self, stats: Optional[CellStats]) -> None:
        self.cells_run += 1
        if stats is None:
            return
        self.sim_events += stats.sim_events
        self.process_resumes += stats.process_resumes
        if stats.knem_degrades:
            self.cells_degraded += 1
        if stats.peak_heap > self.peak_heap:
            self.peak_heap = stats.peak_heap

    @property
    def events_per_sec(self) -> float:
        """Simulator events dispatched per wall-clock second (0 if unknown)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.sim_events / self.wall_seconds

    def render(self) -> str:
        base = (
            f"cells: {self.cells_run} run, {self.cells_resumed} resumed | "
            f"sim events: {self.sim_events} | "
            f"process resumes: {self.process_resumes} | "
            f"peak heap: {self.peak_heap} | "
            f"wall: {self.wall_seconds:.3f}s | "
            f"events/sec: {self.events_per_sec:,.0f}"
        )
        if self.pool_workers:
            base += (f" | pool: {self.pool_workers} workers, "
                     f"{self.pool_chunks} chunks")
            if self.pool_requeued:
                base += f", {self.pool_requeued} requeued"
            if self.pool_respawns:
                base += f", {self.pool_respawns} respawns"
        if self.cells_aborted:
            base += (f" | ABORTED: {self.cells_aborted} cell(s) quarantined"
                     f" ({self.chunks_quarantined} chunk(s))")
        if self.cells_degraded:
            base += f" | degraded: {self.cells_degraded} cell(s)"
        if self.journal_skipped or self.journal_errors:
            base += (f" | journal: {self.journal_skipped} corrupt record(s) "
                     f"skipped, {self.journal_errors} append error(s)")
        if self.service_cells:
            base += (f" | service: {self.service_cells} cell(s), "
                     f"{self.service_cache_hits} cache hit(s)")
        return base


@dataclass
class ExperimentResult:
    """All curves of one experiment plus rendering helpers."""

    experiment: str
    machine: str
    operation: str
    nprocs: int
    series: list[Series]
    reference: str
    #: simulator counters + wall time of the sweep that produced this result
    #: (None for results not built by :func:`run_sweep`)
    stats: Optional[SweepStats] = None
    #: quarantined cells by key (``stack|size``): typed aborts, absent from
    #: ``series`` and the CSV — re-running with ``--resume`` recomputes them
    aborted: dict[str, CellAborted] = field(default_factory=dict)

    @property
    def sizes(self) -> list[int]:
        """Sorted union of message sizes across all series."""
        sizes: set[int] = set()
        for s in self.series:
            sizes.update(s.times)
        return sorted(sizes)

    def get(self, name: str) -> Series:
        """Look up one series by configuration name."""
        for s in self.series:
            if s.name == name:
                return s
        raise BenchmarkError(f"no series {name!r} in {self.experiment}")

    def normalized(self) -> dict[str, dict[int, float]]:
        """All series normalized to the reference (paper convention)."""
        ref = self.get(self.reference)
        return {s.name: s.normalized_to(ref) for s in self.series}

    # -- rendering -----------------------------------------------------------
    def render(self, normalized: bool = True) -> str:
        """ASCII table in the paper's normalized-runtime format."""
        sizes = self.sizes
        header = (
            f"{self.experiment}: {self.operation} on {self.machine} "
            f"({self.nprocs} ranks)"
            + (f", normalized to {self.reference} (lower is better)"
               if normalized else ", per-op time")
        )
        lines = [header, "-" * len(header)]
        colw = max(12, max(len(s.name) for s in self.series) + 1)
        row = ["size".rjust(7)] + [s.name.rjust(colw) for s in self.series]
        lines.append(" ".join(row))
        norm = self.normalized() if normalized else None
        for size in sizes:
            cells = [fmt_size(size).rjust(7)]
            for s in self.series:
                if normalized:
                    v = norm[s.name].get(size)
                    cells.append((f"{v:.2f}" if v is not None else "-").rjust(colw))
                else:
                    t = s.times.get(size)
                    cells.append((fmt_time(t) if t is not None else "-").rjust(colw))
            lines.append(" ".join(cells))
        return "\n".join(lines)

    def to_csv(self, path: Optional[str] = None) -> str:
        """Write absolute and normalized values; returns the file path."""
        path = path or os.path.join(
            results_dir(), f"{self.experiment}_{self.machine}.csv"
        )
        norm = self.normalized()
        with open(path, "w", newline="") as fh:
            w = csv.writer(fh)
            w.writerow(["experiment", "machine", "operation", "nprocs",
                        "series", "msg_bytes", "seconds", "normalized"])
            for s in self.series:
                for size in sorted(s.times):
                    w.writerow([
                        self.experiment, self.machine, self.operation,
                        self.nprocs, s.name, size, f"{s.times[size]:.9f}",
                        f"{norm[s.name].get(size, float('nan')):.4f}",
                    ])
        return path


def checkpoint_path(experiment: str, machine: str) -> str:
    """Default on-disk checkpoint location, next to the experiment's CSV."""
    return os.path.join(results_dir(),
                        f"{experiment}_{machine}.checkpoint.json")


def _sweep_header(experiment: str, machine: str, operation: str, nprocs: int,
                  settings: ImbSettings) -> dict:
    """Identity of a sweep: cells journaled under one header are only
    reusable by a sweep with the same header (the fault plan is excluded —
    it has no stable fingerprint — so resuming a faulted sweep with a
    different plan is the caller's responsibility)."""
    return {
        "version": 1,
        "experiment": experiment,
        "machine": machine,
        "operation": operation,
        "nprocs": nprocs,
        "settings": [settings.warmups, settings.max_iterations,
                     settings.target_bytes, bool(settings.off_cache),
                     settings.root],
    }


def _check_header(found: Optional[dict], header: dict, path: str) -> None:
    if found != header:
        raise BenchmarkError(
            f"sweep checkpoint {path} belongs to a different sweep "
            f"(header mismatch); delete it to start over")


_JOURNAL_FORMAT = 3

#: chaos hook: wraps the journal file object opened for appends (fault
#: campaigns inject EIO/ENOSPC/short writes here); identity when unset.
#: A :class:`~contextvars.ContextVar`, not a module global: each thread
#: (and each asyncio task of the sweep service) sees only its own value,
#: so one client's armed chaos wrapper can never leak into another
#: client's sweep — and a sweep that crashes with the wrapper installed
#: leaves nothing behind for the next caller in a fresh context.
_JOURNAL_WRAPPER: ContextVar[Optional[Callable[[IO[str]], IO[str]]]] = \
    ContextVar("repro_journal_wrapper", default=None)


def set_journal_wrapper(fn: Optional[Callable[[IO[str]], IO[str]]]) -> None:
    """Install (or clear, with ``None``) the journal file wrapper hook.

    Prefer the :func:`journal_wrapper` context manager — it restores the
    previous hook even when the sweep inside it dies, which is what keeps
    a crashed chaos run from leaving the wrapper armed for the next
    sweep in the same process.
    """
    _JOURNAL_WRAPPER.set(fn)


@contextlib.contextmanager
def journal_wrapper(
        fn: Optional[Callable[[IO[str]], IO[str]]]) -> Iterator[None]:
    """Scope the journal wrapper hook to a ``with`` block (crash-safe)."""
    token = _JOURNAL_WRAPPER.set(fn)
    try:
        yield
    finally:
        _JOURNAL_WRAPPER.reset(token)


#: profiling hook: a directory path; when set, every serially-executed
#: sweep cell is run under :mod:`cProfile` and its pstats dump written to
#: ``<dir>/<experiment>_<machine>_<stack>_<size>.pstats``.  Set via the
#: ``--profile`` CLI flag (which forces serial execution — per-cell
#: profiles from forked pool workers would land in the wrong process).
#: Context-scoped like the journal wrapper, and for the same reason.
_PROFILE_DIR: ContextVar[Optional[str]] = \
    ContextVar("repro_profile_dir", default=None)


def set_profile_dir(path: Optional[str]) -> None:
    """Install (or clear, with ``None``) the per-cell profile directory."""
    _PROFILE_DIR.set(path)


@contextlib.contextmanager
def profile_dir(path: Optional[str]) -> Iterator[None]:
    """Scope the per-cell profile directory to a ``with`` block."""
    token = _PROFILE_DIR.set(path)
    try:
        yield
    finally:
        _PROFILE_DIR.reset(token)


def _profile_path(base: str, experiment: str, machine: str, stack_name: str,
                  size: int) -> str:
    safe = "".join(c if c.isalnum() or c in "-._" else "-"
                   for c in f"{experiment}_{machine}_{stack_name}_{size}")
    return os.path.join(base, safe + ".pstats")


class JournalLease:
    """Advisory exclusive lease on one checkpoint journal.

    Two writers sharing :func:`results_dir` (a sweep server and a stray
    CLI run, or two CLI runs racing) would interleave their appends into
    the same ``*.checkpoint.json`` file: each append is a buffered write,
    and a flush boundary landing mid-line splices the two streams into a
    corrupt interior record (see
    ``tests/bench/test_journal_lock.py`` for the demonstration).

    The lease is an ``flock`` on a ``<journal>.lock`` sidecar — the
    sidecar, not the journal itself, because compaction atomically
    *replaces* the journal (``os.replace``), and a lock on the old inode
    would let a second writer happily lock the new one.  ``flock`` is
    per open file description, so two opens in one process conflict just
    like two processes do.  On platforms without ``fcntl`` the lease
    degrades to a no-op (single-writer discipline is then unenforced, as
    before this lease existed).
    """

    def __init__(self, path: str):
        self.path = path
        self._fh: Optional[IO[str]] = None
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            return
        fh = open(path + ".lock", "a+")
        try:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError as err:
            holder = ""
            try:
                fh.seek(0)
                pid = fh.read().strip()
                if pid:
                    holder = f" (held by pid {pid})"
            except OSError:
                pass
            fh.close()
            raise BenchmarkError(
                f"checkpoint journal {path} is locked by another "
                f"writer{holder}; a second concurrent writer would "
                f"interleave appends and corrupt records") from err
        fh.seek(0)
        fh.truncate()
        fh.write(f"{os.getpid()}\n")
        fh.flush()
        self._fh = fh

    def release(self) -> None:
        """Drop the lease (idempotent); the sidecar file is left behind."""
        if self._fh is None:
            return
        fh, self._fh = self._fh, None
        try:
            if fcntl is not None:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
        finally:
            fh.close()

    def __enter__(self) -> "JournalLease":
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


def acquire_journal_lease(path: str) -> JournalLease:
    """Take the exclusive writer lease for journal ``path`` (typed
    :class:`~repro.errors.BenchmarkError` when another writer holds it)."""
    return JournalLease(path)


def _record_checksum(key: str, t_literal: str) -> str:
    """Per-record integrity checksum of a format-3 journal line.

    Computed over the cell key and the *exact JSON literal* of the time
    (so the float bit pattern is covered end-to-end), blake2b for the same
    reason :mod:`repro.faults.plan` uses it: cheap, in the stdlib, and not
    fooled by the single-bit flips a CRC-of-adjacent-records would be.
    """
    token = f"{key}|{t_literal}".encode()
    return hashlib.blake2b(token, digest_size=8).hexdigest()


@dataclass
class JournalSkip:
    """One corrupt mid-file journal record skipped on load."""

    lineno: int
    reason: str
    cell: Optional[str] = None   # recovered when the line still parses


@dataclass
class JournalReport:
    """What :func:`verify_journal` / the loader found in one journal."""

    path: str
    format: int
    header: Optional[dict]
    cells: dict[str, float]
    skipped: list[JournalSkip]
    torn_tail: bool

    @property
    def ok(self) -> bool:
        """True when every record was intact (a torn tail still counts as
        recoverable but not ok — the cell must recompute)."""
        return not self.skipped and not self.torn_tail

    def render(self) -> str:
        lines = [f"journal {self.path}: format {self.format}, "
                 f"{len(self.cells)} intact cell(s)"]
        for skip in self.skipped:
            what = f" (cell {skip.cell!r})" if skip.cell else ""
            lines.append(f"  corrupt line {skip.lineno}{what}: {skip.reason}"
                         f" — cell will recompute on --resume")
        if self.torn_tail:
            lines.append("  torn final line (crash mid-append) — cell will "
                         "recompute on --resume")
        if self.ok:
            lines.append("  every record intact")
        return "\n".join(lines)


def _parse_journal(path: str, header: Optional[dict]) -> JournalReport:
    """Parse a journal of any known format into a :class:`JournalReport`.

    Format 3 records carry a blake2b checksum: a corrupt *interior* record
    (bit rot, a partially flushed append that later appends buried) is
    skipped and reported — the cell simply recomputes on resume — instead
    of poisoning the whole journal.  A torn *final* line is the signature
    of a crash mid-append and is dropped silently in every format.  Format
    2 (no checksums) keeps its stricter historical contract: a malformed
    interior line is a typed error, because without checksums a
    wrong-but-parseable record cannot be told from a right one.  Format 1
    (single JSON document) is read transparently and migrated by the
    caller's compaction rewrite.

    ``header`` is checked when given; pass ``None`` to inspect a journal
    without knowing which sweep it belongs to (``--verify-journal``).
    """
    try:
        with open(path) as fh:
            raw = fh.read()
    except FileNotFoundError:
        return JournalReport(path, _JOURNAL_FORMAT, None, {}, [], False)
    except OSError as err:
        raise BenchmarkError(f"corrupt sweep checkpoint {path}: {err}") from err
    if not raw.strip():
        return JournalReport(path, _JOURNAL_FORMAT, None, {}, [], False)
    lines = raw.splitlines()
    try:
        head = json.loads(lines[0])
    except ValueError as err:
        raise BenchmarkError(f"corrupt sweep checkpoint {path}: {err}") from err
    if not isinstance(head, dict):
        raise BenchmarkError(f"corrupt sweep checkpoint {path}: bad header line")
    if "format" not in head:
        # Format 1: the whole file is one JSON document.
        try:
            data = json.loads(raw)
        except ValueError as err:
            raise BenchmarkError(
                f"corrupt sweep checkpoint {path}: {err}") from err
        if header is not None:
            _check_header(data.get("header"), header, path)
        cells = data.get("cells", {})
        if not isinstance(cells, dict):
            raise BenchmarkError(f"corrupt sweep checkpoint {path}: no cell map")
        return JournalReport(path, 1, data.get("header"), cells, [], False)
    fmt = head.get("format")
    if fmt not in (2, 3):
        raise BenchmarkError(
            f"corrupt sweep checkpoint {path}: "
            f"unknown journal format {fmt!r}")
    if header is not None:
        _check_header(head.get("header"), header, path)
    cells: dict[str, float] = {}
    skipped: list[JournalSkip] = []
    torn_tail = False
    last = len(lines)
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        cell_hint: Optional[str] = None
        try:
            rec = json.loads(line)
            key, t = rec["cell"], rec["t"]
            if not isinstance(key, str) or not isinstance(t, (int, float)):
                raise ValueError("bad cell record")
            cell_hint = key
            if fmt == 3:
                want = _record_checksum(key, json.dumps(t))
                got = rec.get("ck")
                if got != want:
                    raise ValueError(
                        f"checksum mismatch (recorded {got!r})")
        except (ValueError, KeyError, TypeError) as err:
            if lineno == last:
                torn_tail = True
                break  # torn tail from a crash mid-append; cell re-runs
            if fmt == 3:
                skipped.append(JournalSkip(lineno, str(err), cell_hint))
                continue  # skip-and-report: the cell recomputes
            raise BenchmarkError(
                f"corrupt sweep checkpoint {path}: "
                f"bad journal line {lineno}") from err
        cells[key] = t
    return JournalReport(path, fmt, head.get("header"), cells, skipped,
                         torn_tail)


def verify_journal(path: str) -> JournalReport:
    """Inspect a checkpoint journal without running anything.

    The ``python -m repro.bench --verify-journal PATH`` subcommand: parses
    every record, verifies format-3 checksums, and reports corrupt/torn
    records (each of which ``--resume`` would recover by recomputation).
    Raises :class:`~repro.errors.BenchmarkError` only for damage resume
    cannot recover from (unreadable header, unknown format).
    """
    return _parse_journal(path, header=None)


def _load_checkpoint(path: str, header: dict) -> JournalReport:
    """Completed cells (and skip reports) from ``path``; empty when absent."""
    return _parse_journal(path, header)


def _compact_checkpoint(path: str, header: dict,
                        cells: dict[str, float]) -> None:
    """Atomically rewrite the journal as header + one line per known cell.

    Write-temp-then-rename: a crash leaves either the previous journal or
    the compacted one — never a torn file.  Run once per sweep start, this
    also migrates format-1/2 checkpoints to format 3 (adding per-record
    checksums) and drops torn tails, corrupt records, and duplicates.
    """
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(json.dumps({"format": _JOURNAL_FORMAT, "header": header},
                            sort_keys=True) + "\n")
        for key in sorted(cells):
            fh.write(_journal_line(key, cells[key]))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _journal_line(key: str, t: float) -> str:
    # Floats go through json ``repr`` verbatim (exact round-trip), so a
    # resumed sweep reproduces CSVs byte-for-byte; the checksum covers the
    # same literal the reader re-hashes.
    t_literal = json.dumps(t)
    return ('{"cell": %s, "t": %s, "ck": "%s"}\n'
            % (json.dumps(key), t_literal, _record_checksum(key, t_literal)))


def _journal_append(fh: IO[str], key: str, t: float) -> None:
    """O(1) durable append of one completed cell (vs the old full rewrite,
    which made a sweep's checkpoint cost quadratic in cells)."""
    fh.write(_journal_line(key, t))
    fh.flush()
    os.fsync(fh.fileno())


def _sweep_via_service(address: str, machine: str, operation: str,
                       nprocs: int, settings: ImbSettings, pending: list,
                       stats: SweepStats, cells: dict,
                       aborted: dict, journal_cell) -> None:
    """Obtain pending cells from a sweep server (the ``--connect`` path).

    The server resolves each cell from its content-addressed cache when
    it can and shards the misses across its standing warm pool; results
    stream back in completion order and are journaled locally exactly
    like locally-computed ones, so served sweeps produce byte-identical
    CSVs and checkpoints.
    """
    from repro.service.client import ServiceClient

    stats.events.append(TraceRecord(0.0, "service.request", {
        "address": address, "cells": len(pending),
        "operation": operation, "machine": machine}))
    with ServiceClient(address) as client:
        for res in client.sweep(machine, operation, nprocs, settings,
                                pending):
            stats.service_cells += 1
            if res.aborted is not None:
                aborted[res.key] = res.aborted
                stats.cells_aborted += 1
                stats.events.append(TraceRecord(0.0, "chunk.quarantine", {
                    "cell": res.key, "deaths": res.aborted.deaths,
                    "reason": res.aborted.reason}))
                continue
            if res.cached:
                stats.service_cache_hits += 1
                stats.events.append(TraceRecord(0.0, "service.cache_hit", {
                    "cell": res.key, "address": address}))
            cells[res.key] = res.t
            stats.add_cell(res.stats)
            journal_cell(res.key, res.t)


def run_sweep(
    experiment: str,
    machine: str,
    operation: str,
    nprocs: int,
    stacks: Iterable[Stack],
    sizes: Iterable[int],
    settings: Optional[ImbSettings] = None,
    reference: Optional[str] = None,
    fault_plan: Optional["FaultPlan"] = None,
    checkpoint: Optional[str] = None,
    parallel: int = 1,
    retry_limit: Optional[int] = DEFAULT_RETRY_LIMIT,
    service: Optional[str] = None,
) -> ExperimentResult:
    """Run the (stack x size) grid and return the collected curves.

    ``fault_plan`` arms the schedule on every fresh machine of the sweep
    (forked per build, so call counters restart per cell); with the default
    ``None`` the kernel path stays on its zero-overhead fast path.

    ``checkpoint`` names a journal file: every completed (stack, size) cell
    is appended there durably (header line + one checksummed JSON line per
    cell; the journal is compacted — and old-format checkpoints migrated —
    on load), and cells already journaled are skipped on restart.  Corrupt
    interior records are skipped-and-reported (``stats.journal_skipped``)
    and their cells recomputed; an append error mid-sweep downgrades the
    rest of the sweep to no-journaling (``stats.journal_errors``) rather
    than risking interior corruption.  Because each cell builds a fresh
    machine, a killed-and-resumed sweep produces the same times — and
    therefore byte-identical CSVs — as an uninterrupted one.

    ``parallel`` fans pending cells across worker processes (0 = one per
    CPU; see :mod:`repro.bench.executor`).  Each cell is a pure function of
    its inputs, every simulator iterates in creation-id order, and the cell
    map is merged by this single writer, so parallel runs produce CSVs and
    checkpoints byte-identical to ``parallel=1``.  ``retry_limit`` is the
    per-cell worker-death budget of the quarantine ladder (parallel only);
    quarantined cells land in ``result.aborted`` and are *absent* from the
    series/CSV/journal, so ``--resume`` recomputes them.

    ``service`` names a sweep-server address (``host:port`` or a unix
    socket path): pending cells are requested from the server instead of
    computed in-process (``parallel`` is then ignored).  The server's
    content-addressed cache and warm pool produce the same per-cell times
    as a local run, so served sweeps keep the byte-identity guarantee.
    Journaling, resume, and series assembly all stay local.

    While the sweep holds a checkpoint journal open it also holds an
    exclusive advisory lease on it (``<journal>.lock``); a second writer
    racing the same journal gets a typed error instead of silently
    interleaving appends into a corrupt record.  SIGTERM during the sweep
    is converted into ``KeyboardInterrupt`` (main thread only), so the
    pool is shut down, workers are reaped, and the journal is closed on a
    complete record instead of being torn mid-append.
    """
    stacks = list(stacks)
    sizes = list(sizes)
    if not stacks or not sizes:
        raise BenchmarkError("run_sweep needs at least one stack and one size")
    settings = settings or ImbSettings()
    if fault_plan is not None:
        settings = replace(settings, fault_plan=fault_plan)
    from repro.bench.executor import run_cells, sigterm_interrupts

    header: Optional[dict] = None
    cells: dict[str, float] = {}
    stats = SweepStats()
    aborted: dict[str, CellAborted] = {}
    lease: Optional[JournalLease] = None
    journal: Optional[IO[str]] = None
    wall0 = time.perf_counter()

    def journal_cell(key: str, t: float) -> None:
        # An append that errors (disk full, I/O error, chaos injection)
        # downgrades the sweep to no-journaling: retrying a half-written
        # line could corrupt the *interior* of the journal, whereas
        # stopping leaves at most a torn tail — which resume tolerates.
        nonlocal journal
        if journal is None:
            return
        try:
            _journal_append(journal, key, t)
        except OSError as err:
            stats.journal_errors += 1
            stats.events.append(TraceRecord(0.0, "journal.error", {
                "cell": key, "reason": str(err)}))
            try:
                journal.close()
            except OSError:
                pass
            journal = None

    try:
        if checkpoint is not None:
            header = _sweep_header(experiment, machine, operation, nprocs,
                                   settings)
            lease = acquire_journal_lease(checkpoint)
            report = _load_checkpoint(checkpoint, header)
            cells = report.cells
            stats.journal_skipped = len(report.skipped)
            for skip in report.skipped:
                stats.events.append(TraceRecord(0.0, "journal.skip", {
                    "path": checkpoint, "lineno": skip.lineno,
                    "cell": skip.cell, "reason": skip.reason}))
            _compact_checkpoint(checkpoint, header, cells)
        stats.cells_resumed = len(cells)
        pending = [(stack, size) for stack in stacks for size in sizes
                   if f"{stack.name}|{size}" not in cells]
        if checkpoint is not None and pending:
            journal = open(checkpoint, "a")
            wrapper = _JOURNAL_WRAPPER.get()
            if wrapper is not None:
                journal = wrapper(journal)
        with sigterm_interrupts():
            if service is not None and pending:
                _sweep_via_service(service, machine, operation, nprocs,
                                   settings, pending, stats, cells, aborted,
                                   journal_cell)
            elif parallel != 1 and pending:
                pool_report: dict = {}
                producer = run_cells(
                    machine, operation, nprocs, settings, pending,
                    jobs=parallel, report=pool_report,
                    retry_limit=retry_limit)
                try:
                    for key, t, cell_stats in producer:
                        if isinstance(t, CellAborted):
                            aborted[key] = t
                            stats.events.append(TraceRecord(
                                0.0, "chunk.quarantine",
                                {"cell": key, "deaths": t.deaths,
                                 "reason": t.reason}))
                            continue
                        cells[key] = t
                        stats.add_cell(cell_stats)
                        journal_cell(key, t)
                finally:
                    # Close the generator deterministically: an exception
                    # raised in *this* loop body (a signal, a journal bug)
                    # would otherwise leave it suspended — and the warm
                    # pool inside it alive — until garbage collection,
                    # which never happens at all when the process is dying.
                    producer.close()
                stats.pool_workers = pool_report.get("workers", 0)
                stats.pool_chunks = pool_report.get("chunks", 0)
                stats.pool_requeued = pool_report.get("cells_requeued", 0)
                stats.pool_respawns = pool_report.get("respawns", 0)
                stats.cells_aborted = pool_report.get("cells_aborted", 0)
                stats.chunks_quarantined = pool_report.get(
                    "chunks_quarantined", 0)
            else:
                prof_base = _PROFILE_DIR.get()
                for stack, size in pending:
                    if prof_base is not None:
                        import cProfile

                        prof = cProfile.Profile()
                        t = prof.runcall(imb_time, machine, stack, nprocs,
                                         operation, size, settings)
                        prof.dump_stats(_profile_path(
                            prof_base, experiment, machine, stack.name, size))
                    else:
                        t = imb_time(machine, stack, nprocs, operation, size,
                                     settings)
                    key = f"{stack.name}|{size}"
                    cells[key] = t
                    stats.add_cell(imb.consume_cell_stats())
                    journal_cell(key, t)
    finally:
        if journal is not None:
            journal.close()
        if lease is not None:
            lease.release()
    stats.wall_seconds = time.perf_counter() - wall0
    series = []
    for stack in stacks:
        s = Series(stack.name)
        for size in sizes:
            t = cells.get(f"{stack.name}|{size}")
            if t is not None:   # aborted cells are absent, not NaN
                s.times[size] = t
        series.append(s)
    return ExperimentResult(
        experiment=experiment,
        machine=machine,
        operation=operation,
        nprocs=nprocs,
        series=series,
        reference=reference or stacks[-1].name,
        stats=stats,
        aborted=aborted,
    )
