"""Sweep runner and result containers for the paper's experiments.

An experiment is a sweep over (stack × message size) on one machine for one
operation.  Results are kept both as absolute per-op times and normalized
against a reference stack — the paper normalizes every curve to KNEM-Coll,
"the smaller these normalized values, the better the performance of the
corresponding collective component" (with the sense inverted: values above
1 mean the *other* component is slower).
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from repro.bench.imb import ImbSettings, imb_time
from repro.errors import BenchmarkError
from repro.faults.plan import FaultPlan
from repro.mpi.stacks import Stack
from repro.units import fmt_size, fmt_time

__all__ = ["Series", "ExperimentResult", "run_sweep", "results_dir"]


def results_dir() -> str:
    """Directory where experiment CSVs are written (created on demand)."""
    path = os.environ.get("REPRO_RESULTS_DIR",
                          os.path.join(os.getcwd(), "results"))
    os.makedirs(path, exist_ok=True)
    return path


@dataclass
class Series:
    """One curve: per-op seconds by message size for one configuration."""

    name: str
    times: dict[int, float] = field(default_factory=dict)

    def normalized_to(self, ref: "Series") -> dict[int, float]:
        """This series' per-size runtime divided by ``ref``'s."""
        out = {}
        for size, t in self.times.items():
            rt = ref.times.get(size)
            if rt:
                out[size] = t / rt
        return out


@dataclass
class ExperimentResult:
    """All curves of one experiment plus rendering helpers."""

    experiment: str
    machine: str
    operation: str
    nprocs: int
    series: list[Series]
    reference: str

    @property
    def sizes(self) -> list[int]:
        """Sorted union of message sizes across all series."""
        sizes: set[int] = set()
        for s in self.series:
            sizes.update(s.times)
        return sorted(sizes)

    def get(self, name: str) -> Series:
        """Look up one series by configuration name."""
        for s in self.series:
            if s.name == name:
                return s
        raise BenchmarkError(f"no series {name!r} in {self.experiment}")

    def normalized(self) -> dict[str, dict[int, float]]:
        """All series normalized to the reference (paper convention)."""
        ref = self.get(self.reference)
        return {s.name: s.normalized_to(ref) for s in self.series}

    # -- rendering -----------------------------------------------------------
    def render(self, normalized: bool = True) -> str:
        """ASCII table in the paper's normalized-runtime format."""
        sizes = self.sizes
        header = (
            f"{self.experiment}: {self.operation} on {self.machine} "
            f"({self.nprocs} ranks)"
            + (f", normalized to {self.reference} (lower is better)"
               if normalized else ", per-op time")
        )
        lines = [header, "-" * len(header)]
        colw = max(12, max(len(s.name) for s in self.series) + 1)
        row = ["size".rjust(7)] + [s.name.rjust(colw) for s in self.series]
        lines.append(" ".join(row))
        norm = self.normalized() if normalized else None
        for size in sizes:
            cells = [fmt_size(size).rjust(7)]
            for s in self.series:
                if normalized:
                    v = norm[s.name].get(size)
                    cells.append((f"{v:.2f}" if v is not None else "-").rjust(colw))
                else:
                    t = s.times.get(size)
                    cells.append((fmt_time(t) if t is not None else "-").rjust(colw))
            lines.append(" ".join(cells))
        return "\n".join(lines)

    def to_csv(self, path: Optional[str] = None) -> str:
        """Write absolute and normalized values; returns the file path."""
        path = path or os.path.join(
            results_dir(), f"{self.experiment}_{self.machine}.csv"
        )
        norm = self.normalized()
        with open(path, "w", newline="") as fh:
            w = csv.writer(fh)
            w.writerow(["experiment", "machine", "operation", "nprocs",
                        "series", "msg_bytes", "seconds", "normalized"])
            for s in self.series:
                for size in sorted(s.times):
                    w.writerow([
                        self.experiment, self.machine, self.operation,
                        self.nprocs, s.name, size, f"{s.times[size]:.9f}",
                        f"{norm[s.name].get(size, float('nan')):.4f}",
                    ])
        return path


def run_sweep(
    experiment: str,
    machine: str,
    operation: str,
    nprocs: int,
    stacks: Iterable[Stack],
    sizes: Iterable[int],
    settings: Optional[ImbSettings] = None,
    reference: Optional[str] = None,
    fault_plan: Optional["FaultPlan"] = None,
) -> ExperimentResult:
    """Run the (stack x size) grid and return the collected curves.

    ``fault_plan`` arms the schedule on every fresh machine of the sweep
    (forked per build, so call counters restart per cell); with the default
    ``None`` the kernel path stays on its zero-overhead fast path.
    """
    stacks = list(stacks)
    sizes = list(sizes)
    if not stacks or not sizes:
        raise BenchmarkError("run_sweep needs at least one stack and one size")
    settings = settings or ImbSettings()
    if fault_plan is not None:
        settings = replace(settings, fault_plan=fault_plan)
    series = []
    for stack in stacks:
        s = Series(stack.name)
        for size in sizes:
            s.times[size] = imb_time(machine, stack, nprocs, operation, size,
                                     settings)
        series.append(s)
    return ExperimentResult(
        experiment=experiment,
        machine=machine,
        operation=operation,
        nprocs=nprocs,
        series=series,
        reference=reference or stacks[-1].name,
    )
