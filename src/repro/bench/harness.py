"""Sweep runner and result containers for the paper's experiments.

An experiment is a sweep over (stack × message size) on one machine for one
operation.  Results are kept both as absolute per-op times and normalized
against a reference stack — the paper normalizes every curve to KNEM-Coll,
"the smaller these normalized values, the better the performance of the
corresponding collective component" (with the sense inverted: values above
1 mean the *other* component is slower).
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from repro.bench.imb import ImbSettings, imb_time
from repro.errors import BenchmarkError
from repro.faults.plan import FaultPlan
from repro.mpi.stacks import Stack
from repro.units import fmt_size, fmt_time

__all__ = ["Series", "ExperimentResult", "run_sweep", "results_dir",
           "checkpoint_path"]


def results_dir() -> str:
    """Directory where experiment CSVs are written (created on demand)."""
    path = os.environ.get("REPRO_RESULTS_DIR",
                          os.path.join(os.getcwd(), "results"))
    os.makedirs(path, exist_ok=True)
    return path


@dataclass
class Series:
    """One curve: per-op seconds by message size for one configuration."""

    name: str
    times: dict[int, float] = field(default_factory=dict)

    def normalized_to(self, ref: "Series") -> dict[int, float]:
        """This series' per-size runtime divided by ``ref``'s.

        Sizes the reference never measured are skipped; a reference time of
        exactly zero is a measurement bug (a sweep cell cannot take no
        simulated time) and raises :class:`~repro.errors.BenchmarkError`
        rather than silently dropping the point.
        """
        out = {}
        for size, t in self.times.items():
            rt = ref.times.get(size)
            if rt is None:
                continue
            if rt == 0.0:
                raise BenchmarkError(
                    f"cannot normalize {self.name!r} at {fmt_size(size)}: "
                    f"reference series {ref.name!r} measured 0 s")
            out[size] = t / rt
        return out


@dataclass
class ExperimentResult:
    """All curves of one experiment plus rendering helpers."""

    experiment: str
    machine: str
    operation: str
    nprocs: int
    series: list[Series]
    reference: str

    @property
    def sizes(self) -> list[int]:
        """Sorted union of message sizes across all series."""
        sizes: set[int] = set()
        for s in self.series:
            sizes.update(s.times)
        return sorted(sizes)

    def get(self, name: str) -> Series:
        """Look up one series by configuration name."""
        for s in self.series:
            if s.name == name:
                return s
        raise BenchmarkError(f"no series {name!r} in {self.experiment}")

    def normalized(self) -> dict[str, dict[int, float]]:
        """All series normalized to the reference (paper convention)."""
        ref = self.get(self.reference)
        return {s.name: s.normalized_to(ref) for s in self.series}

    # -- rendering -----------------------------------------------------------
    def render(self, normalized: bool = True) -> str:
        """ASCII table in the paper's normalized-runtime format."""
        sizes = self.sizes
        header = (
            f"{self.experiment}: {self.operation} on {self.machine} "
            f"({self.nprocs} ranks)"
            + (f", normalized to {self.reference} (lower is better)"
               if normalized else ", per-op time")
        )
        lines = [header, "-" * len(header)]
        colw = max(12, max(len(s.name) for s in self.series) + 1)
        row = ["size".rjust(7)] + [s.name.rjust(colw) for s in self.series]
        lines.append(" ".join(row))
        norm = self.normalized() if normalized else None
        for size in sizes:
            cells = [fmt_size(size).rjust(7)]
            for s in self.series:
                if normalized:
                    v = norm[s.name].get(size)
                    cells.append((f"{v:.2f}" if v is not None else "-").rjust(colw))
                else:
                    t = s.times.get(size)
                    cells.append((fmt_time(t) if t is not None else "-").rjust(colw))
            lines.append(" ".join(cells))
        return "\n".join(lines)

    def to_csv(self, path: Optional[str] = None) -> str:
        """Write absolute and normalized values; returns the file path."""
        path = path or os.path.join(
            results_dir(), f"{self.experiment}_{self.machine}.csv"
        )
        norm = self.normalized()
        with open(path, "w", newline="") as fh:
            w = csv.writer(fh)
            w.writerow(["experiment", "machine", "operation", "nprocs",
                        "series", "msg_bytes", "seconds", "normalized"])
            for s in self.series:
                for size in sorted(s.times):
                    w.writerow([
                        self.experiment, self.machine, self.operation,
                        self.nprocs, s.name, size, f"{s.times[size]:.9f}",
                        f"{norm[s.name].get(size, float('nan')):.4f}",
                    ])
        return path


def checkpoint_path(experiment: str, machine: str) -> str:
    """Default on-disk checkpoint location, next to the experiment's CSV."""
    return os.path.join(results_dir(),
                        f"{experiment}_{machine}.checkpoint.json")


def _sweep_header(experiment: str, machine: str, operation: str, nprocs: int,
                  settings: ImbSettings) -> dict:
    """Identity of a sweep: cells journaled under one header are only
    reusable by a sweep with the same header (the fault plan is excluded —
    it has no stable fingerprint — so resuming a faulted sweep with a
    different plan is the caller's responsibility)."""
    return {
        "version": 1,
        "experiment": experiment,
        "machine": machine,
        "operation": operation,
        "nprocs": nprocs,
        "settings": [settings.warmups, settings.max_iterations,
                     settings.target_bytes, bool(settings.off_cache),
                     settings.root],
    }


def _load_checkpoint(path: str, header: dict) -> dict[str, float]:
    """Completed cells from ``path``; empty when absent or unreadable."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except FileNotFoundError:
        return {}
    except (OSError, ValueError) as err:
        raise BenchmarkError(f"corrupt sweep checkpoint {path}: {err}") from err
    if data.get("header") != header:
        raise BenchmarkError(
            f"sweep checkpoint {path} belongs to a different sweep "
            f"(header mismatch); delete it to start over")
    cells = data.get("cells", {})
    if not isinstance(cells, dict):
        raise BenchmarkError(f"corrupt sweep checkpoint {path}: no cell map")
    return cells


def _write_checkpoint(path: str, header: dict, cells: dict[str, float]) -> None:
    """Atomic journal update: write a sibling temp file, then rename.

    A crash between any two cells leaves either the previous checkpoint or
    the new one on disk — never a torn file.  Floats go through ``json``
    verbatim (``repr`` round-trip), so a resumed sweep reproduces CSVs
    byte-for-byte.
    """
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump({"header": header, "cells": cells}, fh, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def run_sweep(
    experiment: str,
    machine: str,
    operation: str,
    nprocs: int,
    stacks: Iterable[Stack],
    sizes: Iterable[int],
    settings: Optional[ImbSettings] = None,
    reference: Optional[str] = None,
    fault_plan: Optional["FaultPlan"] = None,
    checkpoint: Optional[str] = None,
) -> ExperimentResult:
    """Run the (stack x size) grid and return the collected curves.

    ``fault_plan`` arms the schedule on every fresh machine of the sweep
    (forked per build, so call counters restart per cell); with the default
    ``None`` the kernel path stays on its zero-overhead fast path.

    ``checkpoint`` names a JSON journal file: every completed (stack, size)
    cell is recorded there atomically (write-temp-then-rename), and cells
    already journaled are skipped on restart.  Because each cell builds a
    fresh machine, a killed-and-resumed sweep produces the same times — and
    therefore byte-identical CSVs — as an uninterrupted one.
    """
    stacks = list(stacks)
    sizes = list(sizes)
    if not stacks or not sizes:
        raise BenchmarkError("run_sweep needs at least one stack and one size")
    settings = settings or ImbSettings()
    if fault_plan is not None:
        settings = replace(settings, fault_plan=fault_plan)
    header: Optional[dict] = None
    cells: dict[str, float] = {}
    if checkpoint is not None:
        header = _sweep_header(experiment, machine, operation, nprocs,
                               settings)
        cells = _load_checkpoint(checkpoint, header)
    series = []
    for stack in stacks:
        s = Series(stack.name)
        for size in sizes:
            key = f"{stack.name}|{size}"
            done = cells.get(key)
            if done is not None:
                s.times[size] = done
                continue
            t = imb_time(machine, stack, nprocs, operation, size, settings)
            s.times[size] = t
            if checkpoint is not None:
                cells[key] = t
                _write_checkpoint(checkpoint, header, cells)
        series.append(s)
    return ExperimentResult(
        experiment=experiment,
        machine=machine,
        operation=operation,
        nprocs=nprocs,
        series=series,
        reference=reference or stacks[-1].name,
    )
