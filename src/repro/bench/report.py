"""Rendering for non-sweep results (Table I, ablations) and comparisons
against the paper's published numbers."""

from __future__ import annotations

from typing import Mapping

from repro.units import fmt_time

__all__ = ["render_table1", "render_registration_ablation"]


def render_table1(machine: str, rows: Mapping[str, Mapping[str, float]],
                  paper: Mapping[str, tuple[float, float]] | None = None) -> str:
    """ASP breakdown in the layout of Table I.

    ``rows`` maps library name to ``{"bcast": s, "total": s}``; ``paper``
    optionally maps the same names to the published ``(bcast, total)``.
    """
    lines = [f"Table I — ASP on {machine} (simulated)"]
    header = f"{'library':>12} {'Bcast':>12} {'Total':>12}"
    if paper:
        header += f" {'paper Bcast':>12} {'paper Total':>12}"
    lines.append(header)
    lines.append("-" * len(header))
    for name, cols in rows.items():
        line = f"{name:>12} {fmt_time(cols['bcast']):>12} {fmt_time(cols['total']):>12}"
        if paper and name in paper:
            pb, pt = paper[name]
            line += f" {pb:>11.1f}s {pt:>11.1f}s"
        lines.append(line)
    best_other = min((c["bcast"] for n, c in rows.items() if n != "KNEM Coll"),
                     default=None)
    knem = rows.get("KNEM Coll")
    if best_other and knem:
        imp_b = 100.0 * (best_other - knem["bcast"]) / best_other
        best_total = min(c["total"] for n, c in rows.items() if n != "KNEM Coll")
        imp_t = 100.0 * (best_total - knem["total"]) / best_total
        lines.append(f"{'Improvement':>12} {imp_b:>11.1f}% {imp_t:>11.1f}%")
    return "\n".join(lines)


def render_registration_ablation(stats: Mapping[str, Mapping[str, int]]) -> str:
    """Registration-count comparison (persistent regions vs per-message)."""
    lines = ["KNEM region registrations for one broadcast"]
    header = f"{'stack':>12} {'registrations':>14} {'kernel copies':>14}"
    lines.append(header)
    lines.append("-" * len(header))
    for name, s in stats.items():
        lines.append(f"{name:>12} {s['registrations']:>14} {s['kernel_copies']:>14}")
    return "\n".join(lines)
