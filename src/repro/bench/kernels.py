"""Generated-and-measured event-core kernels (``--tune`` / receipts).

The event core has two inner loops hot enough to specialize: the cohort
drain loop (:meth:`repro.simtime.core.Simulator._run_cohort`) and the
resident numpy waterfilling
(:meth:`repro.hardware.flows.FlowNetwork._assign_rates_vec`).  This module
follows the measure-everything idiom: *generate* the specialized inner
loop, *prove* it bitwise-identical to the builtin on a differential
battery, *measure* it on this host, and *keep the receipts* — a versioned
JSON artifact mapping each paper machine to the variant that actually won
here, with the numbers that justify the choice.

Variants
--------
Dispatch (``fn(sim, horizon)``; installed via
:func:`repro.simtime.core.install_dispatch_kernel`):

- ``dx_generic`` — the hand-written builtin (no kernel installed).
- ``dx_drain`` — the builtin's source with the ``horizon`` checks folded
  away for the ``run()`` path (full drains never consult a horizon);
  bounded drains fall back to the builtin.
- ``dx_split`` — both specializations: a horizon-free body for ``run()``
  and a body with the ``is not None`` tests pre-folded for
  ``run_horizon()``.

Waterfill (``fn(net, ordered)``; installed via
:func:`repro.hardware.flows.install_waterfill_kernel`):

- ``wf_generic`` — the builtin resident-numpy waterfilling.
- ``wf_fused_r1`` — single-resource networks: the filling rounds collapse
  to pure scalar float arithmetic (no per-round small-array numpy calls).
- ``wf_scalarized`` — small networks (few resources, few flows): the same
  collapse with an inner resource loop.
- ``wf_nres<N>`` — the builtin's source with the resource count pinned to
  machine ``N`` (one per paper machine's resource count).

Every specialized variant performs the *same IEEE-754 operations in the
same order* as the builtin — sequential column accumulation, first-minimum
scans, whole-row freezes in flow-id order — so rates, traces and counters
stay bitwise-identical; the battery in :func:`verify_dispatch_variant` /
:func:`verify_waterfill_variant` enforces this before a variant becomes
eligible, and the scalar paths remain the oracle for all of it.

Receipts are validated on load: a version bump, a different host
fingerprint, or an unknown variant name makes them *stale* and
:func:`activate` silently keeps the builtins.  Everything here is gated on
``REPRO_VECTOR`` — with the vector path off the kernels are never
installed.

CLI::

    python -m repro.bench.kernels --tune [--quick] [--verify] \
        [--receipts PATH] [--machines zoot,dancer,...]
"""

from __future__ import annotations

import argparse
import gc
import inspect
import json
import os
import platform
import random
import re
import struct
import sys
import textwrap
import time
from pathlib import Path
from typing import Any, Callable, Optional

from repro import vector as _vector
from repro.hardware import flows as _flows
from repro.hardware.flows import FlowNetwork, Resource
from repro.simtime import core as _core
from repro.simtime.core import Simulator

__all__ = [
    "KernelGenerationError", "KernelVerificationError",
    "DISPATCH_VARIANTS", "WATERFILL_VARIANTS",
    "make_dispatch_kernel", "make_waterfill_kernel",
    "verify_dispatch_variant", "verify_waterfill_variant",
    "host_fingerprint", "machine_n_res", "tune", "activate",
    "load_receipts", "main",
]

RECEIPTS_VERSION = 1
ENV_RECEIPTS = "REPRO_KERNEL_RECEIPTS"
DEFAULT_RECEIPTS = Path(__file__).resolve().parents[3] / "BENCH_kernels.json"
PAPER_MACHINES = ("zoot", "dancer", "saturn", "ig")
#: a specialized variant must beat the builtin by this factor to be
#: recorded as the winner (hysteresis: re-tuning on the same host must
#: reproduce the recorded winner despite run-to-run noise)
WIN_MARGIN = 1.03


class KernelGenerationError(RuntimeError):
    """The builtin's source no longer matches the generation template."""


class KernelVerificationError(AssertionError):
    """A generated kernel diverged from the builtin on the battery."""


def host_fingerprint() -> dict[str, Any]:
    """What must match for persisted receipts to stay valid here."""
    import numpy
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "cpus": os.cpu_count() or 1,
        "numpy": numpy.__version__,
    }


# ---------------------------------------------------------------------------
# dispatch kernel generation (source transformation of the builtin)
# ---------------------------------------------------------------------------

def _builtin_drain_source() -> list[str]:
    src = textwrap.dedent(inspect.getsource(Simulator._run_cohort))
    return src.splitlines()


def _specialize_drain(name: str, horizon_known: bool) -> str:
    """Generate a drain-loop source with the horizon tests specialized.

    ``horizon_known=False`` deletes the two ``horizon is not None and ...``
    guard blocks entirely (the ``run()`` path never passes one);
    ``horizon_known=True`` folds the ``is not None`` test to true.  Any
    drift in the builtin's source that breaks the expected shape raises
    :class:`KernelGenerationError` so tuning falls back to the builtin
    instead of silently generating garbage.
    """
    lines = _builtin_drain_source()
    out: list[str] = []
    folded = 0
    i = 0
    while i < len(lines):
        line = lines[i]
        if "horizon is not None and" in line:
            folded += 1
            if horizon_known:
                out.append(line.replace("horizon is not None and ", ""))
                i += 1
            else:
                if i + 1 >= len(lines) or lines[i + 1].strip() != "return":
                    raise KernelGenerationError(
                        f"unexpected horizon guard shape at line {i}: "
                        f"{line!r}")
                i += 2  # drop the guard and its return
            continue
        out.append(line)
        i += 1
    if folded != 2:
        raise KernelGenerationError(
            f"expected 2 horizon guards in _run_cohort, found {folded}")
    header = re.compile(r"def _run_cohort\(self, horizon[^)]*\)[^:]*:")
    if not header.search(out[0]):
        raise KernelGenerationError(f"unexpected header: {out[0]!r}")
    out[0] = header.sub(f"def {name}(self, horizon=None):", out[0])
    return "\n".join(out) + "\n"


def _compile_in(module, src: str, name: str) -> Callable:
    """Exec generated source in a copy of ``module``'s globals."""
    namespace = dict(vars(module))
    code = compile(src, f"<generated kernel {name}>", "exec")
    exec(code, namespace)
    fn = namespace[name]
    fn.generated_source = src
    return fn


def _make_dx_drain() -> Callable:
    body = _compile_in(_core, _specialize_drain("dx_drain_body", False),
                       "dx_drain_body")
    builtin = Simulator._run_cohort

    def dx_drain(sim: Simulator, horizon: Optional[float]) -> None:
        if horizon is None:
            body(sim, None)
        else:
            builtin(sim, horizon)

    dx_drain.generated_source = body.generated_source
    return dx_drain


def _make_dx_split() -> Callable:
    free = _compile_in(_core, _specialize_drain("dx_split_free", False),
                       "dx_split_free")
    bound = _compile_in(_core, _specialize_drain("dx_split_bound", True),
                        "dx_split_bound")

    def dx_split(sim: Simulator, horizon: Optional[float]) -> None:
        if horizon is None:
            free(sim, None)
        else:
            bound(sim, horizon)

    dx_split.generated_source = (free.generated_source
                                 + "\n" + bound.generated_source)
    return dx_split


#: name -> nullary factory returning the kernel callable (``None`` = keep
#: the builtin).  Factories regenerate from the *current* builtin source,
#: so a stale receipts file can never resurrect an outdated loop.
DISPATCH_VARIANTS: dict[str, Callable[[], Optional[Callable]]] = {
    "dx_generic": lambda: None,
    "dx_drain": _make_dx_drain,
    "dx_split": _make_dx_split,
}


def make_dispatch_kernel(name: str) -> Optional[Callable]:
    try:
        factory = DISPATCH_VARIANTS[name]
    except KeyError:
        raise KernelGenerationError(f"unknown dispatch variant {name!r}")
    return factory()


# ---------------------------------------------------------------------------
# waterfill kernel generation
# ---------------------------------------------------------------------------

# The scalarized filling rounds.  Every arithmetic statement mirrors one
# numpy statement of the builtin (same operand order, same IEEE-754
# operation, dead columns included), so results are bitwise-identical; see
# the builtin's docstring for why each step is exact.
_WF_SCALAR_TEMPLATE = '''\
def {NAME}(self, ordered):
    n = len(ordered)
    if n == 0:
        return
    n_res = len(self._vres_list)
{GUARD}
    slots = self._vslot
    idx = [slots[f] for f in ordered]
    w_rows = self._vW[idx][:, :n_res].tolist()
    s_rows = self._vS[idx][:, :n_res].tolist()
    for f in ordered:
        f.rate = 0.0
    cols = range(n_res)
    # Sequential row accumulation per column == _row_sum on the builtin.
    wsum = [0.0] * n_res
    ssum = [0.0] * n_res
    for wr, sr in zip(w_rows, s_rows):
        for j in cols:
            wsum[j] += wr[j]
            ssum[j] += sr[j]
    caps = self._vcaps[:n_res].tolist()
    knee = self._vknee[:n_res].tolist()
    alpha = self._valpha[:n_res].tolist()
    thresh = self._vthresh[:n_res].tolist()
    residual = [0.0] * n_res
    for j in cols:
        # round() is the same half-to-even as np.round; max(x, 0.0)
        # matches np.maximum for the non-NaN values that occur here.
        excess = float(round(ssum[j])) - knee[j]
        if excess < 0.0:
            excess = 0.0
        residual[j] = caps[j] / (1.0 + alpha[j] * excess)
    demands = [f.demand for f in ordered]
    by_demand = np.argsort(np.asarray(demands), kind="stable").tolist()
    unfrozen = [True] * n
    n_unfrozen = n
    demand_ptr = 0
    rate = 0.0
    inf = float("inf")
    eps = _EPS_RATE
    while n_unfrozen:
        while demand_ptr < n and not unfrozen[by_demand[demand_ptr]]:
            demand_ptr += 1
        inc = demands[by_demand[demand_ptr]] - rate if demand_ptr < n else inf
        # First strict minimum over live columns == np.argmin over the
        # where-masked quotients.
        live = [wsum[j] > 1e-12 for j in cols]
        bottleneck = -1
        best = inf
        for j in cols:
            if live[j]:
                r_inc = residual[j] / wsum[j]
                if r_inc < best:
                    best = r_inc
                    bottleneck = j
        if best < inc:
            inc = best
        else:
            bottleneck = -1
        if inc < 0:
            inc = 0.0
        rate += inc
        for j in cols:
            residual[j] -= inc * wsum[j]
        frozen = [False] * n
        any_frozen = False
        while demand_ptr < n:
            i = by_demand[demand_ptr]
            if not unfrozen[i]:
                demand_ptr += 1
                continue
            if demands[i] - rate > eps:
                break
            frozen[i] = True
            any_frozen = True
            demand_ptr += 1
        sat = [j for j in cols if live[j] and residual[j] <= thresh[j]]
        if sat:
            for i in range(n):
                if unfrozen[i] and not frozen[i]:
                    wr = w_rows[i]
                    for j in sat:
                        if wr[j] != 0.0:
                            frozen[i] = True
                            any_frozen = True
                            break
        if not any_frozen:
            if bottleneck < 0:
                break
            for i in range(n):
                if unfrozen[i] and w_rows[i][bottleneck] != 0.0:
                    frozen[i] = True
                    any_frozen = True
            if not any_frozen:
                break
        for i in range(n):
            if frozen[i]:
                ordered[i].rate = rate
                wr = w_rows[i]
                for j in cols:
                    wsum[j] -= wr[j]
                unfrozen[i] = False
                n_unfrozen -= 1
    if n_unfrozen:
        for i in range(n):
            if unfrozen[i]:
                ordered[i].rate = rate
'''

# Single-resource fusion: the column loops above collapse entirely.
_WF_R1_TEMPLATE = '''\
def {NAME}(self, ordered):
    n = len(ordered)
    if n == 0:
        return
    if len(self._vres_list) != 1:
        return FlowNetwork._assign_rates_vec(self, ordered)
    slots = self._vslot
    idx = [slots[f] for f in ordered]
    w_col = self._vW[idx, 0].tolist()
    s_col = self._vS[idx, 0].tolist()
    for f in ordered:
        f.rate = 0.0
    wsum = 0.0
    ssum = 0.0
    for i in range(n):
        wsum += w_col[i]
        ssum += s_col[i]
    excess = float(round(ssum)) - float(self._vknee[0])
    if excess < 0.0:
        excess = 0.0
    residual = float(self._vcaps[0]) / (1.0 + float(self._valpha[0]) * excess)
    thresh = float(self._vthresh[0])
    demands = [f.demand for f in ordered]
    by_demand = np.argsort(np.asarray(demands), kind="stable").tolist()
    unfrozen = [True] * n
    n_unfrozen = n
    demand_ptr = 0
    rate = 0.0
    inf = float("inf")
    eps = _EPS_RATE
    while n_unfrozen:
        while demand_ptr < n and not unfrozen[by_demand[demand_ptr]]:
            demand_ptr += 1
        inc = demands[by_demand[demand_ptr]] - rate if demand_ptr < n else inf
        live = wsum > 1e-12
        bottleneck = -1
        if live:
            r_inc = residual / wsum
            if r_inc < inc:
                inc = r_inc
                bottleneck = 0
        if inc < 0:
            inc = 0.0
        rate += inc
        residual -= inc * wsum
        frozen = [False] * n
        any_frozen = False
        while demand_ptr < n:
            i = by_demand[demand_ptr]
            if not unfrozen[i]:
                demand_ptr += 1
                continue
            if demands[i] - rate > eps:
                break
            frozen[i] = True
            any_frozen = True
            demand_ptr += 1
        if live and residual <= thresh:
            for i in range(n):
                if unfrozen[i] and not frozen[i] and w_col[i] != 0.0:
                    frozen[i] = True
                    any_frozen = True
        if not any_frozen:
            if bottleneck < 0:
                break
            for i in range(n):
                if unfrozen[i] and w_col[i] != 0.0:
                    frozen[i] = True
                    any_frozen = True
            if not any_frozen:
                break
        for i in range(n):
            if frozen[i]:
                ordered[i].rate = rate
                wsum -= w_col[i]
                unfrozen[i] = False
                n_unfrozen -= 1
    if n_unfrozen:
        for i in range(n):
            if unfrozen[i]:
                ordered[i].rate = rate
'''


def _make_wf_scalarized() -> Callable:
    guard = ("    if n_res > 8 or n > 96:\n"
             "        return FlowNetwork._assign_rates_vec(self, ordered)")
    src = _WF_SCALAR_TEMPLATE.format(NAME="wf_scalarized", GUARD=guard)
    return _compile_in(_flows, src, "wf_scalarized")


def _make_wf_fused_r1() -> Callable:
    src = _WF_R1_TEMPLATE.format(NAME="wf_fused_r1")
    return _compile_in(_flows, src, "wf_fused_r1")


def _make_wf_nres(n_res: int) -> Callable:
    """Pin the builtin's resource count to a machine constant."""
    name = f"wf_nres{n_res}"
    src = textwrap.dedent(inspect.getsource(FlowNetwork._assign_rates_vec))
    lines = src.splitlines()
    header = re.compile(r"def _assign_rates_vec\(self, ordered[^)]*\)[^:]*:")
    if not header.search(lines[0]):
        raise KernelGenerationError(f"unexpected header: {lines[0]!r}")
    lines[0] = header.sub(f"def {name}(self, ordered):", lines[0])
    anchor = "    n_res = len(self._vres_list)"
    try:
        at = lines.index(anchor)
    except ValueError:
        raise KernelGenerationError(
            "could not find the n_res binding in _assign_rates_vec")
    lines[at:at + 1] = [
        anchor,
        f"    if n_res != {n_res}:",
        "        return FlowNetwork._assign_rates_vec(self, ordered)",
        f"    n_res = {n_res}",
    ]
    return _compile_in(_flows, "\n".join(lines) + "\n", name)


_WF_NRES = re.compile(r"^wf_nres(\d+)$")

WATERFILL_VARIANTS: dict[str, Callable[[], Optional[Callable]]] = {
    "wf_generic": lambda: None,
    "wf_fused_r1": _make_wf_fused_r1,
    "wf_scalarized": _make_wf_scalarized,
}


def make_waterfill_kernel(name: str) -> Optional[Callable]:
    factory = WATERFILL_VARIANTS.get(name)
    if factory is not None:
        return factory()
    m = _WF_NRES.match(name)
    if m:
        return _make_wf_nres(int(m.group(1)))
    raise KernelGenerationError(f"unknown waterfill variant {name!r}")


def _known_waterfill(name: str) -> bool:
    return name in WATERFILL_VARIANTS or bool(_WF_NRES.match(name))


# ---------------------------------------------------------------------------
# differential battery (bitwise equivalence against the builtins)
# ---------------------------------------------------------------------------

def _dispatch_workload(sim: Simulator, trace: list, seed: int) -> None:
    """A heterogeneous event mix: colliding timeout chains, same-instant
    event cohorts, a delivered failure, shared-timeout waiters, a kill."""
    rng = random.Random(seed)

    def chain(tag: int, steps: int, delay: float):
        for i in range(steps):
            got = yield sim.timeout(delay, value=i)
            trace.append(("chain", tag, sim.now, got))

    for k in range(4):
        sim.process(chain(k, 25, 1e-6 * (1 + k % 2)), name=f"chain-{k}")

    events = [sim.event(f"e{i}") for i in range(8)]

    def poker():
        yield sim.timeout(5e-6)
        for i, ev in enumerate(events):
            ev.succeed(i * 10)

    def waiter(i: int):
        got = yield events[i]
        trace.append(("event", i, sim.now, got))
        yield sim.timeout(1e-6, value="tail")
        trace.append(("tail", i, sim.now))

    for i in range(len(events)):
        sim.process(waiter(i), name=f"waiter-{i}")
    sim.process(poker(), name="poker")

    def failer():
        boom = sim.event("boom")
        sim.schedule(2e-6, lambda: boom.fail(RuntimeError("boom")))
        try:
            yield boom
        except RuntimeError as exc:
            trace.append(("caught", str(exc), sim.now))

    sim.process(failer(), name="failer")

    shared = sim.timeout(3e-6, value="shared")

    def shared_waiter(tag: str):
        got = yield shared
        trace.append(("shared", tag, sim.now, got))

    sim.process(shared_waiter("a"), name="shared-a")
    sim.process(shared_waiter("b"), name="shared-b")

    def victim():
        yield sim.timeout(50e-6)
        trace.append(("victim-survived",))

    prey = sim.process(victim(), name="victim")

    def killer():
        yield sim.timeout(4e-6)
        prey.kill()
        trace.append(("killed", sim.now))

    sim.process(killer(), name="killer")

    for k in range(3):
        delays = [rng.choice([5e-7, 1e-6, 2e-6]) for _ in range(18)]

        def jitter(tag: int, ds: list):
            for d in ds:
                yield sim.timeout(d)
            trace.append(("jitter", tag, sim.now))

        sim.process(jitter(k, delays), name=f"jitter-{k}")


def _run_dispatch_case(seed: int, cohort: bool,
                       kernel: Optional[Callable]) -> tuple:
    prev = _core.installed_dispatch_kernel()
    _core.install_dispatch_kernel(kernel)
    try:
        sim = Simulator(cohort=cohort)
        trace: list = []
        _dispatch_workload(sim, trace, seed)
        sim.run()
        return (trace, sim.now, sim.events_processed, sim.process_resumes,
                sim.peak_heap)
    finally:
        _core.install_dispatch_kernel(prev)


def verify_dispatch_variant(name: str,
                            seeds: tuple = (1, 2, 3)) -> None:
    """Raise :class:`KernelVerificationError` unless ``name`` matches both
    the builtin cohort loop and the scalar oracle bitwise."""
    kernel = make_dispatch_kernel(name)
    for seed in seeds:
        got = _run_dispatch_case(seed, True, kernel)
        want = _run_dispatch_case(seed, True, None)
        oracle = _run_dispatch_case(seed, False, None)
        if got != want:
            raise KernelVerificationError(
                f"{name} diverged from the builtin cohort loop (seed {seed})")
        if got[:2] != oracle[:2] or got[2:] != oracle[2:]:
            raise KernelVerificationError(
                f"{name} diverged from the scalar oracle (seed {seed})")


def _flow_workload(n_res: int, seed: int, transfers: int):
    """Build (sim, net, resources, trace, driver-process) for the battery."""
    sim = Simulator(cohort=_vector.enabled())
    net = FlowNetwork(sim, vectorized=True)
    net.vector_min_flows = 0  # force the vector path for every rebalance
    rng = random.Random(seed)
    resources = [
        Resource(f"r{j}", 1e9 * (1 + j),
                 contention_knee=2 if j == 0 else 0,
                 contention_alpha=0.05 if j == 0 else 0.0)
        for j in range(n_res)
    ]
    trace: list = []

    def driver():
        for i in range(transfers):
            yield sim.timeout(rng.random() * 2e-5)
            picks = rng.sample(resources, k=rng.randint(1, n_res))
            weights = {r: rng.choice([0.5, 1.0, 2.0]) for r in picks}
            streams = {r: rng.choice([0.3, 1.0]) for r in picks[:1]}
            done = net.transfer(
                float(rng.randrange(1, 1 << 18)),
                demand=rng.choice([2.5e8, 1e9, 8e9]),
                weights=weights,
                latency=rng.choice([0.0, 0.0, 1e-6]),
                label=f"f{i}",
                streams=streams,
            )
            done.add_callback(
                lambda _e, i=i: trace.append((i, sim.now)))

    sim.process(driver(), name="driver")
    return sim, net, trace


def _run_flow_case(n_res: int, seed: int, kernel: Optional[Callable],
                   transfers: int = 32) -> tuple:
    prev = _flows.installed_waterfill_kernel()
    _flows.install_waterfill_kernel(kernel)
    try:
        sim, net, trace = _flow_workload(n_res, seed, transfers)
        sim.run()
        bits = struct.pack("<d", net.completed_bytes)
        times = struct.pack(f"<{len(trace)}d", *(t for _i, t in trace))
        order = tuple(i for i, _t in trace)
        return (order, times, bits, net.completed_flows,
                net.vector_assignments, sim.events_processed)
    finally:
        _flows.install_waterfill_kernel(prev)


def verify_waterfill_variant(name: str, n_res_set: tuple = (1, 2, 3, 5),
                             seeds: tuple = (11, 12)) -> None:
    kernel = make_waterfill_kernel(name)
    for n_res in n_res_set:
        for seed in seeds:
            got = _run_flow_case(n_res, seed, kernel)
            want = _run_flow_case(n_res, seed, None)
            if got != want:
                raise KernelVerificationError(
                    f"{name} diverged from the builtin waterfilling "
                    f"(n_res={n_res}, seed={seed})")


# ---------------------------------------------------------------------------
# measurement
# ---------------------------------------------------------------------------

def _timed(fn: Callable[[], int]) -> float:
    """Best-practice micro timing: GC paused around the measured region
    (the ``timeit`` idiom); returns events-or-items per second."""
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        t0 = time.perf_counter()
        n = fn()
        dt = time.perf_counter() - t0
    finally:
        if gc_was_enabled:
            gc.enable()
    return n / dt if dt > 0 else float("inf")


def bench_dispatch(name: str, quick: bool = False) -> float:
    """Events/sec for a timeout-chain drain under dispatch variant ``name``."""
    kernel = make_dispatch_kernel(name)
    chains, length = (10, 800) if quick else (10, 3000)
    repeats = 2 if quick else 3

    def one() -> float:
        prev = _core.installed_dispatch_kernel()
        _core.install_dispatch_kernel(kernel)
        try:
            sim = Simulator(cohort=True)

            def chain():
                timeout = sim.timeout
                for _ in range(length):
                    yield timeout(1e-9)

            for _ in range(chains):
                sim.process(chain())

            def run() -> int:
                sim.run()
                return sim.events_processed

            return _timed(run)
        finally:
            _core.install_dispatch_kernel(prev)

    one()  # warm-up
    return max(one() for _ in range(repeats))


def bench_waterfill(name: str, n_res: int, quick: bool = False) -> float:
    """Completed transfers/sec for a flow workload under variant ``name``."""
    kernel = make_waterfill_kernel(name)
    transfers = 40 if quick else 120
    repeats = 2 if quick else 3

    def one() -> float:
        prev = _flows.installed_waterfill_kernel()
        _flows.install_waterfill_kernel(kernel)
        try:
            sim, net, _trace = _flow_workload(n_res, 77, transfers)

            def run() -> int:
                sim.run()
                return net.completed_flows

            return _timed(run)
        finally:
            _flows.install_waterfill_kernel(prev)

    one()
    return max(one() for _ in range(repeats))


# ---------------------------------------------------------------------------
# tuning, receipts, activation
# ---------------------------------------------------------------------------

def machine_n_res(machine: str) -> int:
    """Resource-count signature of a paper machine's flow networks: one
    memory port per NUMA domain plus its inter-domain links."""
    from repro.hardware.machines import get_machine
    spec = get_machine(machine)
    return max(1, (max(spec.socket_domain) + 1) + len(spec.links))


def _pick_winner(measured: dict[str, float], generic: str) -> str:
    base = measured.get(generic, 0.0)
    best_name, best = generic, base
    for name, value in measured.items():
        if value > best:
            best_name, best = name, value
    if best_name != generic and base > 0 and best < base * WIN_MARGIN:
        return generic  # not a decisive win: keep the builtin
    return best_name


def tune(quick: bool = False, machines: tuple = PAPER_MACHINES,
         log: Callable[[str], None] = lambda s: None) -> dict[str, Any]:
    """Generate, verify, measure; return a fresh receipts dict."""
    rejected: list[dict[str, str]] = []

    def surviving(names, verify) -> list[str]:
        keep = []
        for name in names:
            try:
                verify(name)
            except (KernelGenerationError, KernelVerificationError) as exc:
                rejected.append({"variant": name, "reason": str(exc)})
                log(f"REJECTED {name}: {exc}")
                continue
            keep.append(name)
        return keep

    n_res_by_machine = {m: machine_n_res(m) for m in machines}
    wf_names = list(WATERFILL_VARIANTS)
    for n_res in sorted(set(n_res_by_machine.values())):
        wf_names.append(f"wf_nres{n_res}")

    log("verifying dispatch variants against the builtin + scalar oracle")
    dx_ok = surviving(DISPATCH_VARIANTS, verify_dispatch_variant)
    log("verifying waterfill variants against the builtin")
    wf_ok = surviving(wf_names, verify_waterfill_variant)

    log("measuring dispatch variants")
    dx_measured = {name: bench_dispatch(name, quick) for name in dx_ok}
    dx_winner = _pick_winner(dx_measured, "dx_generic")
    for name, v in sorted(dx_measured.items(), key=lambda kv: -kv[1]):
        log(f"  {name}: {v:,.0f} events/s"
            + ("  <- winner" if name == dx_winner else ""))

    machines_out: dict[str, Any] = {}
    for machine in machines:
        n_res = n_res_by_machine[machine]
        candidates = ["wf_generic", "wf_scalarized", f"wf_nres{n_res}"]
        if n_res == 1:
            candidates.append("wf_fused_r1")
        candidates = [c for c in candidates if c in wf_ok]
        log(f"measuring waterfill variants for {machine} (n_res={n_res})")
        wf_measured = {name: bench_waterfill(name, n_res, quick)
                       for name in candidates}
        wf_winner = _pick_winner(wf_measured, "wf_generic")
        for name, v in sorted(wf_measured.items(), key=lambda kv: -kv[1]):
            log(f"  {name}: {v:,.0f} transfers/s"
                + ("  <- winner" if name == wf_winner else ""))
        machines_out[machine] = {
            "n_res": n_res,
            "dispatch": dx_winner,
            "waterfill": wf_winner,
            "measured": {"waterfill": {k: round(v, 1)
                                       for k, v in wf_measured.items()}},
        }

    return {
        "version": RECEIPTS_VERSION,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": quick,
        "host": host_fingerprint(),
        "default": {"dispatch": dx_winner, "waterfill": "wf_generic"},
        "measured": {"dispatch": {k: round(v, 1)
                                  for k, v in dx_measured.items()}},
        "machines": machines_out,
        "rejected": rejected,
    }


def _receipts_path(path: Optional[str] = None) -> Path:
    if path:
        return Path(path)
    env = os.environ.get(ENV_RECEIPTS)
    return Path(env) if env else DEFAULT_RECEIPTS


def load_receipts(path: Optional[str] = None) -> Optional[dict]:
    p = _receipts_path(path)
    try:
        with open(p, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def _staleness(receipts: Optional[dict]) -> Optional[str]:
    """None when the receipts are usable here, else the reason they are not."""
    if receipts is None:
        return "no receipts"
    if receipts.get("version") != RECEIPTS_VERSION:
        return f"receipts version {receipts.get('version')} != {RECEIPTS_VERSION}"
    host = receipts.get("host") or {}
    here = host_fingerprint()
    for key, value in here.items():
        if host.get(key) != value:
            return f"host fingerprint mismatch on {key!r} " \
                   f"({host.get(key)!r} != {value!r})"
    return None


def activate(machine: Optional[str] = None,
             path: Optional[str] = None) -> dict[str, Any]:
    """Install the recorded winners (or keep the builtins when anything is
    off: vector path disabled, receipts missing/stale/unknown variant).

    Returns a summary dict: ``{"active": bool, "reason": str | None,
    "dispatch": name, "waterfill": name}``.
    """
    summary = {"active": False, "reason": None,
               "dispatch": "dx_generic", "waterfill": "wf_generic"}

    def fallback(reason: str) -> dict[str, Any]:
        _core.install_dispatch_kernel(None)
        _flows.install_waterfill_kernel(None)
        summary["reason"] = reason
        return summary

    if not _vector.enabled():
        return fallback("REPRO_VECTOR disabled")
    receipts = load_receipts(path)
    stale = _staleness(receipts)
    if stale:
        return fallback(stale)
    entry = (receipts["machines"].get(machine) if machine
             else receipts.get("default")) or receipts.get("default") or {}
    dx = entry.get("dispatch", "dx_generic")
    wf = entry.get("waterfill", "wf_generic")
    if dx not in DISPATCH_VARIANTS or not _known_waterfill(wf):
        return fallback(f"unknown variant in receipts: {dx!r}/{wf!r}")
    try:
        _core.install_dispatch_kernel(make_dispatch_kernel(dx))
        _flows.install_waterfill_kernel(make_waterfill_kernel(wf))
    except KernelGenerationError as exc:
        return fallback(f"generation failed: {exc}")
    summary.update(active=True, dispatch=dx, waterfill=wf)
    return summary


def deactivate() -> None:
    """Restore both builtins (test/bench teardown helper)."""
    _core.install_dispatch_kernel(None)
    _flows.install_waterfill_kernel(None)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.kernels",
        description="Generate, verify, measure and persist event-core kernels.")
    parser.add_argument("--tune", action="store_true",
                        help="run the full generate/verify/measure pass and "
                             "write the receipts")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (CI smoke)")
    parser.add_argument("--verify", action="store_true",
                        help="with --tune: require the fresh winners to "
                             "reproduce the recorded receipts; alone: "
                             "re-run the bitwise battery for the recorded "
                             "winners")
    parser.add_argument("--receipts", metavar="PATH", default=None,
                        help=f"receipts file (default {DEFAULT_RECEIPTS}, "
                             f"override with ${ENV_RECEIPTS})")
    parser.add_argument("--machines", default=",".join(PAPER_MACHINES),
                        help="comma-separated machine specs to tune for")
    parser.add_argument("--show", action="store_true",
                        help="print the current receipts and what activate() "
                             "would install")
    args = parser.parse_args(argv)
    machines = tuple(m for m in args.machines.split(",") if m)
    path = _receipts_path(args.receipts)

    if args.show:
        receipts = load_receipts(args.receipts)
        try:
            print(json.dumps(receipts, indent=2) if receipts else "no receipts")
            summary = activate(path=args.receipts)
            deactivate()
            print(f"activate(): {summary}")
        except BrokenPipeError:  # e.g. `--show | head`
            sys.stderr.close()
        return 0

    if not args.tune and not args.verify:
        parser.error("nothing to do: pass --tune and/or --verify (or --show)")

    if args.verify and not args.tune:
        receipts = load_receipts(args.receipts)
        stale = _staleness(receipts)
        if stale:
            print(f"receipts unusable: {stale}")
            return 1
        names = {receipts["default"]["dispatch"]} | {
            m["dispatch"] for m in receipts["machines"].values()}
        for name in sorted(names):
            verify_dispatch_variant(name)
            print(f"verified {name}: bitwise-identical")
        wf_names = {receipts["default"]["waterfill"]} | {
            m["waterfill"] for m in receipts["machines"].values()}
        for name in sorted(wf_names):
            verify_waterfill_variant(name)
            print(f"verified {name}: bitwise-identical")
        return 0

    prior = load_receipts(args.receipts)
    receipts = tune(quick=args.quick, machines=machines, log=print)
    if args.verify and prior is not None and _staleness(prior) is None:
        mismatches = []
        if prior["default"]["dispatch"] != receipts["default"]["dispatch"]:
            mismatches.append(
                f"default dispatch: recorded "
                f"{prior['default']['dispatch']}, fresh "
                f"{receipts['default']['dispatch']}")
        for machine, entry in receipts["machines"].items():
            old = prior.get("machines", {}).get(machine)
            if old and old.get("waterfill") != entry["waterfill"]:
                mismatches.append(
                    f"{machine} waterfill: recorded {old['waterfill']}, "
                    f"fresh {entry['waterfill']}")
        if mismatches:
            print("receipts do NOT reproduce:")
            for m in mismatches:
                print(f"  {m}")
            return 1
        print("receipts reproduce the recorded winners")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(receipts, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"receipts written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
