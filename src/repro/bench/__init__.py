"""Benchmark harness: IMB-style measurement loops, the paper's experiments,
and result rendering.

- :mod:`repro.bench.imb` — Intel MPI Benchmarks semantics (warmups,
  per-size iteration counts, the ``-off_cache`` option the paper enables);
- :mod:`repro.bench.experiments` — one entry per paper figure/table plus
  the ablations called out in DESIGN.md;
- :mod:`repro.bench.harness` / :mod:`repro.bench.report` — sweep runner,
  normalization (the paper normalizes every curve to KNEM-Coll), ASCII
  tables and CSV output;
- :mod:`repro.bench.executor` — multiprocessing cell/experiment fan-out
  behind ``run_sweep(parallel=)`` and the CLI's ``--jobs N``;
- :mod:`repro.bench.cli` — ``python -m repro.bench <experiment>`` for
  full-size sweeps.
"""

from repro.bench.harness import (
    ExperimentResult,
    Series,
    SweepStats,
    run_sweep,
)
from repro.bench.imb import CellStats, ImbSettings, imb_time
from repro.bench.timeline import copy_stats, render_timeline

__all__ = [
    "ImbSettings",
    "imb_time",
    "run_sweep",
    "Series",
    "ExperimentResult",
    "SweepStats",
    "CellStats",
    "render_timeline",
    "copy_stats",
]
