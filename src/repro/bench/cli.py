"""Command-line entry point: ``python -m repro.bench <experiment>``.

Examples::

    python -m repro.bench fig5 --machine dancer --scale bench
    python -m repro.bench fig4 --scale full --jobs 8
    python -m repro.bench table1 --machine zoot --sample 64
    python -m repro.bench all --scale smoke --jobs 0 --verbose
    python -m repro.bench --verify-journal results/fig5_dancer.checkpoint.json
    python -m repro.bench --serve 127.0.0.1:7000 --jobs 0     # server
    python -m repro.bench fig5 --connect 127.0.0.1:7000       # client

Exit codes: 0 success; 2 usage error; 3 when any sweep cell was
quarantined as a typed abort (the CSV is incomplete — re-run with
``--resume`` after fixing the cause); 4 under ``--strict`` when any cell
degraded KNEM health mid-measurement; 5 when ``--verify-journal`` found
corrupt or torn records (all recoverable by ``--resume`` recompute).
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.experiments import (
    EXPERIMENTS,
    MACHINE_RANKS,
    PAPER_EXPECTATIONS,
    table1,
)
from repro.bench.report import render_table1

__all__ = ["main"]

#: exit codes (module constants so tests and CI scripts share them)
EXIT_OK = 0
EXIT_ABORTED = 3
EXIT_DEGRADED = 4
EXIT_JOURNAL_DAMAGED = 5


def _print_result(result, csv: bool, verbose: bool) -> None:
    print(result.render())
    if verbose and result.stats is not None:
        print(result.stats.render())
    print()
    if csv:
        print(f"wrote {result.to_csv()}")


def _result_exit(result, strict: bool) -> int:
    """Worst exit code one experiment result warrants (0 when healthy)."""
    stats = result.stats
    aborted = len(getattr(result, "aborted", {})) or (
        stats.cells_aborted if stats else 0)
    if aborted:
        for key, abort in sorted(getattr(result, "aborted", {}).items()):
            print(f"ABORTED {result.experiment}/{result.machine}: "
                  f"{key}: {abort.describe()}", file=sys.stderr)
        return EXIT_ABORTED
    if strict and stats is not None and stats.cells_degraded:
        print(f"DEGRADED {result.experiment}/{result.machine}: "
              f"{stats.cells_degraded} cell(s) ran with degraded KNEM "
              f"health (--strict)", file=sys.stderr)
        return EXIT_DEGRADED
    return EXIT_OK


def _combos(name: str, machine: str | None) -> list[tuple[str, str | None]]:
    """The (experiment, machine) pairs one experiment name expands to."""
    _fn, takes_machine = EXPERIMENTS[name]
    machines = [machine] if machine else (
        list(MACHINE_RANKS) if takes_machine else [None])
    return [(name, m) for m in machines]


def _run_one(name: str, machine: str | None, scale: str, csv: bool,
             resume: bool, jobs: int, verbose: bool, strict: bool,
             service: str | None = None) -> int:
    fn, takes_machine = EXPERIMENTS[name]
    status = EXIT_OK
    for _name, m in _combos(name, machine):
        result = (fn(m, scale=scale, resume=resume, jobs=jobs,
                     service=service)
                  if takes_machine else
                  fn(scale=scale, resume=resume, jobs=jobs, service=service))
        _print_result(result, csv, verbose)
        status = max(status, _result_exit(result, strict))
    return status


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's figures and tables on the "
                    "simulated machines.",
    )
    parser.add_argument(
        "experiment", nargs="?",
        choices=sorted(EXPERIMENTS) + ["table1", "all"],
        help="which paper experiment to run (omit with --verify-journal)",
    )
    parser.add_argument("--machine", choices=sorted(MACHINE_RANKS),
                        help="restrict to one machine (default: all that apply)")
    parser.add_argument("--scale", choices=("full", "bench", "smoke"),
                        default="bench",
                        help="grid/iteration sizing (default: bench)")
    parser.add_argument("--sample", type=int, default=None,
                        help="table1: simulate every Nth ASP iteration")
    parser.add_argument("--csv", action="store_true",
                        help="also write results/<experiment>_<machine>.csv")
    parser.add_argument(
        "--resume", action="store_true",
        help="journal each completed sweep cell to a checkpoint next to the "
             "CSV and skip already-journaled cells when restarting an "
             "interrupted run (sweep experiments only)")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (0 = one per CPU).  A single experiment fans "
             "its (stack, size) cells across workers; 'all' fans whole "
             "(experiment, machine) combos instead.  Output is byte-"
             "identical to --jobs 1 (default)")
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail (exit 4) when any cell ran with degraded KNEM "
             "health (the recovery ladder fired mid-measurement)")
    parser.add_argument(
        "--verify-journal", metavar="PATH", default=None,
        help="inspect a checkpoint journal: verify per-record checksums and "
             "report corrupt/torn records, without running anything "
             "(exit 5 when damage is found; --resume recovers it)")
    parser.add_argument(
        "--profile", metavar="DIR", default=None,
        help="run every sweep cell under cProfile and write one pstats "
             "dump per cell into DIR (created if missing; inspect with "
             "``python -m pstats``).  Forces serial execution: profiles "
             "from forked pool workers would land in the wrong process")
    parser.add_argument(
        "--serve", metavar="ADDR", default=None,
        help="run a persistent sweep server on ADDR (host:port, port 0 = "
             "ephemeral, or a unix socket path) instead of an experiment; "
             "--jobs sizes its warm pool, --cache/--server-log configure "
             "the result cache and log")
    parser.add_argument(
        "--connect", metavar="ADDR", default=None,
        help="obtain sweep cells from the sweep server at ADDR instead of "
             "computing in-process (the server's cache and warm pool are "
             "shared across clients; output stays byte-identical)")
    parser.add_argument(
        "--cache", metavar="PATH", default=None,
        help="with --serve: result-cache journal path (default: "
             "service_cache.checkpoint.json in the results dir; "
             "'none' = memory only)")
    parser.add_argument(
        "--server-log", metavar="PATH", default=None,
        help="with --serve: append server log lines to PATH")
    parser.add_argument(
        "--verbose", action="store_true",
        help="print simulator counters (events, resumes, peak heap) and "
             "events/sec per experiment")
    parser.add_argument(
        "--vector", action="store_true",
        help="enable the vectorized fast paths (event-cohort dispatch + "
             "numpy flow updates; equivalent to REPRO_VECTOR=1).  Output "
             "is byte-identical to the scalar paths — only wall-clock "
             "changes")
    args = parser.parse_args(argv)
    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    if args.serve is not None:
        if args.experiment is not None or args.connect is not None:
            parser.error("--serve runs a server; do not also name an "
                         "experiment or --connect")
        from repro.service.server import serve
        from repro.service.store import default_cache_path

        cache = args.cache
        if cache is None:
            cache = default_cache_path()
        elif cache == "none":
            cache = None
        log = open(args.server_log, "a") if args.server_log else None
        try:
            return serve(args.serve, jobs=args.jobs, cache_path=cache,
                         log=log)
        finally:
            if log is not None:
                log.close()
    if args.verify_journal is not None:
        if args.experiment is not None:
            parser.error("--verify-journal inspects a file; "
                         "do not also name an experiment")
        from repro.bench.harness import verify_journal

        report = verify_journal(args.verify_journal)
        print(report.render())
        return EXIT_OK if report.ok else EXIT_JOURNAL_DAMAGED
    if args.experiment is None:
        parser.error("an experiment name is required "
                     "(or use --verify-journal PATH)")
    if args.vector:
        # Both the in-process flag and the environment: forked warm-pool
        # workers inherit either, spawned ones only the environment.
        import os

        from repro import vector

        os.environ["REPRO_VECTOR"] = "1"
        vector.set_enabled(True)
    if args.profile is not None:
        import os

        from repro.bench import harness

        os.makedirs(args.profile, exist_ok=True)
        harness.set_profile_dir(args.profile)
        if args.jobs != 1:
            print("[profile] forcing --jobs 1 (per-cell profiles need "
                  "in-process cells)", file=sys.stderr)
            args.jobs = 1

    if args.experiment == "table1":
        if args.resume:
            parser.error("--resume applies to sweep experiments, not table1")
        if args.connect:
            parser.error("--connect applies to sweep experiments, not table1")
        for machine in [args.machine] if args.machine else ["zoot", "ig"]:
            if machine not in ("zoot", "ig"):
                parser.error("table1 runs on zoot or ig")
            rows = table1(machine, scale=args.scale, sample=args.sample)
            print(render_table1(machine, rows,
                                paper=PAPER_EXPECTATIONS["table1"][machine]))
            print()
        return EXIT_OK

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    status = EXIT_OK
    if args.experiment == "all" and args.jobs != 1:
        # Fan whole (experiment, machine) combos; each worker runs its cells
        # serially, so the machine is never oversubscribed.  Results print
        # in deterministic (sorted-name, machine-list) order and CSVs are
        # written by this parent process.
        from repro.bench.executor import run_experiments

        kwargs = {"scale": args.scale, "resume": args.resume, "jobs": 1,
                  "service": args.connect}
        specs = [(name, m, kwargs)
                 for exp in names
                 for name, m in _combos(exp, args.machine)]
        for result in run_experiments(specs, args.jobs):
            _print_result(result, args.csv, args.verbose)
            status = max(status, _result_exit(result, args.strict))
        return status
    for name in names:
        status = max(status, _run_one(
            name, args.machine, args.scale, args.csv, args.resume,
            args.jobs, args.verbose, args.strict, args.connect))
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
