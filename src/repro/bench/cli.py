"""Command-line entry point: ``python -m repro.bench <experiment>``.

Examples::

    python -m repro.bench fig5 --machine dancer --scale bench
    python -m repro.bench fig4 --scale full
    python -m repro.bench table1 --machine zoot --sample 64
    python -m repro.bench all --scale smoke
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.experiments import (
    EXPERIMENTS,
    MACHINE_RANKS,
    PAPER_EXPECTATIONS,
    table1,
)
from repro.bench.report import render_table1

__all__ = ["main"]


def _run_one(name: str, machine: str | None, scale: str, csv: bool,
             resume: bool) -> None:
    fn, takes_machine = EXPERIMENTS[name]
    machines = [machine] if machine else (
        list(MACHINE_RANKS) if takes_machine else [None])
    for m in machines:
        result = (fn(m, scale=scale, resume=resume) if takes_machine
                  else fn(scale=scale, resume=resume))
        print(result.render())
        print()
        if csv:
            print(f"wrote {result.to_csv()}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's figures and tables on the "
                    "simulated machines.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["table1", "all"],
        help="which paper experiment to run",
    )
    parser.add_argument("--machine", choices=sorted(MACHINE_RANKS),
                        help="restrict to one machine (default: all that apply)")
    parser.add_argument("--scale", choices=("full", "bench", "smoke"),
                        default="bench",
                        help="grid/iteration sizing (default: bench)")
    parser.add_argument("--sample", type=int, default=None,
                        help="table1: simulate every Nth ASP iteration")
    parser.add_argument("--csv", action="store_true",
                        help="also write results/<experiment>_<machine>.csv")
    parser.add_argument(
        "--resume", action="store_true",
        help="journal each completed sweep cell to a checkpoint next to the "
             "CSV and skip already-journaled cells when restarting an "
             "interrupted run (sweep experiments only)")
    args = parser.parse_args(argv)

    if args.experiment == "table1":
        if args.resume:
            parser.error("--resume applies to sweep experiments, not table1")
        for machine in [args.machine] if args.machine else ["zoot", "ig"]:
            if machine not in ("zoot", "ig"):
                parser.error("table1 runs on zoot or ig")
            rows = table1(machine, scale=args.scale, sample=args.sample)
            print(render_table1(machine, rows,
                                paper=PAPER_EXPECTATIONS["table1"][machine]))
            print()
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        _run_one(name, args.machine, args.scale, args.csv, args.resume)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
