"""Pure chunk planning and accounting for the warm-pool sweep executor.

The executor's process shell (fork, queues, liveness polling) lives in
:mod:`repro.bench.executor`; every scheduling *decision* lives here, in a
plain object with no processes, clocks, or I/O, so the exactly-once
delivery invariants are directly checkable by the Hypothesis suite in
tests/bench/test_chunking.py:

- every cell is executed exactly once (results are first-wins; duplicate
  reports are rejected),
- no cell is lost or duplicated when a chunk's worker dies mid-chunk
  (``fail`` requeues exactly the unrecorded remainder),
- the merged result set is independent of completion order.

Chunks are sized by a measured per-cell cost estimate: each cell starts
with a static estimate (the executor seeds message size — simulated event
counts scale with segment count), and completed cells feed measured wall
seconds back per *cost class* (the executor keys classes by stack name),
scaling the estimates of still-queued cells.  Cheap cells therefore batch
large and expensive cells batch small, and the target chunk cost shrinks
as the queue drains so the tail stays load-balanced.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Hashable, Optional, Sequence

from repro.errors import BenchmarkError

__all__ = ["Chunk", "ChunkScheduler"]


@dataclass(frozen=True)
class Chunk:
    """One batch of cell indices handed to a single worker."""

    id: int
    cells: tuple[int, ...]


class ChunkScheduler:
    """Exactly-once chunked dispatch over ``n`` cells.

    ``costs`` are positive relative cost estimates (one per cell);
    ``classes`` optionally groups cells whose measured costs should inform
    each other (default: every cell is its own class).  ``oversubscribe``
    is the number of chunks each worker should see over a full sweep —
    larger values give finer load balancing at more queue traffic.
    """

    #: EWMA weight of a new cost measurement against the running ratio.
    MEASURE_ALPHA = 0.5
    #: hard cap on cells per chunk (keeps worker-death blast radius small)
    MAX_CHUNK = 64

    def __init__(self, costs: Sequence[float], workers: int,
                 classes: Optional[Sequence[Hashable]] = None,
                 oversubscribe: int = 4):
        if workers < 1:
            raise BenchmarkError(f"chunk scheduler needs >= 1 worker, got {workers}")
        if oversubscribe < 1:
            raise BenchmarkError(
                f"oversubscribe must be >= 1, got {oversubscribe}")
        n = len(costs)
        if classes is None:
            classes = list(range(n))
        elif len(classes) != n:
            raise BenchmarkError("one cost class required per cell")
        self._base = [max(float(c), 1e-9) for c in costs]
        self._classes = list(classes)
        self._workers = workers
        self._oversubscribe = oversubscribe
        #: measured-over-estimated cost ratio per class (EWMA)
        self._ratio: dict[Hashable, float] = {}
        self._queued: deque[int] = deque(range(n))
        self._outstanding: dict[int, tuple[int, ...]] = {}
        self._results: dict[int, Any] = {}
        self._next_chunk_id = 0
        #: lifetime diagnostics
        self.chunks_issued = 0
        self.chunks_failed = 0
        self.cells_requeued = 0
        self.duplicates_dropped = 0

    # -- state ------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        return len(self._base)

    @property
    def finished(self) -> bool:
        """True once every cell has a recorded result."""
        return len(self._results) == len(self._base)

    @property
    def idle(self) -> bool:
        """True when nothing is queued or in flight (≠ finished: a failed
        sweep can drain with cells unrecorded)."""
        return not self._queued and not self._outstanding

    def results(self) -> dict[int, Any]:
        """Recorded results by cell index (a copy)."""
        return dict(self._results)

    def _estimate(self, cell: int) -> float:
        return self._base[cell] * self._ratio.get(self._classes[cell], 1.0)

    # -- dispatch ---------------------------------------------------------
    def next_chunk(self) -> Optional[Chunk]:
        """Carve the next batch off the queue (None when it is empty).

        The target chunk cost is the remaining queued cost split across
        ``workers * oversubscribe`` hand-outs, so chunks shrink toward the
        tail; at least one cell is always taken.
        """
        queued = self._queued
        if not queued:
            return None
        remaining = sum(self._estimate(c) for c in queued)
        target = remaining / (self._workers * self._oversubscribe)
        cells = [queued.popleft()]
        cost = self._estimate(cells[0])
        while queued and len(cells) < self.MAX_CHUNK:
            nxt = self._estimate(queued[0])
            if cost + nxt > target:
                break
            cells.append(queued.popleft())
            cost += nxt
        chunk = Chunk(self._next_chunk_id, tuple(cells))
        self._next_chunk_id += 1
        self._outstanding[chunk.id] = chunk.cells
        self.chunks_issued += 1
        return chunk

    # -- results ----------------------------------------------------------
    def record(self, cell: int, value: Any) -> bool:
        """Record one cell result; False (dropped) if it already has one.

        First-wins: a cell requeued after a worker death may be reported
        both by the replacement worker and by a late message the dead
        worker flushed before dying — only the first report lands, so the
        caller journals each cell exactly once.
        """
        if not 0 <= cell < len(self._base):
            raise BenchmarkError(f"unknown cell index {cell}")
        if cell in self._results:
            self.duplicates_dropped += 1
            return False
        self._results[cell] = value
        return True

    def observe(self, cell: int, measured: float) -> None:
        """Feed one measured wall cost back into the cell's cost class."""
        if measured <= 0:
            return
        klass = self._classes[cell]
        ratio = measured / self._base[cell]
        prior = self._ratio.get(klass)
        self._ratio[klass] = ratio if prior is None else (
            prior + self.MEASURE_ALPHA * (ratio - prior))

    # -- chunk lifecycle --------------------------------------------------
    def complete(self, chunk_id: int) -> tuple[int, ...]:
        """Close a chunk whose worker reported it done.

        Any cells the worker never reported (a lost message is a protocol
        bug, but exactly-once must not hinge on its absence) are requeued
        and returned.
        """
        return self._close(chunk_id, failed=False)

    def fail(self, chunk_id: int) -> tuple[int, ...]:
        """Close a chunk whose worker died; requeue the unrecorded rest."""
        self.chunks_failed += 1
        return self._close(chunk_id, failed=True)

    def _close(self, chunk_id: int, failed: bool) -> tuple[int, ...]:
        cells = self._outstanding.pop(chunk_id, None)
        if cells is None:
            raise BenchmarkError(f"chunk {chunk_id} is not outstanding")
        lost = tuple(c for c in cells if c not in self._results)
        for c in lost:
            self._queued.append(c)
        self.cells_requeued += len(lost)
        return lost
