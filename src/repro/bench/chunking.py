"""Pure chunk planning and accounting for the warm-pool sweep executor.

The executor's process shell (fork, queues, liveness polling) lives in
:mod:`repro.bench.executor`; every scheduling *decision* lives here, in a
plain object with no processes, clocks, or I/O, so the exactly-once
delivery invariants are directly checkable by the Hypothesis suite in
tests/bench/test_chunking.py:

- every cell is executed exactly once (results are first-wins; duplicate
  reports are rejected),
- no cell is lost or duplicated when a chunk's worker dies mid-chunk
  (``fail`` requeues exactly the unrecorded remainder),
- the merged result set is independent of completion order.

Chunks are sized by a measured per-cell cost estimate: each cell starts
with a static estimate (the executor seeds message size — simulated event
counts scale with segment count), and completed cells feed measured wall
seconds back per *cost class* (the executor keys classes by stack name),
scaling the estimates of still-queued cells.  Cheap cells therefore batch
large and expensive cells batch small, and the target chunk cost shrinks
as the queue drains so the tail stays load-balanced.

**The quarantine ladder.**  A cell whose execution deterministically
kills its worker (a "poison" cell) would otherwise be requeued forever,
respawning workers in an infinite loop.  Failures therefore climb a
ladder:

1. *batch* — cells run in cost-sized chunks (the fast path);
2. *isolate* — a cell that was in a failed chunk is marked suspect and is
   re-issued **alone**, so a poison cell cannot burn its chunkmates'
   retry budgets (the blast radius of one death shrinks to one cell);
3. *quarantine* — after ``retry_limit`` worker deaths the cell is not
   requeued again: a typed :class:`CellAborted` is recorded as its result
   (exactly-once still holds — the abort *is* the result), surfaced by
   the executor in ``SweepStats`` and the CLI exit code.

``retry_limit=None`` disables steps 2-3 and restores the unbounded
pre-quarantine behaviour (tests use it to drive the pure exactly-once
core through arbitrarily many deaths).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Hashable, Optional, Sequence

from repro.errors import BenchmarkError

__all__ = ["Chunk", "CellAborted", "ChunkScheduler", "DEFAULT_RETRY_LIMIT"]

#: worker deaths one cell may cause before it is quarantined
DEFAULT_RETRY_LIMIT = 3


@dataclass(frozen=True)
class CellAborted:
    """Typed result of a quarantined cell (picklable, never a float).

    Recorded in place of a measurement when a cell exhausted its retry
    budget; carries enough to explain *why* in reports and trace events.
    """

    cell: int
    deaths: int
    reason: str = "worker died repeatedly"

    def describe(self) -> str:
        return (f"cell {self.cell} aborted after {self.deaths} worker "
                f"death(s): {self.reason}")


@dataclass(frozen=True)
class Chunk:
    """One batch of cell indices handed to a single worker."""

    id: int
    cells: tuple[int, ...]


class ChunkScheduler:
    """Exactly-once chunked dispatch over ``n`` cells.

    ``costs`` are positive relative cost estimates (one per cell);
    ``classes`` optionally groups cells whose measured costs should inform
    each other (default: every cell is its own class).  ``oversubscribe``
    is the number of chunks each worker should see over a full sweep —
    larger values give finer load balancing at more queue traffic.
    ``retry_limit`` is the per-cell worker-death budget of the quarantine
    ladder (``None`` disables quarantine: every death requeues forever).
    """

    #: EWMA weight of a new cost measurement against the running ratio.
    MEASURE_ALPHA = 0.5
    #: hard cap on cells per chunk (keeps worker-death blast radius small)
    MAX_CHUNK = 64

    def __init__(self, costs: Sequence[float], workers: int,
                 classes: Optional[Sequence[Hashable]] = None,
                 oversubscribe: int = 4,
                 retry_limit: Optional[int] = DEFAULT_RETRY_LIMIT,
                 chunk_base: int = 0):
        if workers < 1:
            raise BenchmarkError(f"chunk scheduler needs >= 1 worker, got {workers}")
        if oversubscribe < 1:
            raise BenchmarkError(
                f"oversubscribe must be >= 1, got {oversubscribe}")
        if retry_limit is not None and retry_limit < 1:
            raise BenchmarkError(
                f"retry_limit must be >= 1 or None, got {retry_limit}")
        n = len(costs)
        if classes is None:
            classes = list(range(n))
        elif len(classes) != n:
            raise BenchmarkError("one cost class required per cell")
        self._base = [max(float(c), 1e-9) for c in costs]
        self._classes = list(classes)
        self._workers = workers
        self._oversubscribe = oversubscribe
        self._retry_limit = retry_limit
        #: measured-over-estimated cost ratio per class (EWMA)
        self._ratio: dict[Hashable, float] = {}
        self._queued: deque[int] = deque(range(n))
        self._outstanding: dict[int, tuple[int, ...]] = {}
        self._results: dict[int, Any] = {}
        # chunk_base offsets ids so schedulers sharing one persistent
        # pool (the sweep service) never issue the same chunk id twice.
        self._next_chunk_id = chunk_base
        #: worker deaths charged to each cell (unrecorded when its chunk
        #: failed); reaching ``retry_limit`` quarantines the cell.
        self._deaths: dict[int, int] = {}
        #: cells that were in a failed chunk: issued as singleton chunks
        self._suspect: set[int] = set()
        #: quarantined cells not yet drained by the executor
        self._fresh_aborts: list[int] = []
        #: lifetime diagnostics
        self.chunks_issued = 0
        self.chunks_failed = 0
        self.cells_requeued = 0
        self.duplicates_dropped = 0
        self.cells_aborted = 0
        self.chunks_quarantined = 0

    # -- state ------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        return len(self._base)

    @property
    def finished(self) -> bool:
        """True once every cell has a recorded result."""
        return len(self._results) == len(self._base)

    @property
    def idle(self) -> bool:
        """True when nothing is queued or in flight (≠ finished: a failed
        sweep can drain with cells unrecorded)."""
        return not self._queued and not self._outstanding

    def results(self) -> dict[int, Any]:
        """Recorded results by cell index (a copy)."""
        return dict(self._results)

    def _estimate(self, cell: int) -> float:
        return self._base[cell] * self._ratio.get(self._classes[cell], 1.0)

    # -- dispatch ---------------------------------------------------------
    def next_chunk(self) -> Optional[Chunk]:
        """Carve the next batch off the queue (None when it is empty).

        The target chunk cost is the remaining queued cost split across
        ``workers * oversubscribe`` hand-outs, so chunks shrink toward the
        tail; at least one cell is always taken.  Suspect cells (ladder
        step 2 — they were in a failed chunk) are issued **alone**, so a
        poison cell never takes fresh chunkmates down with it.
        """
        queued = self._queued
        if not queued:
            return None
        cells = [queued.popleft()]
        if cells[0] not in self._suspect:
            cost = self._estimate(cells[0])
            remaining = cost + sum(self._estimate(c) for c in queued)
            target = remaining / (self._workers * self._oversubscribe)
            while queued and len(cells) < self.MAX_CHUNK:
                if queued[0] in self._suspect:
                    break
                nxt = self._estimate(queued[0])
                if cost + nxt > target:
                    break
                cells.append(queued.popleft())
                cost += nxt
        chunk = Chunk(self._next_chunk_id, tuple(cells))
        self._next_chunk_id += 1
        self._outstanding[chunk.id] = chunk.cells
        self.chunks_issued += 1
        return chunk

    # -- results ----------------------------------------------------------
    def record(self, cell: int, value: Any) -> bool:
        """Record one cell result; False (dropped) if it already has one.

        First-wins: a cell requeued after a worker death may be reported
        both by the replacement worker and by a late message the dead
        worker flushed before dying — only the first report lands, so the
        caller journals each cell exactly once.
        """
        if not 0 <= cell < len(self._base):
            raise BenchmarkError(f"unknown cell index {cell}")
        if cell in self._results:
            self.duplicates_dropped += 1
            return False
        self._results[cell] = value
        return True

    def observe(self, cell: int, measured: float) -> None:
        """Feed one measured wall cost back into the cell's cost class."""
        if measured <= 0:
            return
        klass = self._classes[cell]
        ratio = measured / self._base[cell]
        prior = self._ratio.get(klass)
        self._ratio[klass] = ratio if prior is None else (
            prior + self.MEASURE_ALPHA * (ratio - prior))

    # -- chunk lifecycle --------------------------------------------------
    def complete(self, chunk_id: int) -> tuple[int, ...]:
        """Close a chunk whose worker reported it done.

        Any cells the worker never reported (a lost message is a protocol
        bug, but exactly-once must not hinge on its absence) are requeued
        and returned.  Recorded cells shed their suspect mark — the cell
        ran to completion, so its earlier chunk's death was not its fault.
        """
        cells = self._outstanding.pop(chunk_id, None)
        if cells is None:
            raise BenchmarkError(f"chunk {chunk_id} is not outstanding")
        lost = []
        for c in cells:
            if c in self._results:
                self._suspect.discard(c)
                self._deaths.pop(c, None)
            else:
                lost.append(c)
                self._queued.append(c)
        self.cells_requeued += len(lost)
        return tuple(lost)

    def fail(self, chunk_id: int) -> tuple[int, ...]:
        """Close a chunk whose worker died; requeue the unrecorded rest.

        Each unrecorded cell is charged one worker death and climbs the
        quarantine ladder: first failure marks it suspect (it re-runs
        alone), the ``retry_limit``-th failure quarantines it — a typed
        :class:`CellAborted` is recorded as its result and the cell is
        *not* requeued (drain with :meth:`drain_aborted`).  Returns only
        the requeued cells.

        The chunk must actually be outstanding; a double-``fail`` on the
        same chunk id raises *before* any counter moves (a late liveness
        poll racing a pipe EOF must not double-count ``cells_requeued``
        or double-charge retry budgets).
        """
        cells = self._outstanding.pop(chunk_id, None)
        if cells is None:
            raise BenchmarkError(f"chunk {chunk_id} is not outstanding")
        self.chunks_failed += 1
        requeued = []
        aborted = []
        for c in cells:
            if c in self._results:
                continue
            deaths = self._deaths.get(c, 0) + 1
            self._deaths[c] = deaths
            if self._retry_limit is not None and deaths >= self._retry_limit:
                self._results[c] = CellAborted(cell=c, deaths=deaths)
                self._fresh_aborts.append(c)
                aborted.append(c)
            else:
                if self._retry_limit is not None:
                    self._suspect.add(c)
                requeued.append(c)
        # Requeue at the *front*, preserving cell order: a suspect cell
        # retries (alone) before fresh work, so a poison cell hits its
        # budget early instead of after the whole queue drains.
        self._queued.extendleft(reversed(requeued))
        self.cells_requeued += len(requeued)
        if aborted:
            self.chunks_quarantined += 1
            self.cells_aborted += len(aborted)
        return tuple(requeued)

    def drain_aborted(self) -> list[tuple[int, CellAborted]]:
        """Quarantined cells recorded since the last drain (in order).

        The executor yields these as typed results so the harness can
        surface them in ``SweepStats`` and skip them in the journal.
        """
        fresh = [(c, self._results[c]) for c in self._fresh_aborts]
        self._fresh_aborts.clear()
        return fresh
