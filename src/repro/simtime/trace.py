"""Structured tracing for simulations.

The tracer is deliberately tiny: subsystems call ``tracer.emit(category,
**fields)`` and tests/benchmarks inspect the recorded stream.  Tracing is off
by default so the hot simulation loops pay only a truthiness check.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace event: a timestamp, a category, and free-form fields."""

    time: float
    category: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __getattr__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise AttributeError(name) from None


class Tracer:
    """Collects :class:`TraceRecord` objects and per-category counters.

    ``counters`` are always maintained (cheap); full records only when
    ``enabled`` is True.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 enabled: bool = False):
        self._clock = clock or (lambda: 0.0)
        self.enabled = enabled
        self.records: list[TraceRecord] = []
        self.counters: Counter[str] = Counter()

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulator's clock (done by Machine assembly)."""
        self._clock = clock

    def emit(self, category: str, **fields: Any) -> None:
        self.counters[category] += 1
        if self.enabled:
            self.records.append(TraceRecord(self._clock(), category, fields))

    def tick(self, category: str) -> None:
        """Count-only fast path for hot call sites.

        Per-message/per-copy sites guard with ``if tracer.enabled:
        tracer.emit(...) else: tracer.tick(...)`` so a disabled tracer never
        pays for building the kwargs dict — the dominant cost of
        :meth:`emit` in tight simulation loops — while the always-on
        counters stay exact.
        """
        self.counters[category] += 1

    def select(self, category: str) -> Iterator[TraceRecord]:
        """Iterate records of one category (requires ``enabled``)."""
        return (r for r in self.records if r.category == category)

    def count(self, category: str) -> int:
        return self.counters[category]

    def reset(self) -> None:
        self.records.clear()
        self.counters.clear()
