"""Event loop core: :class:`Event`, :class:`Timeout`, :class:`Simulator`.

Semantics follow the classic discrete-event pattern:

- An :class:`Event` is *pending* until someone calls :meth:`Event.succeed`
  or :meth:`Event.fail`; triggering enqueues it so its callbacks run at the
  current simulation time (events never run callbacks synchronously, which
  keeps process resumption ordering deterministic).
- The :class:`Simulator` pops events in ``(time, sequence)`` order, so two
  events scheduled for the same instant are processed in scheduling order.
- Failures (:meth:`Event.fail`) propagate into any process waiting on the
  event; an unwaited failure surfaces when the event is processed, so errors
  cannot be silently dropped.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Optional

from repro import vector as _vector
from repro.errors import DeadlockError, SimulationError

__all__ = ["PENDING", "Event", "Timeout", "Simulator"]


class _Pending:
    """Sentinel for "event not yet triggered"."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<PENDING>"


PENDING = _Pending()


class Event:
    """A one-shot waitable with a value or an exception.

    Callbacks are invoked with the event itself when the simulator processes
    the event, in registration order.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled", "_defused",
                 "_abandoned", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._defused = False
        #: set when the process that was waiting on this event is forcibly
        #: unwound (kill/throw) while the event is still queued inside a
        #: primitive; Semaphore/Channel skip abandoned waiters at hand-off
        #: so the token or item is not silently lost
        self._abandoned = False
        self.name = name

    # -- state -----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed`/:meth:`fail` has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event left the queue)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError(f"event {self!r} not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception (once triggered)."""
        if self._value is PENDING:
            raise SimulationError(f"event {self!r} has no value yet")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Mark the event successful and enqueue callback processing."""
        if self._value is not PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = value
        self._ok = True
        self.sim._enqueue(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Mark the event failed; waiters will see ``exc`` re-raised."""
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self._value is not PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = exc
        self._ok = False
        self.sim._enqueue(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn(event)``; runs immediately-ish if already processed."""
        if self.callbacks is None:
            # Already processed: schedule a fresh zero-delay dispatch so the
            # caller still gets asynchronous (deterministic) notification.
            # ``fn`` always receives the *original* event, so late waiters
            # observe the same value/failure early waiters did.
            proxy = Event(self.sim, name=f"{self.name}:late")
            proxy.callbacks.append(lambda _e: fn(self))
            if self._ok:
                proxy.succeed(self._value)
            else:
                # The failure already surfaced (or was defused) when the
                # original was processed; the proxy's copy is pre-defused so
                # it is not reported a second time, but ``fn`` still sees a
                # failed event and can re-raise it into its process.
                proxy._defused = True
                proxy.fail(self._value)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        label = self.name or self.__class__.__name__
        return f"<{label} {state} at t={self.sim.now:.9f}>"


class Timeout(Event):
    """An event that succeeds ``delay`` seconds after creation.

    The constructor is the hottest allocation site of a sweep (every
    simulated delay is one Timeout), so it inlines ``Event.__init__`` and
    ``Simulator._enqueue`` and skips the old eager ``timeout(<delay>)``
    name formatting — diagnostics fall back to the class name instead.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 name: str = ""):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        # Inlined Event.__init__: a Timeout is born triggered-successful.
        # ``_scheduled``/``_defused``/``_abandoned`` stay deliberately
        # unset: a Timeout cannot re-enter ``_enqueue`` (succeed/fail raise
        # "already triggered" first), ``_defused`` is only read behind an
        # ``_ok is False`` guard, and ``_abandoned`` is only read on the
        # waiter events the primitives create themselves.  Writes to the
        # unset slots (kill/throw defusal) still work; a read would raise
        # loudly instead of masking a broken assumption.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self.name = name
        self.delay = delay
        # Inlined _enqueue (a fresh Timeout can never be double-scheduled).
        sim._seq += 1
        heap = sim._heap
        heappush(heap, (sim.now + delay, sim._seq, self))
        if len(heap) > sim.peak_heap:
            sim.peak_heap = len(heap)


class Simulator:
    """Deterministic discrete-event scheduler.

    >>> sim = Simulator()
    >>> done = []
    >>> def prog():
    ...     yield Timeout(sim, 1.5)
    ...     done.append(sim.now)
    >>> _ = sim.process(prog())
    >>> sim.run()
    >>> done
    [1.5]
    """

    def __init__(self, cohort: Optional[bool] = None) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        # Live processes (for deadlock diagnostics); maintained by Process.
        self._live_processes: dict[int, Any] = {}
        #: events popped and dispatched so far (maintained by step()/run())
        self.events_processed = 0
        #: generator resumptions so far (maintained by Process._resume)
        self.process_resumes = 0
        #: high-water mark of the event queue
        self.peak_heap = 0
        #: cohort dispatch: drain every event ready at the same instant as
        #: one batch (the vectorized fast path; ``None`` = REPRO_VECTOR
        #: default).  Dispatch order, counters, and failure surfacing are
        #: identical to the scalar loop — see TestCohortDispatch.
        self.cohort = _vector.enabled() if cohort is None else cohort
        #: cohort batches dispatched and the largest batch seen (cohort
        #: mode only; the scalar loop leaves them at zero)
        self.cohorts_dispatched = 0
        self.max_cohort = 0

    # -- queue plumbing ---------------------------------------------------
    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            raise SimulationError(f"event {event!r} already scheduled")
        event._scheduled = True
        self._seq += 1
        heap = self._heap
        heapq.heappush(heap, (self.now + delay, self._seq, event))
        if len(heap) > self.peak_heap:
            self.peak_heap = len(heap)

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` simulated seconds; returns the event."""
        ev = Timeout(self, delay, name="schedule")
        ev.add_callback(lambda _e: fn())
        return ev

    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered event bound to this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a timeout event that fires after ``delay`` seconds."""
        return Timeout(self, delay, value=value)

    def process(self, gen: Generator, name: str = "",
                daemon: bool = False, owner: Optional[int] = None) -> "Process":
        """Start a generator as a simulated process (see :class:`Process`).

        ``daemon`` processes (e.g. per-rank progress engines) may still be
        blocked when the event queue drains without that counting as a
        deadlock.  ``owner`` tags the process with the world rank it acts
        for, so a rank crash can take its in-flight protocol children down
        with it.
        """
        from repro.simtime.process import Process

        return Process(self, gen, name=name, daemon=daemon, owner=owner)

    # -- main loop ---------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event (advancing ``now``)."""
        if not self._heap:
            raise SimulationError("step() on an empty event queue")
        t, _seq, event = heapq.heappop(self._heap)
        if t < self.now - 1e-18:
            raise SimulationError("event queue went backwards in time")
        self.now = t
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None
        for cb in callbacks:
            cb(event)
        if event._ok is False and not event._defused:
            # A failure nobody waited on: surface it instead of losing it.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or ``now`` would exceed ``until``.

        Raises :class:`~repro.errors.DeadlockError` if the queue drains while
        simulated processes are still blocked (no ``until`` given).
        """
        if until is not None:
            if until < self.now:
                raise SimulationError(
                    f"run(until={until}) is in the past (now={self.now})")
            while self._heap:
                if self._heap[0][0] > until:
                    break
                self.step()
            self.now = until
            return
        # Hot loop: inlined step() without the per-event monotonicity check
        # (enqueue can only schedule at >= now, so the heap cannot go
        # backwards) or attribute re-lookups.  This is where whole sweeps
        # spend their time; see benchmarks/bench_simcore.py.
        if self.cohort:
            self._run_cohort()
        else:
            heap = self._heap
            pop = heapq.heappop
            dispatched = 0
            try:
                while heap:
                    t, _seq, event = pop(heap)
                    dispatched += 1
                    self.now = t
                    callbacks, event.callbacks = event.callbacks, None
                    for cb in callbacks:
                        cb(event)
                    if event._ok is False and not event._defused:
                        # A failure nobody waited on: surface it, don't
                        # lose it.
                        raise event._value
            finally:
                self.events_processed += dispatched
        blocked_procs = sorted(
            (p for p in self._live_processes.values() if not p.daemon),
            key=lambda p: p.name,
        )
        if blocked_procs:
            # Deterministic diagnostics: names are sorted, every process
            # reports the event it is parked on, and the count of distinct
            # pending events is included (see repro.analysis.deadlock for
            # wait-for-graph reconstruction on top of this).
            waiting = {}
            pending_ids = set()
            for p in blocked_procs:
                target = p.waiting_on
                if target is None:
                    waiting[p.name] = ""
                else:
                    waiting[p.name] = target.name or type(target).__name__
                    pending_ids.add(id(target))
            raise DeadlockError(
                [p.name for p in blocked_procs],
                waiting=waiting,
                pending_events=len(pending_ids),
            )

    def _run_cohort(self) -> None:
        """Drain-to-empty loop that dispatches same-instant event cohorts.

        All events already queued at the popped timestamp are drained into
        one batch before any callback runs.  A callback that enqueues a new
        same-instant event gives it a higher sequence number, so it lands in
        a *later* cohort at the same time — exactly where the scalar heap
        loop would dispatch it.  Dispatch order is therefore identical to
        the scalar path; only the heap traffic is batched.  Homogeneous
        cohorts are what the vectorized flow network feeds on: every flow
        completion of one rebalance surfaces in a single batch here.
        """
        heap = self._heap
        pop = heappop
        dispatched = 0
        cohorts = 0
        widest = self.max_cohort
        try:
            while heap:
                entry = pop(heap)
                t = entry[0]
                self.now = t
                if not heap or heap[0][0] != t:
                    # Singleton cohort: dispatch inline, no batch list.
                    event = entry[2]
                    dispatched += 1
                    cohorts += 1
                    callbacks, event.callbacks = event.callbacks, None
                    for cb in callbacks:
                        cb(event)
                    if event._ok is False and not event._defused:
                        raise event._value
                    continue
                cohort = [entry]
                append = cohort.append
                while heap and heap[0][0] == t:
                    append(pop(heap))
                n = len(cohort)
                cohorts += 1
                if n > widest:
                    widest = n
                try:
                    for entry in cohort:
                        event = entry[2]
                        callbacks, event.callbacks = event.callbacks, None
                        for cb in callbacks:
                            cb(event)
                        if event._ok is False and not event._defused:
                            # A failure nobody waited on: surface it,
                            # don't lose it.
                            raise event._value
                except BaseException:
                    # Undispatched cohort members (their callbacks were
                    # not yet swapped out) go back on the heap so a
                    # surfaced failure leaves the same queue state the
                    # scalar loop would (sequence numbers preserved).
                    survivors = [e for e in cohort if e[2].callbacks is not None]
                    for entry in survivors:
                        heappush(heap, entry)
                    dispatched += n - len(survivors)
                    raise
                dispatched += n
        finally:
            self.events_processed += dispatched
            self.cohorts_dispatched += cohorts
            if cohorts and not widest:
                widest = 1  # only singleton cohorts ran
            self.max_cohort = widest

    @property
    def queue_size(self) -> int:
        return len(self._heap)

    @property
    def stats(self) -> dict[str, int]:
        """Cheap always-on counters (``repro.bench --verbose`` prints them)."""
        return {
            "events_processed": self.events_processed,
            "process_resumes": self.process_resumes,
            "peak_heap": self.peak_heap,
        }
