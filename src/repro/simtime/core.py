"""Event loop core: :class:`Event`, :class:`Timeout`, :class:`Simulator`.

Semantics follow the classic discrete-event pattern:

- An :class:`Event` is *pending* until someone calls :meth:`Event.succeed`
  or :meth:`Event.fail`; triggering enqueues it so its callbacks run at the
  current simulation time (events never run callbacks synchronously, which
  keeps process resumption ordering deterministic).
- The :class:`Simulator` pops events in ``(time, sequence)`` order, so two
  events scheduled for the same instant are processed in scheduling order.
- Failures (:meth:`Event.fail`) propagate into any process waiting on the
  event; an unwaited failure surfaces when the event is processed, so errors
  cannot be silently dropped.

Two queue structures back the ``(time, sequence)`` order:

- the **heap** (``_heap``) holds generic triggered events as
  ``(time, seq, event)`` tuples — the classic binary heap, and the only
  structure the scalar oracle path uses;
- the **timer lane** (``_buckets``/``_btimes``, cohort mode only) holds
  :class:`Timeout` events bucketed by exact deadline.  A bucket is a plain
  list in creation order — which *is* sequence order, because ``_seq`` is
  handed out at creation — and ``_btimes`` is a small heap of the distinct
  deadlines.  Expiring a bucket is one dict pop instead of one heap
  transaction per timer, which is where timeout chains and
  ``Job.run(deadline=)`` watchdog re-arms used to spend their time.

Dispatch order is identical in both modes: the cohort loop merges the lane
and the heap by ``(time, seq)``, so the scalar heap remains the bitwise
oracle for the vectorized fast path (see tests/simtime/test_cohort.py).
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Optional

from repro import vector as _vector
from repro.errors import DeadlockError, SimulationError

__all__ = ["PENDING", "Event", "Timeout", "Simulator",
           "install_dispatch_kernel", "installed_dispatch_kernel"]


class _Pending:
    """Sentinel for "event not yet triggered"."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<PENDING>"


PENDING = _Pending()

#: Shared empty callbacks list for freshly created :class:`Timeout` events.
#: Most timeouts never receive a callback (their single waiter rides the
#: ``_pwait`` slot), so allocating a list per timeout is pure overhead.
#: Every append site must treat this sentinel as copy-on-write: replace it
#: with a fresh one-element list instead of mutating it (see
#: :meth:`Event.add_callback` and ``Process._resume``/``_rearm``).  It also
#: doubles as the "fresh, never-registered timeout" marker the fused cohort
#: dispatch uses to take its re-arm fast path.
_NO_CBS: list = []

#: Optional replacement for :meth:`Simulator._run_cohort`, installed by the
#: measured-kernel machinery (:mod:`repro.bench.kernels`).  A kernel is a
#: ``fn(sim, horizon)`` drain loop generated from the same template as the
#: built-in and proven dispatch-equivalent before installation; ``None``
#: (the default, and the fallback whenever receipts are stale) keeps the
#: hand-written loop below.
_DISPATCH_KERNEL: Optional[Callable[["Simulator", Optional[float]], None]] = None


def install_dispatch_kernel(
        fn: Optional[Callable[["Simulator", Optional[float]], None]]) -> None:
    """Install a generated cohort drain loop (``None`` restores built-in)."""
    global _DISPATCH_KERNEL
    _DISPATCH_KERNEL = fn


def installed_dispatch_kernel() -> Optional[Callable]:
    return _DISPATCH_KERNEL


class Event:
    """A one-shot waitable with a value or an exception.

    Callbacks are invoked with the event itself when the simulator processes
    the event, in registration order.  ``_pwait`` is a dedicated slot for
    the common case of exactly one waiter that is a simulated process: the
    dispatch loops fire it *before* the callbacks list (a process re-arms
    into ``_pwait`` only while the list is empty, so this is registration
    order), and the cohort fast path resumes it without a callback
    trampoline.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled", "_defused",
                 "_abandoned", "_pwait", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._defused = False
        #: set when the process that was waiting on this event is forcibly
        #: unwound (kill/throw) while the event is still queued inside a
        #: primitive; Semaphore/Channel skip abandoned waiters at hand-off
        #: so the token or item is not silently lost
        self._abandoned = False
        #: the single waiting Process, when it is the first registration
        self._pwait = None
        self.name = name

    # -- state -----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed`/:meth:`fail` has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event left the queue)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError(f"event {self!r} not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception (once triggered)."""
        if self._value is PENDING:
            raise SimulationError(f"event {self!r} has no value yet")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Mark the event successful and enqueue callback processing."""
        if self._value is not PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = value
        self._ok = True
        self.sim._enqueue(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Mark the event failed; waiters will see ``exc`` re-raised."""
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self._value is not PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = exc
        self._ok = False
        self.sim._enqueue(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn(event)``; runs immediately-ish if already processed."""
        if self.callbacks is None:
            # Already processed: schedule a fresh zero-delay dispatch so the
            # caller still gets asynchronous (deterministic) notification.
            # ``fn`` always receives the *original* event, so late waiters
            # observe the same value/failure early waiters did.
            proxy = Event(self.sim, name=f"{getattr(self, 'name', '')}:late")
            proxy.callbacks.append(lambda _e: fn(self))
            if self._ok:
                proxy.succeed(self._value)
            else:
                # The failure already surfaced (or was defused) when the
                # original was processed; the proxy's copy is pre-defused so
                # it is not reported a second time, but ``fn`` still sees a
                # failed event and can re-raise it into its process.
                proxy._defused = True
                proxy.fail(self._value)
        elif self.callbacks:
            self.callbacks.append(fn)
        else:
            # Empty: may be the shared _NO_CBS sentinel — copy-on-write.
            self.callbacks = [fn]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        label = getattr(self, "name", "") or self.__class__.__name__
        return f"<{label} {state} at t={self.sim.now:.9f}>"


class Timeout(Event):
    """An event that succeeds ``delay`` seconds after creation.

    The constructor is the hottest allocation site of a sweep (every
    simulated delay is one Timeout), so it inlines ``Event.__init__`` and
    ``Simulator._enqueue`` and skips the old eager ``timeout(<delay>)``
    name formatting — diagnostics fall back to the class name instead.

    In cohort mode the timeout goes to the timer lane: appended to the
    bucket for its exact deadline (one dict probe, no heap transaction, no
    per-timer tuple).  ``_lseq`` keeps the global sequence number so mixed
    cohorts merge bitwise-identically with heap events at the same instant.
    """

    __slots__ = ("delay", "_lseq")

    #: Class-level constant shadowing the inherited ``_ok`` slot: a Timeout
    #: is born triggered-successful and can never be failed (``succeed``/
    #: ``fail`` raise "already triggered" before their ``_ok`` write), so
    #: the per-instance store is pure overhead in the hottest allocation
    #: site of a sweep.  The shadowing also makes any future write attempt
    #: fail loudly (AttributeError) instead of silently diverging.
    _ok = True

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 name: str = ""):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        # Inlined Event.__init__: a Timeout is born triggered-successful.
        # ``_scheduled``/``_defused``/``_abandoned`` stay deliberately
        # unset: a Timeout cannot re-enter ``_enqueue`` (succeed/fail raise
        # "already triggered" first), ``_defused`` is only read behind an
        # ``_ok is False`` guard, and ``_abandoned`` is only read on the
        # waiter events the primitives create themselves.  Writes to the
        # unset slots (kill/throw defusal) still work; a read would raise
        # loudly instead of masking a broken assumption.
        self.sim = sim
        self.callbacks = _NO_CBS
        self._value = value
        self._pwait = None
        self.name = name
        self.delay = delay
        sim._seq = seq = sim._seq + 1
        if sim.cohort:
            self._lseq = seq
            t = sim.now + delay
            buckets = sim._buckets
            bucket = buckets.get(t)
            if bucket is None:
                buckets[t] = [self]
                heappush(sim._btimes, t)
            else:
                bucket.append(self)
            # peak_heap bookkeeping is deferred: queue size only grows
            # between dispatch points, so the dispatch loops record the
            # high-water mark right before each removal (bitwise-identical
            # to per-push accounting — see _run_cohort/step).
        else:
            # Inlined _enqueue (a fresh Timeout can never be double-scheduled).
            heap = sim._heap
            heappush(heap, (sim.now + delay, seq, self))
            n = len(heap)
            b = sim._buckets
            if b:
                n += sum(map(len, b.values()))
            if n > sim.peak_heap:
                sim.peak_heap = n


def _timeout_factory(sim: "Simulator") -> Callable[..., Timeout]:
    """Build a specialized ``sim.timeout`` for a cohort-mode simulator.

    ``sim.timeout(1e-9)`` is the single hottest call of a sweep (one per
    simulated delay), and the generic spelling pays for the bound-method
    call, the type-call protocol (``type.__call__`` → ``__new__`` →
    ``__init__``), and five attribute loads on ``sim`` per event.  This
    closure allocates via ``object.__new__`` and captures the lane
    structures (which are created once and mutated in place, never
    rebound), leaving only the loads that genuinely vary (``now``,
    ``_seq``).  Behavior is identical to ``Timeout(sim, delay, value)``
    in cohort mode.  ``_ok`` is a Timeout class constant and the lane
    count is derived from the buckets on demand, so neither needs a
    per-creation store here.
    """
    buckets = sim._buckets
    btimes = sim._btimes
    bget = buckets.get
    push = heappush
    new = object.__new__
    cls = Timeout

    def timeout(delay: float, value: Any = None) -> Timeout:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self = new(cls)
        self.sim = sim
        self.callbacks = _NO_CBS
        self._value = value
        self._pwait = None
        # ``name`` stays unset (slot store costs ~9% of creation here);
        # diagnostics read it with getattr and fall back to the class name.
        self.delay = delay
        sim._seq = seq = sim._seq + 1
        self._lseq = seq
        t = sim.now + delay
        bucket = bget(t)
        if bucket is None:
            buckets[t] = [self]
            push(btimes, t)
        else:
            bucket.append(self)
        return self

    return timeout


class Simulator:
    """Deterministic discrete-event scheduler.

    >>> sim = Simulator()
    >>> done = []
    >>> def prog():
    ...     yield Timeout(sim, 1.5)
    ...     done.append(sim.now)
    >>> _ = sim.process(prog())
    >>> sim.run()
    >>> done
    [1.5]
    """

    def __init__(self, cohort: Optional[bool] = None) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        # Timer lane (cohort mode): deadline -> [Timeout, ...] in creation
        # (= sequence) order, plus a heap of the distinct deadlines.  The
        # lane population is derived on demand (_lane_size) so timer
        # creation — the hottest allocation in a sweep — carries no
        # counter read-modify-write; queue/peak accounting still matches
        # the scalar all-on-one-heap path exactly.
        self._buckets: dict[float, list[Timeout]] = {}
        self._btimes: list[float] = []
        # Live processes (for deadlock diagnostics); maintained by Process.
        self._live_processes: dict[int, Any] = {}
        #: events popped and dispatched so far (maintained by step()/run())
        self.events_processed = 0
        #: generator resumptions so far (maintained by Process._resume and
        #: the fused cohort dispatch)
        self.process_resumes = 0
        #: high-water mark of the event queue (heap + timer lane)
        self.peak_heap = 0
        #: cohort dispatch: drain every event ready at the same instant as
        #: one batch (the vectorized fast path; ``None`` = REPRO_VECTOR
        #: default).  Dispatch order, counters, and failure surfacing are
        #: identical to the scalar loop — see TestCohortDispatch.
        self.cohort = _vector.enabled() if cohort is None else cohort
        #: cohort batches dispatched and the largest batch seen (cohort
        #: mode only; the scalar loop leaves them at zero)
        self.cohorts_dispatched = 0
        self.max_cohort = 0
        if self.cohort:
            # Shadow the generic timeout() method with the inlined fast
            # factory (identical semantics; see _timeout_factory).
            self.timeout = _timeout_factory(self)

    # -- queue plumbing ---------------------------------------------------
    def _lane_size(self) -> int:
        """Number of timeouts parked in the timer lane (derived, not
        counted — see ``_buckets``)."""
        b = self._buckets
        return sum(map(len, b.values())) if b else 0

    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            raise SimulationError(f"event {event!r} already scheduled")
        event._scheduled = True
        self._seq += 1
        heap = self._heap
        heapq.heappush(heap, (self.now + delay, self._seq, event))
        n = len(heap) + self._lane_size()
        if n > self.peak_heap:
            self.peak_heap = n

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` simulated seconds; returns the event."""
        ev = Timeout(self, delay, name="schedule")
        ev.add_callback(lambda _e: fn())
        return ev

    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered event bound to this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a timeout event that fires after ``delay`` seconds.

        In cohort mode this method is shadowed by a per-instance fast
        factory (see ``_timeout_factory``) that inlines the constructor;
        both spell the same lane insertion, so ``sim.timeout(d)`` and
        ``Timeout(sim, d)`` stay interchangeable.
        """
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "",
                daemon: bool = False, owner: Optional[int] = None) -> "Process":
        """Start a generator as a simulated process (see :class:`Process`).

        ``daemon`` processes (e.g. per-rank progress engines) may still be
        blocked when the event queue drains without that counting as a
        deadlock.  ``owner`` tags the process with the world rank it acts
        for, so a rank crash can take its in-flight protocol children down
        with it.
        """
        from repro.simtime.process import Process

        return Process(self, gen, name=name, daemon=daemon, owner=owner)

    def _next_time(self) -> Optional[float]:
        """Earliest queued event time across the heap and the timer lane."""
        heap = self._heap
        btimes = self._btimes
        if heap:
            t = heap[0][0]
            if btimes and btimes[0] < t:
                return btimes[0]
            return t
        if btimes:
            return btimes[0]
        return None

    # -- main loop ---------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event (advancing ``now``)."""
        heap = self._heap
        btimes = self._btimes
        # Record the queue high-water mark before removing anything: lane
        # insertions defer their peak bookkeeping to the dispatch points
        # (sizes only grow between removals, so this sees the same maximum
        # per-push accounting would).
        q = len(heap)
        b = self._buckets
        if b:
            q += sum(map(len, b.values()))
        if q > self.peak_heap:
            self.peak_heap = q
        event: Optional[Event] = None
        if btimes:
            lt = btimes[0]
            bucket = self._buckets[lt]
            if not heap or lt < heap[0][0] or \
                    (lt == heap[0][0] and bucket[0]._lseq < heap[0][1]):
                t = lt
                event = bucket.pop(0)
                if not bucket:
                    del self._buckets[lt]
                    heappop(btimes)
        if event is None:
            if not heap:
                raise SimulationError("step() on an empty event queue")
            t, _seq, event = heapq.heappop(heap)
        if t < self.now - 1e-18:
            raise SimulationError("event queue went backwards in time")
        self.now = t
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None
        pw = event._pwait
        if pw is not None:
            event._pwait = None
            pw._resume(event)
        for cb in callbacks:
            cb(event)
        if event._ok is False and not event._defused:
            # A failure nobody waited on: surface it instead of losing it.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or ``now`` would exceed ``until``.

        Raises :class:`~repro.errors.DeadlockError` if the queue drains while
        simulated processes are still blocked (no ``until`` given).
        """
        if until is not None:
            if until < self.now:
                raise SimulationError(
                    f"run(until={until}) is in the past (now={self.now})")
            while True:
                t = self._next_time()
                if t is None or t > until:
                    break
                self.step()
            self.now = until
            return
        # Hot loop: inlined step() without the per-event monotonicity check
        # (enqueue can only schedule at >= now, so the heap cannot go
        # backwards) or attribute re-lookups.  This is where whole sweeps
        # spend their time; see benchmarks/bench_simcore.py.
        if self.cohort:
            kernel = _DISPATCH_KERNEL
            if kernel is not None:
                kernel(self, None)
            else:
                self._run_cohort(None)
        elif self._btimes:
            # A scalar-mode drain of a queue that somehow holds lane timers
            # (the cohort flag was flipped mid-run): fall back to the
            # lane-aware step loop rather than stranding them.
            while self._heap or self._btimes:
                self.step()
        else:
            heap = self._heap
            pop = heapq.heappop
            dispatched = 0
            try:
                while heap:
                    t, _seq, event = pop(heap)
                    dispatched += 1
                    self.now = t
                    callbacks, event.callbacks = event.callbacks, None
                    pw = event._pwait
                    if pw is not None:
                        event._pwait = None
                        pw._resume(event)
                    for cb in callbacks:
                        cb(event)
                    if event._ok is False and not event._defused:
                        # A failure nobody waited on: surface it, don't
                        # lose it.
                        raise event._value
            finally:
                self.events_processed += dispatched
        blocked_procs = sorted(
            (p for p in self._live_processes.values() if not p.daemon),
            key=lambda p: p.name,
        )
        if blocked_procs:
            # Deterministic diagnostics: names are sorted, every process
            # reports the event it is parked on, and the count of distinct
            # pending events is included (see repro.analysis.deadlock for
            # wait-for-graph reconstruction on top of this).
            waiting = {}
            pending_ids = set()
            for p in blocked_procs:
                target = p.waiting_on
                if target is None:
                    waiting[p.name] = ""
                else:
                    waiting[p.name] = (getattr(target, "name", "")
                                       or type(target).__name__)
                    pending_ids.add(id(target))
            raise DeadlockError(
                [p.name for p in blocked_procs],
                waiting=waiting,
                pending_events=len(pending_ids),
            )

    def run_horizon(self, horizon: float) -> None:
        """Process every event with time <= ``horizon``; stop without
        advancing ``now`` past the last processed event.

        This is the watchdog primitive behind ``Job.run(deadline=)``: unlike
        :meth:`run` with ``until`` it leaves ``now`` at the last dispatched
        instant (so an early-completing run does not jump to the deadline),
        and unlike the old one-``step()``-per-event caller loop it drains
        whole cohorts in vector mode, so deadline-armed runs keep the full
        batched dispatch rate.
        """
        if horizon < self.now:
            raise SimulationError(
                f"run_horizon({horizon}) is in the past (now={self.now})")
        if self.cohort:
            kernel = _DISPATCH_KERNEL
            if kernel is not None:
                kernel(self, horizon)
            else:
                self._run_cohort(horizon)
            return
        while True:
            t = self._next_time()
            if t is None or t > horizon:
                return
            self.step()

    def _run_cohort(self, horizon: Optional[float] = None) -> None:
        """Drain loop dispatching same-instant event cohorts (vector mode).

        All events already queued at the next timestamp — the timer-lane
        bucket for that deadline plus any heap events at the same instant,
        merged by sequence number — are taken as one batch before any
        callback runs.  A callback that enqueues a new same-instant event
        gives it a higher sequence number, so it lands in a *later* cohort
        at the same time — exactly where the scalar heap loop would
        dispatch it.  Dispatch order is therefore identical to the scalar
        path; only the queue traffic is batched.

        Cohort members that were re-armed by exactly one process resume
        through the fused fast path: the generator is entered directly from
        this loop (no callback trampoline), and a yielded Timeout re-arms
        straight into the timer lane.  With ``horizon`` set, dispatch stops
        before the first cohort whose time exceeds it (``now`` is left at
        the last dispatched instant — see :meth:`run_horizon`).
        """
        heap = self._heap
        btimes = self._btimes
        buckets = self._buckets
        pending = PENDING
        timeout_cls = Timeout
        dispatched = 0
        resumes = 0
        cohorts = 0
        widest = self.max_cohort
        inf = float("inf")
        try:
            while True:
                # Queue high-water mark, taken before the cohort is bulk-
                # removed: lane insertions defer peak bookkeeping to the
                # removal points (sizes only grow in between), which records
                # the same maximum the scalar per-push accounting does.
                q = len(heap)
                if buckets:
                    q += sum(map(len, buckets.values()))
                if q > self.peak_heap:
                    self.peak_heap = q
                ht = heap[0][0] if heap else inf
                lt = btimes[0] if btimes else inf
                if lt < ht:
                    # ---- pure timer-lane cohort: the bucket IS the batch.
                    if horizon is not None and lt > horizon:
                        return
                    t = lt
                    heappop(btimes)
                    bucket = buckets.pop(t)
                    n = len(bucket)
                    self.now = t
                    cohorts += 1
                    if n > widest:
                        widest = n
                    try:
                        # Lane events are always successful Timeouts, so the
                        # failure-surfacing checks of the generic path are
                        # statically dead here and elided.  The dead event's
                        # _pwait is deliberately left set: it is never read
                        # again (the processed marker is callbacks=None).
                        for ev in bucket:
                            callbacks = ev.callbacks
                            ev.callbacks = None
                            pw = ev._pwait
                            if pw is not None:
                                if pw._value is pending and \
                                        pw._waiting_on is ev:
                                    pw._waiting_on = None
                                    resumes += 1
                                    try:
                                        target = pw._send(ev._value)
                                    except StopIteration as stop:
                                        pw._finish_ok(stop.value)
                                        target = None
                                    except BaseException as exc:
                                        pw._finish_fail(exc)
                                        target = None
                                    if target is not None:
                                        # Fast re-arm only for a fresh
                                        # timeout (still wearing the
                                        # _NO_CBS sentinel, no competing
                                        # waiter); anything else takes the
                                        # validating slow path.
                                        if target.__class__ is timeout_cls \
                                                and target.sim is self \
                                                and target.callbacks is _NO_CBS \
                                                and target._pwait is None:
                                            pw._waiting_on = target
                                            target._pwait = pw
                                        else:
                                            pw._rearm(target)
                            if callbacks:
                                for cb in callbacks:
                                    cb(ev)
                    except BaseException:
                        # Undispatched bucket members (their callbacks were
                        # not yet swapped out) go back to the lane so a
                        # surfaced failure leaves the same queue state the
                        # scalar loop would.  A callback may have re-created
                        # the bucket with *newer* same-instant timers — the
                        # survivors' sequence numbers are older, so they go
                        # in front.
                        survivors = [e for e in bucket if e.callbacks is not None]
                        if survivors:
                            existing = buckets.get(t)
                            if existing is None:
                                buckets[t] = survivors
                                heappush(btimes, t)
                            else:
                                buckets[t] = survivors + existing
                        dispatched += n - len(survivors)
                        raise
                    dispatched += n
                    continue
                if ht is inf:
                    return
                if horizon is not None and ht > horizon:
                    return
                t = ht
                self.now = t
                if lt > t:
                    # ---- pure heap cohort (no lane bucket at this time).
                    entry = heappop(heap)
                    if not heap or heap[0][0] != t:
                        # Singleton cohort: dispatch inline, no batch list.
                        event = entry[2]
                        dispatched += 1
                        cohorts += 1
                        if not widest:
                            widest = 1
                        callbacks, event.callbacks = event.callbacks, None
                        pw = event._pwait
                        if pw is not None:
                            event._pwait = None
                            pw._resume(event)
                        for cb in callbacks:
                            cb(event)
                        if event._ok is False and not event._defused:
                            raise event._value
                        continue
                    cohort = [entry]
                    append = cohort.append
                    while heap and heap[0][0] == t:
                        append(heappop(heap))
                else:
                    # ---- mixed cohort: merge the bucket and the heap
                    # events at this instant by sequence number.
                    heappop(btimes)
                    bucket = buckets.pop(t)
                    hev = []
                    while heap and heap[0][0] == t:
                        hev.append(heappop(heap))
                    cohort = []
                    append = cohort.append
                    bi, hi = 0, 0
                    nb, nh = len(bucket), len(hev)
                    while bi < nb and hi < nh:
                        tev = bucket[bi]
                        if tev._lseq < hev[hi][1]:
                            append((t, tev._lseq, tev))
                            bi += 1
                        else:
                            append(hev[hi])
                            hi += 1
                    while bi < nb:
                        tev = bucket[bi]
                        append((t, tev._lseq, tev))
                        bi += 1
                    while hi < nh:
                        append(hev[hi])
                        hi += 1
                n = len(cohort)
                cohorts += 1
                if n > widest:
                    widest = n
                try:
                    for entry in cohort:
                        event = entry[2]
                        callbacks, event.callbacks = event.callbacks, None
                        pw = event._pwait
                        if pw is not None:
                            event._pwait = None
                            if pw._value is pending and \
                                    pw._waiting_on is event:
                                pw._waiting_on = None
                                resumes += 1
                                if event._ok is not False:
                                    try:
                                        target = pw._send(event._value)
                                    except StopIteration as stop:
                                        pw._finish_ok(stop.value)
                                        target = None
                                    except BaseException as exc:
                                        pw._finish_fail(exc)
                                        target = None
                                else:
                                    event._defused = True
                                    try:
                                        target = pw._throw(event._value)
                                    except StopIteration as stop:
                                        pw._finish_ok(stop.value)
                                        target = None
                                    except BaseException as exc:
                                        pw._finish_fail(exc)
                                        target = None
                                if target is not None:
                                    if target.__class__ is timeout_cls \
                                            and target.sim is self \
                                            and target.callbacks is _NO_CBS \
                                            and target._pwait is None:
                                        pw._waiting_on = target
                                        target._pwait = pw
                                    else:
                                        pw._rearm(target)
                            elif event._ok is False:
                                event._defused = True
                        for cb in callbacks:
                            cb(event)
                        if event._ok is False and not event._defused:
                            # A failure nobody waited on: surface it,
                            # don't lose it.
                            raise event._value
                except BaseException:
                    # Undispatched cohort members (their callbacks were
                    # not yet swapped out) go back on the heap so a
                    # surfaced failure leaves the same queue state the
                    # scalar loop would (sequence numbers preserved; lane
                    # timers requeue as heap entries, which dispatch in the
                    # identical (time, seq) order).
                    survivors = [e for e in cohort if e[2].callbacks is not None]
                    for entry in survivors:
                        heappush(heap, entry)
                    dispatched += n - len(survivors)
                    raise
                dispatched += n
        finally:
            # Trailing lane insertions since the last loop-top check (e.g.
            # pushed just before an exception surfaced, with survivors
            # already requeued) still reach the high-water mark here.
            q = len(heap)
            if buckets:
                q += sum(map(len, buckets.values()))
            if q > self.peak_heap:
                self.peak_heap = q
            self.events_processed += dispatched
            self.process_resumes += resumes
            self.cohorts_dispatched += cohorts
            if cohorts and not widest:
                widest = 1  # only singleton cohorts ran
            self.max_cohort = widest

    @property
    def queue_size(self) -> int:
        return len(self._heap) + self._lane_size()

    @property
    def stats(self) -> dict[str, int]:
        """Cheap always-on counters (``repro.bench --verbose`` prints them)."""
        return {
            "events_processed": self.events_processed,
            "process_resumes": self.process_resumes,
            "peak_heap": self.peak_heap,
        }
