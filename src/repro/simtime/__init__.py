"""Discrete-event simulation engine.

A small, deterministic, SimPy-style kernel written from scratch for this
reproduction: the rest of the package models hardware resources and MPI
processes as coroutines scheduled by :class:`Simulator`.

Public surface:

- :class:`Simulator` — the event loop (``now``, ``run``, ``process``).
- :class:`Event`, :class:`Timeout`, :class:`AllOf`, :class:`AnyOf` — waitables.
- :class:`Process` — a generator-based simulated process (yield events).
- :mod:`repro.simtime.primitives` — channels, semaphores, latches, mailboxes.
"""

from repro.simtime.core import Event, Simulator, Timeout
from repro.simtime.process import AllOf, AnyOf, Process
from repro.simtime.primitives import Channel, CountdownLatch, Semaphore
from repro.simtime.trace import Tracer

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Channel",
    "Semaphore",
    "CountdownLatch",
    "Tracer",
]
