"""Synchronization / queueing primitives built on the event core.

These are *simulation-domain* primitives (zero real concurrency): they let
simulated processes hand values to each other and block deterministically.
The hardware and MPI layers build mailboxes, FIFOs, and rendezvous protocols
out of these.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.errors import SimulationError
from repro.simtime.core import Event, Simulator

__all__ = ["Channel", "Semaphore", "CountdownLatch"]


class Channel:
    """Unbounded FIFO channel: ``put`` never blocks, ``get`` returns an event.

    Items are matched to getters strictly in FIFO order, so a channel is also
    a deterministic queue of wakeups.
    """

    def __init__(self, sim: Simulator, name: str = "channel"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest *live* blocked getter, if any.

        Getters whose process was forcibly unwound (rank crash, abort) are
        marked abandoned and skipped — handing them the item would lose it,
        since the stale-wakeup guard drops the delivery.
        """
        while self._getters:
            ev = self._getters.popleft()
            if ev._abandoned:
                continue
            ev.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        """Return an event that succeeds with the next item."""
        ev = Event(self.sim, name=f"{self.name}:get")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiters(self) -> int:
        return len(self._getters)

    def reset(self) -> None:
        """Drop all buffered items and forget blocked getters (owner death).

        Forgotten getter events are left untriggered forever; callers must
        separately unwind the processes parked on them (kill/throw), which
        is exactly what the rank-failure path does.
        """
        self._items.clear()
        self._getters.clear()


class Semaphore:
    """Counting semaphore with FIFO grant order."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "sem"):
        if capacity < 0:
            raise SimulationError(f"semaphore capacity must be >= 0, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.epoch = 0  # bumped by reset(); invalidates held units
        self._available = capacity
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        return self._available

    def acquire(self) -> Event:
        """Return an event that succeeds once a unit is held."""
        ev = Event(self.sim, name=f"{self.name}:acquire")
        if self._available > 0:
            self._available -= 1
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return one unit; hands it directly to the oldest *live* waiter.

        Waiters abandoned by a forced unwind (rank crash, abort) are
        skipped, not granted: a token handed to a stale acquire event is a
        token leaked, and with it eventually the whole semaphore.
        """
        while self._waiters:
            ev = self._waiters.popleft()
            if ev._abandoned:
                continue
            ev.succeed(None)
            return
        self._available += 1
        if self._available > self.capacity:
            raise SimulationError(f"semaphore {self.name} over-released")

    def reset(self) -> None:
        """Restore full capacity and forget blocked acquirers (owner death).

        Same contract as :meth:`Channel.reset`: abandoned acquire events
        never trigger; the failure path must unwind their waiters itself.
        Bumps :attr:`epoch` so a holder unwinding *after* the reset can see
        its unit was already reclaimed and must not release it again.
        """
        self.epoch += 1
        self._available = self.capacity
        self._waiters.clear()


class CountdownLatch:
    """One-shot latch: ``wait()`` events fire once ``arrive()`` ran N times."""

    def __init__(self, sim: Simulator, count: int, name: str = "latch"):
        if count < 0:
            raise SimulationError(f"latch count must be >= 0, got {count}")
        self.sim = sim
        self.name = name
        self._remaining = count
        self._waiters: list[Event] = []

    @property
    def remaining(self) -> int:
        return self._remaining

    def arrive(self, n: int = 1) -> None:
        if n < 1:
            raise SimulationError("arrive() count must be >= 1")
        if self._remaining == 0:
            raise SimulationError(f"latch {self.name} already open")
        if n > self._remaining:
            raise SimulationError(
                f"latch {self.name} over-arrived ({n} > {self._remaining})")
        self._remaining -= n
        if self._remaining == 0:
            waiters, self._waiters = self._waiters, []
            for ev in waiters:
                ev.succeed(None)

    def wait(self) -> Event:
        ev = Event(self.sim, name=f"{self.name}:wait")
        if self._remaining == 0:
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev
