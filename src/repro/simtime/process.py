"""Generator-based simulated processes and composite wait events.

A :class:`Process` wraps a generator.  The generator *yields* events (any
:class:`~repro.simtime.core.Event`) and is resumed with the event's value
once it triggers; failed events are re-raised inside the generator so
simulated code can use ordinary ``try``/``except``.  When the generator
returns, the process (itself an event) succeeds with the return value.

``yield from`` composes naturally, so the MPI layer exposes its operations
as sub-generators (``yield from comm.send(...)``).
"""

from __future__ import annotations

from typing import Any, Generator, Iterable

from repro.errors import ProcessKilled, SimulationError
from repro.simtime.core import PENDING, Event, Simulator

__all__ = ["Process", "AllOf", "AnyOf"]


class Process(Event):
    """A coroutine scheduled by the simulator; also an awaitable event."""

    __slots__ = ("_gen", "_send", "_throw", "_waiting_on", "daemon", "owner",
                 "_death_callbacks", "_resume_cb")

    _ids = 0

    def __init__(self, sim: Simulator, gen: Generator, name: str = "",
                 daemon: bool = False, owner: "int | None" = None):
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"process body must be a generator, got {type(gen).__name__}; "
                "did you call the function instead of passing its generator?"
            )
        Process._ids += 1
        super().__init__(sim, name=name or f"process-{Process._ids}")
        self._gen = gen
        # Pre-bound generator entry points: one resume per event dispatched
        # makes the attribute lookup + method bind measurable at sweep scale.
        self._send = gen.send
        self._throw = gen.throw
        self.daemon = daemon
        self.owner = owner
        self._waiting_on: Event | None = None
        self._death_callbacks: list = []
        # One bound method reused for every wakeup instead of a fresh
        # closure per yield: processes re-arm on every event they wait on,
        # so this is one of the hottest allocation sites in a sweep.
        self._resume_cb = self._resume
        sim._live_processes[id(self)] = self
        # Kick off on the next queue dispatch at the current time.
        start = Event(sim, name=f"{self.name}:start")
        start.callbacks.append(self._start)  # type: ignore[union-attr]
        start.succeed(None)

    def _start(self, event: Event) -> None:
        self._resume(event, forced=True)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    @property
    def waiting_on(self) -> Event | None:
        """The event this process is currently blocked on (diagnostics)."""
        return self._waiting_on

    def _resume(self, event: Event, forced: bool = False) -> None:
        # Direct slot reads (not the triggered/value properties): this is
        # the hottest dispatch path of a sweep, entered once per generator
        # resumption.
        if self._value is not PENDING or \
                (not forced and self._waiting_on is not event):
            # Stale wakeup: the process was killed, or forcibly resumed
            # (interrupt/throw) while this event was still in flight.  Its
            # failure, if any, was aimed at a generator frame that no longer
            # exists — swallow it instead of crashing the simulator.
            if event._ok is False:
                event._defused = True
            return
        stale = self._waiting_on
        if stale is not None and stale is not event:
            # Forced delivery (interrupt/throw): the event the process was
            # genuinely blocked on may still sit in a primitive's waiter
            # queue.  Mark it abandoned so Semaphore/Channel hand-offs skip
            # it instead of granting a token nobody will ever use.
            stale._abandoned = True
        self._waiting_on = None
        sim = self.sim
        sim.process_resumes += 1
        try:
            if event._ok is False:
                event._defused = True
                target = self._throw(event._value)
            else:
                target = self._send(
                    event._value if event is not self else None)
        except StopIteration as stop:
            self._finish_ok(stop.value)
            return
        except BaseException as exc:
            self._finish_fail(exc)
            return
        if not isinstance(target, Event):
            self._finish_fail(
                SimulationError(
                    f"process {self.name} yielded {target!r}; "
                    "processes must yield Event objects"
                )
            )
            return
        if target.sim is not sim:
            self._finish_fail(
                SimulationError(
                    f"process {self.name} yielded an event from another simulator")
            )
            return
        self._waiting_on = target
        # Re-arm: the common first-waiter case takes the dedicated _pwait
        # slot (the dispatch loops fire it before the callbacks list, which
        # is registration order because it is only taken while the list is
        # empty); otherwise inline add_callback with the cached bound
        # method; already-processed targets need the zero-delay proxy.
        cbs = target.callbacks
        if cbs is not None:
            if cbs:
                cbs.append(self._resume_cb)
            elif target._pwait is None:
                target._pwait = self
            else:
                # Second same-instant waiter on an event whose callbacks
                # may be the shared _NO_CBS sentinel: copy-on-write.
                target.callbacks = [self._resume_cb]
        else:
            target.add_callback(self._resume_cb)

    def _rearm(self, target: Any) -> None:
        """Validate and wait on the event a generator just yielded.

        The slow tail of :meth:`_resume`, split out so the fused cohort
        dispatch (Simulator._run_cohort) can enter generators directly and
        only pay for validation when the yielded target is not a
        same-simulator Timeout.
        """
        if not isinstance(target, Event):
            self._finish_fail(
                SimulationError(
                    f"process {self.name} yielded {target!r}; "
                    "processes must yield Event objects"
                )
            )
            return
        if target.sim is not self.sim:
            self._finish_fail(
                SimulationError(
                    f"process {self.name} yielded an event from another simulator")
            )
            return
        self._waiting_on = target
        cbs = target.callbacks
        if cbs is not None:
            if cbs:
                cbs.append(self._resume_cb)
            elif target._pwait is None:
                target._pwait = self
            else:
                target.callbacks = [self._resume_cb]
        else:
            target.add_callback(self._resume_cb)

    def _finish_ok(self, value: Any) -> None:
        self.sim._live_processes.pop(id(self), None)
        self.succeed(value)
        self._fire_death()

    def _finish_fail(self, exc: BaseException) -> None:
        self.sim._live_processes.pop(id(self), None)
        self.fail(exc)
        self._fire_death()

    def _fire_death(self) -> None:
        callbacks, self._death_callbacks = self._death_callbacks, []
        for fn in callbacks:
            fn(self)

    def on_death(self, fn) -> None:
        """Register ``fn(process)`` to run when the process terminates.

        Fires synchronously on any termination — normal return, failure, or
        :meth:`kill` — so it suits idempotent resource reclamation (KNEM
        region/FIFO-slot teardown).  If the process already finished, ``fn``
        runs immediately.
        """
        if self.triggered:
            fn(self)
            return
        self._death_callbacks.append(fn)

    def kill(self, exc: "BaseException | None" = None) -> None:
        """Terminate the process now (fail-stop crash model).

        Unwinds the generator (``finally`` blocks run), fails the process's
        own event with ``exc`` (default :class:`ProcessKilled`), defuses the
        event it was blocked on so the later stale wakeup is harmless, and
        fires registered on-death cleanups.  Killing a finished process is a
        no-op.
        """
        if self.triggered:
            return
        if exc is None:
            exc = ProcessKilled(f"{self.name} killed")
        waited, self._waiting_on = self._waiting_on, None
        if waited is not None:
            waited._abandoned = True
        try:
            self._gen.close()
        except BaseException as err:
            # The generator refused to die quietly; its error wins so it is
            # not silently swallowed.
            exc = err
        # Deliberate termination: the failure is "observed" by the killer.
        self._defused = True
        self._finish_fail(exc)
        if waited is not None and waited._ok is False:
            waited._defused = True

    def throw(self, exc: BaseException, only_if=None) -> None:
        """Throw ``exc`` into the process at the current simulation time.

        Delivery goes through a zero-delay event so it interleaves
        deterministically with other same-instant wakeups.  ``only_if`` (a
        nullary predicate) is re-evaluated at delivery time: if it returns
        False, or the process finished in the meantime, the throw is dropped
        — this closes the race where a survivor completes its operation
        between a peer's death and the failure delivery.
        """
        if self.triggered:
            return
        ev = Event(self.sim, name=f"{self.name}:throw")
        ev._defused = True

        def deliver(event: Event) -> None:
            if self.triggered:
                return
            if only_if is not None and not only_if():
                return
            self._resume(event, forced=True)

        ev.add_callback(deliver)
        ev.fail(exc)

    def interrupt(self, reason: str = "") -> None:
        """Throw :class:`Interrupted` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        ev = Event(self.sim, name=f"{self.name}:interrupt")
        ev.add_callback(lambda event: self._resume(event, forced=True))
        ev._defused = True
        ev.fail(Interrupted(reason))


class Interrupted(SimulationError):
    """Raised inside a process that another process interrupted."""

    def __init__(self, reason: str = ""):
        super().__init__(reason or "interrupted")
        self.reason = reason


class AllOf(Event):
    """Succeeds when every child event has succeeded.

    The value is the list of child values, in the order the children were
    given.  If any child fails, the composite fails with that exception
    (first failure wins).
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: Simulator, events: Iterable[Event], name: str = "allof"):
        super().__init__(sim, name=name)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            if child._ok is False:
                child._defused = True
            return
        if child._ok is False:
            child._defused = True
            self.fail(child.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Succeeds when the first child triggers; value is ``(index, value)``."""

    __slots__ = ("_children",)

    def __init__(self, sim: Simulator, events: Iterable[Event], name: str = "anyof"):
        super().__init__(sim, name=name)
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf requires at least one event")
        for i, child in enumerate(self._children):
            child.add_callback(lambda ev, i=i: self._on_child(i, ev))

    def _on_child(self, index: int, child: Event) -> None:
        if self.triggered:
            if child._ok is False:
                child._defused = True
            return
        if child._ok is False:
            child._defused = True
            self.fail(child.value)
            return
        self.succeed((index, child.value))
