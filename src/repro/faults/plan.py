"""Deterministic, seedable fault schedules for the simulated kernel path.

A :class:`FaultPlan` decides, per driver entry ("register", "copy",
"destroy", "shm.slot"), whether the call fails.  Decisions are pure
functions of ``(seed, op, core, per-(op, core) call index, size)`` — two
runs of the same program under the same plan inject the same faults, which
is what makes differential testing against a no-fault run meaningful.

Rules come in two flavours (the distinction the degradation machinery
cares about):

- **transient** — the matched call fails, the next one may succeed
  (retry-once recovers);
- **sticky** — once a rule trips it keeps firing for every later call it
  matches (the device is broken from that point on; only falling back to
  the copy-in/copy-out path recovers).

Plans are cheap to consult (one dict lookup and a few comparisons per
armed call) and are *forked* per machine so the per-plan call counters of
a sweep's fresh machines start from zero.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.errors import FaultInjected, KnemFaultInjected, ShmFaultInjected

__all__ = ["KNEM_OPS", "ALL_OPS", "FaultRule", "FaultPlan"]

#: KNEM driver entry points a plan can hook.
KNEM_OPS = ("register", "copy", "destroy")

#: Every hookable op, including shared-memory slot acquisition.
ALL_OPS = KNEM_OPS + ("shm.slot",)


@dataclass(frozen=True)
class FaultRule:
    """One match clause of a plan.

    ``None`` fields match anything.  ``index`` counts calls per
    ``(op, core)`` pair, starting at zero, so "the third registration on
    core 5" is expressible regardless of what other cores do.
    ``probability`` draws deterministically from the plan seed.  A sticky
    rule latches the first time it fires and from then on fails every call
    matching its ``op``/``core``/size window, ignoring index and
    probability.  ``max_fires`` caps the number of injections of a
    non-sticky rule.
    """

    op: Optional[str] = None
    core: Optional[int] = None
    index: Optional[int] = None
    min_size: int = 0
    max_size: Optional[int] = None
    probability: float = 1.0
    sticky: bool = False
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op is not None and self.op not in ALL_OPS:
            raise ValueError(f"unknown fault op {self.op!r}; known: {ALL_OPS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")

    def matches_site(self, op: str, core: int, size: int) -> bool:
        """Static part of the match: op, core, and size window."""
        if self.op is not None and self.op != op:
            return False
        if self.core is not None and self.core != core:
            return False
        if size < self.min_size:
            return False
        if self.max_size is not None and size > self.max_size:
            return False
        return True


def _draw(seed: int, op: str, core: int, index: int) -> float:
    """Deterministic uniform draw in [0, 1) for one call site.

    A real hash, not a checksum: CRC-style mixing leaves draws for adjacent
    cores strongly correlated (one differing digit barely moves the value),
    which would make ``probability`` rules fire all-or-nothing across ranks.
    """
    token = f"{seed}|{op}|{core}|{index}".encode()
    digest = hashlib.blake2b(token, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


class FaultPlan:
    """A deterministic fault schedule; arm on a machine, fork per machine."""

    def __init__(self, rules: Iterable[FaultRule], seed: int = 0):
        self.rules: tuple[FaultRule, ...] = tuple(rules)
        self.seed = seed
        self._counters: dict[tuple[str, int], int] = {}
        self._latched: set[int] = set()
        self._fires: dict[int, int] = {}
        #: injections per op, for tests and reporting
        self.injected: dict[str, int] = {}
        self.calls = 0

    # -- construction helpers ---------------------------------------------
    @classmethod
    def all_fail(cls, ops: Sequence[str] = KNEM_OPS, *, sticky: bool = True,
                 seed: int = 0) -> "FaultPlan":
        """Every call to ``ops`` fails (sticky by default): total outage."""
        return cls([FaultRule(op=op, sticky=sticky) for op in ops], seed=seed)

    @classmethod
    def nth_call(cls, op: str, index: int, *, core: Optional[int] = None,
                 sticky: bool = False, seed: int = 0) -> "FaultPlan":
        """Fail exactly the ``index``-th call to ``op`` (per matching core)."""
        return cls([FaultRule(op=op, core=core, index=index, sticky=sticky)],
                   seed=seed)

    @classmethod
    def random(cls, seed: int, rate: float, ops: Sequence[str] = KNEM_OPS, *,
               sticky: bool = False, min_size: int = 0,
               max_size: Optional[int] = None) -> "FaultPlan":
        """Each matching call fails independently with probability ``rate``."""
        return cls(
            [FaultRule(op=op, probability=rate, sticky=sticky,
                       min_size=min_size, max_size=max_size) for op in ops],
            seed=seed,
        )

    # -- runtime ------------------------------------------------------------
    def fork(self) -> "FaultPlan":
        """A fresh-counter copy: same rules and seed, no latched state."""
        return FaultPlan(self.rules, seed=self.seed)

    @property
    def armed(self) -> bool:
        return bool(self.rules)

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def fire(self, op: str, core: int, size: int = 0) -> bool:
        """Consume one call slot; True when the call must fail.

        Every consultation advances the per-``(op, core)`` call index, so
        index-based rules see retries as distinct calls.
        """
        key = (op, core)
        index = self._counters.get(key, 0)
        self._counters[key] = index + 1
        self.calls += 1
        fired = False
        for rid, rule in enumerate(self.rules):
            if not rule.matches_site(op, core, size):
                continue
            if rid in self._latched:
                fired = True
                break
            if rule.index is not None and rule.index != index:
                continue
            if rule.max_fires is not None and self._fires.get(rid, 0) >= rule.max_fires:
                continue
            if (rule.probability < 1.0
                    and _draw(self.seed, op, core, index) >= rule.probability):
                continue
            self._fires[rid] = self._fires.get(rid, 0) + 1
            if rule.sticky:
                self._latched.add(rid)
            fired = True
            break
        if fired:
            self.injected[op] = self.injected.get(op, 0) + 1
        return fired

    def exception(self, op: str, core: int, size: int = 0) -> FaultInjected:
        """The typed error an injected failure of ``op`` raises."""
        msg = f"injected {op} fault on core {core} ({size} bytes)"
        if op == "shm.slot":
            return ShmFaultInjected(msg)
        return KnemFaultInjected(msg)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<FaultPlan seed={self.seed} rules={len(self.rules)} "
                f"injected={self.total_injected}>")
