"""Deterministic, seedable fault schedules for the simulated kernel path.

A :class:`FaultPlan` decides, per driver entry ("register", "copy",
"destroy", "shm.slot"), whether the call fails.  Decisions are pure
functions of ``(seed, op, core, per-(op, core) call index, size)`` — two
runs of the same program under the same plan inject the same faults, which
is what makes differential testing against a no-fault run meaningful.

Rules come in two flavours (the distinction the degradation machinery
cares about):

- **transient** — the matched call fails, the next one may succeed
  (retry-once recovers);
- **sticky** — once a rule trips it keeps firing for every later call it
  matches (the device is broken from that point on; only falling back to
  the copy-in/copy-out path recovers).

Plans are cheap to consult (one dict lookup and a few comparisons per
armed call) and are *forked* per machine so the per-plan call counters of
a sweep's fresh machines start from zero.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.errors import FaultInjected, KnemFaultInjected, ShmFaultInjected

__all__ = ["KNEM_OPS", "ALL_OPS", "RANK_OPS", "FaultRule", "FaultPlan"]

#: KNEM driver entry points a plan can hook.
KNEM_OPS = ("register", "copy", "destroy")

#: Every hookable *kernel* op, including shared-memory slot acquisition.
ALL_OPS = KNEM_OPS + ("shm.slot",)

#: Process-level rule kinds: a rank dies (fail-stop) or stalls before
#: participating in a collective.  Kept out of :data:`ALL_OPS` because the
#: kernel-layer differential tests enumerate that tuple as the set of ops
#: whose failures degrade gracefully in-place.
RANK_OPS = ("rank.crash", "rank.stall")


@dataclass(frozen=True)
class FaultRule:
    """One match clause of a plan.

    ``None`` fields match anything.  ``index`` counts calls per
    ``(op, core)`` pair, starting at zero, so "the third registration on
    core 5" is expressible regardless of what other cores do.
    ``probability`` draws deterministically from the plan seed.  A sticky
    rule latches the first time it fires and from then on fails every call
    matching its ``op``/``core``/size window, ignoring index and
    probability.  ``max_fires`` caps the number of injections of a
    non-sticky rule.

    Rank-level rules (:data:`RANK_OPS`) add two fields: ``delay`` is the
    stall duration of a ``rank.stall`` rule (simulated seconds the rank
    sleeps before entering the collective), and ``at_time`` turns a
    ``rank.crash``/``rank.stall`` rule into an absolute-simulated-time timer
    armed at job launch instead of a per-collective-entry match (such rules
    are skipped by :meth:`FaultPlan.fire`).
    """

    op: Optional[str] = None
    core: Optional[int] = None
    index: Optional[int] = None
    min_size: int = 0
    max_size: Optional[int] = None
    probability: float = 1.0
    sticky: bool = False
    max_fires: Optional[int] = None
    delay: float = 0.0
    at_time: Optional[float] = None

    def __post_init__(self) -> None:
        known = ALL_OPS + RANK_OPS
        if self.op is not None and self.op not in known:
            raise ValueError(f"unknown fault op {self.op!r}; known: {known}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.delay < 0.0:
            raise ValueError("stall delay must be non-negative")
        if self.delay and self.op != "rank.stall":
            raise ValueError("delay is only meaningful for op='rank.stall'")
        if self.at_time is not None and self.op not in RANK_OPS:
            raise ValueError("at_time is only meaningful for rank-level ops")

    def matches_site(self, op: str, core: int, size: int) -> bool:
        """Static part of the match: op, core, and size window."""
        if self.op is not None and self.op != op:
            return False
        if self.core is not None and self.core != core:
            return False
        if size < self.min_size:
            return False
        if self.max_size is not None and size > self.max_size:
            return False
        return True


def _draw(seed: int, op: str, core: int, index: int) -> float:
    """Deterministic uniform draw in [0, 1) for one call site.

    A real hash, not a checksum: CRC-style mixing leaves draws for adjacent
    cores strongly correlated (one differing digit barely moves the value),
    which would make ``probability`` rules fire all-or-nothing across ranks.
    """
    token = f"{seed}|{op}|{core}|{index}".encode()
    digest = hashlib.blake2b(token, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


class FaultPlan:
    """A deterministic fault schedule; arm on a machine, fork per machine."""

    def __init__(self, rules: Iterable[FaultRule], seed: int = 0):
        self.rules: tuple[FaultRule, ...] = tuple(rules)
        self.seed = seed
        self._counters: dict[tuple[str, int], int] = {}
        self._latched: set[int] = set()
        self._fires: dict[int, int] = {}
        #: injections per op, for tests and reporting
        self.injected: dict[str, int] = {}
        self.calls = 0

    # -- construction helpers ---------------------------------------------
    @classmethod
    def all_fail(cls, ops: Sequence[str] = KNEM_OPS, *, sticky: bool = True,
                 seed: int = 0) -> "FaultPlan":
        """Every call to ``ops`` fails (sticky by default): total outage."""
        return cls([FaultRule(op=op, sticky=sticky) for op in ops], seed=seed)

    @classmethod
    def nth_call(cls, op: str, index: int, *, core: Optional[int] = None,
                 sticky: bool = False, seed: int = 0) -> "FaultPlan":
        """Fail exactly the ``index``-th call to ``op`` (per matching core)."""
        return cls([FaultRule(op=op, core=core, index=index, sticky=sticky)],
                   seed=seed)

    @classmethod
    def random(cls, seed: int, rate: float, ops: Sequence[str] = KNEM_OPS, *,
               sticky: bool = False, min_size: int = 0,
               max_size: Optional[int] = None) -> "FaultPlan":
        """Each matching call fails independently with probability ``rate``."""
        return cls(
            [FaultRule(op=op, probability=rate, sticky=sticky,
                       min_size=min_size, max_size=max_size) for op in ops],
            seed=seed,
        )

    @classmethod
    def crash(cls, *, core: Optional[int] = None, index: Optional[int] = None,
              at_time: Optional[float] = None, probability: float = 1.0,
              seed: int = 0) -> "FaultPlan":
        """Kill a rank at its ``index``-th collective entry or at ``at_time``.

        ``core`` selects the victim by bound core (``None`` matches every
        rank — with ``index``/``probability`` narrowing who actually dies).
        """
        return cls([FaultRule(op="rank.crash", core=core, index=index,
                              at_time=at_time, probability=probability)],
                   seed=seed)

    @classmethod
    def stall(cls, delay: float, *, core: Optional[int] = None,
              index: Optional[int] = None, probability: float = 1.0,
              seed: int = 0) -> "FaultPlan":
        """Delay a rank by ``delay`` simulated seconds before it enters the
        matched collective."""
        return cls([FaultRule(op="rank.stall", core=core, index=index,
                              delay=delay, probability=probability)],
                   seed=seed)

    # -- runtime ------------------------------------------------------------
    def fork(self) -> "FaultPlan":
        """A fresh-counter copy: same rules and seed, no latched state."""
        return FaultPlan(self.rules, seed=self.seed)

    def timed_rules(self) -> list[FaultRule]:
        """Rank-level rules armed at an absolute simulated time.

        These never fire through :meth:`fire`; the job launcher schedules
        them as simulator timers when the machine's plan is armed.
        """
        return [r for r in self.rules if r.at_time is not None]

    def record(self, op: str) -> None:
        """Count an injection delivered outside :meth:`fire` (timed rules)."""
        self.injected[op] = self.injected.get(op, 0) + 1

    def draw(self, op: str, core: int, index: int = 0) -> float:
        """The deterministic site draw (timed-rule probability checks)."""
        return _draw(self.seed, op, core, index)

    @property
    def armed(self) -> bool:
        return bool(self.rules)

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def fire(self, op: str, core: int, size: int = 0) -> bool:
        """Consume one call slot; True when the call must fail.

        Every consultation advances the per-``(op, core)`` call index, so
        index-based rules see retries as distinct calls.
        """
        return self.fire_rule(op, core, size) is not None

    def fire_rule(self, op: str, core: int, size: int = 0) -> Optional[FaultRule]:
        """Like :meth:`fire`, but returns the matched rule (``None`` = pass).

        Callers that need rule payloads — a ``rank.stall`` rule's ``delay``
        — use this; plain kernel hooks only need the boolean.
        """
        key = (op, core)
        index = self._counters.get(key, 0)
        self._counters[key] = index + 1
        self.calls += 1
        hit: Optional[FaultRule] = None
        for rid, rule in enumerate(self.rules):
            if rule.at_time is not None:
                continue  # timer rules are armed at launch, not per call
            if not rule.matches_site(op, core, size):
                continue
            if rid in self._latched:
                hit = rule
                break
            if rule.index is not None and rule.index != index:
                continue
            if rule.max_fires is not None and self._fires.get(rid, 0) >= rule.max_fires:
                continue
            if (rule.probability < 1.0
                    and _draw(self.seed, op, core, index) >= rule.probability):
                continue
            self._fires[rid] = self._fires.get(rid, 0) + 1
            if rule.sticky:
                self._latched.add(rid)
            hit = rule
            break
        if hit is not None:
            self.injected[op] = self.injected.get(op, 0) + 1
        return hit

    def exception(self, op: str, core: int, size: int = 0) -> FaultInjected:
        """The typed error an injected failure of ``op`` raises."""
        msg = f"injected {op} fault on core {core} ({size} bytes)"
        if op == "shm.slot":
            return ShmFaultInjected(msg)
        return KnemFaultInjected(msg)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<FaultPlan seed={self.seed} rules={len(self.rules)} "
                f"injected={self.total_injected}>")
