"""Fault injection and graceful degradation for the simulated kernel path.

Arm a :class:`FaultPlan` on a machine and the KNEM driver (and optionally
the shared-memory FIFO slot path) starts failing calls per the plan's
deterministic schedule; the collective and point-to-point layers recover by
retrying once, falling back to the copy-in/copy-out path for the affected
operation, and — after enough consecutive failures — disqualifying KNEM for
the rest of the job (see :class:`KnemHealth`).

::

    from repro.faults import FaultPlan
    machine = Machine.build("dancer", trace=True)
    machine.arm_faults(FaultPlan.all_fail(sticky=True))

With no plan armed, the hooks cost a single ``is None`` test per ioctl.
"""

from repro.faults.health import KnemHealth
from repro.faults.plan import ALL_OPS, KNEM_OPS, RANK_OPS, FaultPlan, FaultRule

__all__ = ["ALL_OPS", "KNEM_OPS", "RANK_OPS", "FaultPlan", "FaultRule",
           "KnemHealth"]
