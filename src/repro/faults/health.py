"""Per-device degradation state: consecutive failures and disqualification.

Mirrors how a real Open MPI component handles a misbehaving kernel module:
individual ioctl failures are retried or routed around, but after ``N``
consecutive failures the device is *disqualified* for the rest of the job
and every collective takes the copy-in/copy-out path from the start.

State changes are surfaced as tracer events so degraded runs can be
replayed through the schedule analyzers:

- ``knem.degrade`` — one per recorded failure, carrying the failing op,
  the core, the consecutive-failure count, and whether this failure
  crossed the disqualification threshold;
- ``knem.requalify`` — a success after one or more failures reset the
  consecutive counter (the device recovered before disqualifying).
"""

from __future__ import annotations

from typing import Optional

from repro.simtime.trace import Tracer

__all__ = ["KnemHealth"]


class KnemHealth:
    """Failure bookkeeping for one KNEM device."""

    def __init__(self, tracer: Optional[Tracer] = None, fail_limit: int = 8):
        self.tracer = tracer or Tracer()
        #: consecutive failures that disqualify the device (per job policy;
        #: KNEM-Coll applies its tuning's ``knem_fail_limit`` here).
        self.fail_limit = fail_limit
        self.consecutive_failures = 0
        self.total_failures = 0
        self.total_recoveries = 0
        self.degrade_events = 0
        self.disqualified = False

    def note_failure(self, op: str, core: int) -> bool:
        """Record one unrecovered ioctl failure; True once disqualified."""
        self.consecutive_failures += 1
        self.total_failures += 1
        if not self.disqualified and self.consecutive_failures >= self.fail_limit:
            self.disqualified = True
        self.degrade_events += 1
        tr = self.tracer
        if tr.enabled:
            tr.emit("knem.degrade", core=core, op=op,
                    consecutive=self.consecutive_failures,
                    disqualified=self.disqualified)
        else:
            tr.tick("knem.degrade")
        return self.disqualified

    def note_success(self) -> None:
        """Record a successful ioctl; requalifies a non-disqualified device."""
        if self.disqualified:
            return  # disqualification is final for the job
        if self.consecutive_failures:
            self.total_recoveries += 1
            tr = self.tracer
            if tr.enabled:
                tr.emit("knem.requalify",
                        after_failures=self.consecutive_failures)
            else:
                tr.tick("knem.requalify")
        self.consecutive_failures = 0
