"""Blocking client of the sweep service.

The client side of the scheduler/store/transport split: it owns no
cache and no pool — it serializes a sweep request, then yields each
per-cell result as the server streams it back, in completion order.
:func:`repro.bench.harness.run_sweep` consumes exactly this stream on
its ``service=`` path and journals/assembles results the same way it
does for locally computed cells, which is what keeps served sweeps
byte-identical to in-process ones.

One sweep = one connection: reconnecting per call makes the client
trivially robust to server restarts between sweeps (the chaos
service-restart dimension kills the server mid-campaign and expects the
next sweep against a fresh one to succeed and to reuse its durable
cache).
"""

from __future__ import annotations

import socket
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.bench.chunking import CellAborted
from repro.bench.imb import CellStats, ImbSettings
from repro.errors import BenchmarkError
from repro.mpi.stacks import Stack
from repro.service import protocol

__all__ = ["CellResult", "ServiceClient"]

#: seconds to wait for the TCP/unix connect (not for results — cells may
#: legitimately take long; the stream itself has no read timeout)
CONNECT_TIMEOUT = 10.0


@dataclass
class CellResult:
    """One served sweep cell, as the harness consumes it."""

    key: str                    # "stack|size" label, as journaled
    t: Optional[float]          # measured seconds (None when aborted)
    stats: Optional[CellStats]  # simulator counters (None on cache hits)
    cached: bool                # answered from the server's result cache
    aborted: Optional[CellAborted] = None


class ServiceClient:
    """Connects to a sweep server for one or more sweep requests."""

    def __init__(self, address: str):
        self.address = address
        self._kind = protocol.parse_address(address)
        self._next_id = 0

    # -- plumbing ----------------------------------------------------------

    def _connect(self) -> socket.socket:
        try:
            if self._kind[0] == "unix":
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(CONNECT_TIMEOUT)
                sock.connect(self._kind[1])
            else:
                sock = socket.create_connection(
                    (self._kind[1], self._kind[2]), timeout=CONNECT_TIMEOUT)
        except OSError as err:
            raise BenchmarkError(
                f"cannot reach sweep server at {self.address}: {err}"
            ) from err
        sock.settimeout(None)   # result stream: cells may take long
        return sock

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        """Nothing persistent to release (one connection per request)."""

    # -- requests ----------------------------------------------------------

    def ping(self) -> dict:
        """Server + store + pool counters (raises if unreachable)."""
        sock = self._connect()
        try:
            with sock.makefile("rwb") as fh:
                fh.write(protocol.format_frame({"op": "ping"}))
                fh.flush()
                for frame in protocol.read_frames(fh):
                    if frame["op"] == "pong":
                        return frame["counters"]
                    raise BenchmarkError(
                        f"sweep server error: {frame.get('message')}")
        finally:
            sock.close()
        raise BenchmarkError(
            f"sweep server at {self.address} closed the stream mid-ping")

    def sweep(self, machine: str, operation: str, nprocs: int,
              settings: ImbSettings,
              cells: Sequence[tuple[Stack, int]]) -> Iterator[CellResult]:
        """Yield a :class:`CellResult` per requested cell, completion order.

        Raises typed :class:`~repro.errors.BenchmarkError` when the
        server reports a failed cell or the stream ends before the
        ``end`` frame (server died mid-sweep) — the harness then leaves
        the journal resumable, exactly like a killed local sweep.
        """
        self._next_id += 1
        req = {
            "op": "sweep",
            "id": self._next_id,
            "machine": machine,
            "operation": operation,
            "nprocs": nprocs,
            "settings": protocol.encode_settings(settings),
            "cells": [{"stack": protocol.encode_stack(stack), "size": size}
                      for stack, size in cells],
        }
        sock = self._connect()
        try:
            with sock.makefile("rwb") as fh:
                fh.write(protocol.format_frame(req))
                fh.flush()
                done = False
                for frame in protocol.read_frames(fh):
                    op = frame["op"]
                    if op == "cell":
                        yield CellResult(
                            key=frame["key"], t=frame["t"],
                            stats=protocol.decode_stats(frame["stats"]),
                            cached=bool(frame["cached"]))
                    elif op == "abort":
                        yield CellResult(
                            key=frame["key"], t=None, stats=None,
                            cached=False,
                            aborted=CellAborted(
                                cell=frame["key"],
                                deaths=frame["deaths"],
                                reason=frame["reason"]))
                    elif op == "end":
                        done = True
                        break
                    elif op == "cell_error":
                        raise BenchmarkError(
                            f"sweep server failed cell {frame['key']}: "
                            f"{frame['message']}")
                    elif op == "error":
                        raise BenchmarkError(
                            f"sweep server error: {frame.get('message')}")
                    else:
                        raise protocol.ProtocolError(
                            f"unexpected frame op {op!r}")
                if not done:
                    raise BenchmarkError(
                        f"sweep server at {self.address} closed the "
                        f"stream mid-sweep; re-run to resume from the "
                        f"journal")
        finally:
            sock.close()
