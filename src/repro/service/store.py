"""Content-addressed result cache layered on the format-3 journal.

The store is a :mod:`repro.bench.harness` format-3 JSONL journal whose
cell keys are :func:`repro.service.protocol.cache_key` digests instead
of ``stack|size`` labels — the per-record blake2b integrity checksum the
journal already computes is thereby promoted into a content-addressed
identity.  Reusing the journal buys everything it already guarantees for
free: O(1) durable appends, torn-tail tolerance, skip-and-report on
corrupt interior records, compaction-on-load, and the writer lease that
keeps a second server from interleaving appends.

A server restart therefore *warms* the cache rather than losing it:
loading the journal back is exactly the resume path a killed sweep uses
(the chaos campaign's service-restart dimension leans on this).
"""

from __future__ import annotations

import os
from typing import IO, Optional

from repro.bench import harness

__all__ = ["ResultStore", "default_cache_path"]

_STORE_HEADER = {"version": 1, "store": "repro.service result cache"}


def default_cache_path() -> str:
    """Default on-disk cache journal, inside :func:`harness.results_dir`."""
    return os.path.join(harness.results_dir(),
                        "service_cache.checkpoint.json")


class ResultStore:
    """Durable ``cache_key -> seconds`` map with journal-backed appends.

    ``path=None`` keeps the cache in memory only (tests, throwaway
    servers).  With a path, the journal is loaded (corrupt records are
    simply dropped — a cache miss, not an error), compacted, and held
    open under the harness writer lease for the life of the store.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._cells: dict[str, float] = {}
        self._lease: Optional[harness.JournalLease] = None
        self._fh: Optional[IO[str]] = None
        #: dropped-on-load diagnostics (corrupt or torn records)
        self.recovered_dropped = 0
        self.hits = 0
        self.misses = 0
        if path is None:
            return
        self._lease = harness.acquire_journal_lease(path)
        try:
            report = harness._parse_journal(path, header=None)
            if report.header not in (None, _STORE_HEADER):
                raise harness.BenchmarkError(
                    f"{path} is not a service cache journal "
                    f"(header {report.header!r})")
            self._cells = dict(report.cells)
            self.recovered_dropped = len(report.skipped) + (
                1 if report.torn_tail else 0)
            harness._compact_checkpoint(path, _STORE_HEADER, self._cells)
            self._fh = open(path, "a")
        except BaseException:
            self._lease.release()
            raise

    def __len__(self) -> int:
        return len(self._cells)

    def get(self, key: str) -> Optional[float]:
        """Cached seconds for ``key``; counts the hit/miss either way."""
        t = self._cells.get(key)
        if t is None:
            self.misses += 1
        else:
            self.hits += 1
        return t

    def put(self, key: str, t: float) -> None:
        """Record a freshly computed cell (durable append when on disk)."""
        self._cells[key] = t
        if self._fh is not None:
            try:
                harness._journal_append(self._fh, key, t)
            except OSError:
                # Same downgrade contract as the sweep journal: stop
                # journaling rather than risk interior corruption.  The
                # in-memory cache keeps serving; only durability is lost.
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._fh = None

    def counters(self) -> dict:
        return {
            "entries": len(self._cells),
            "hits": self.hits,
            "misses": self.misses,
            "recovered_dropped": self.recovered_dropped,
            "durable": self._fh is not None or self.path is None,
        }

    def close(self) -> None:
        """Release the journal handle and writer lease (idempotent)."""
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
        if self._lease is not None:
            self._lease.release()
            self._lease = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
