"""``python -m repro.service`` — run a standalone sweep server.

Thin alias of ``python -m repro.bench --serve ADDR``; see
:func:`repro.service.server.serve`.
"""

from __future__ import annotations

import argparse
import sys

from repro.service.server import serve
from repro.service.store import default_cache_path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service",
        description="Persistent sweep server with a content-addressed "
                    "result cache.")
    parser.add_argument("address",
                        help="host:port to bind (port 0 = ephemeral) or a "
                             "unix socket path")
    parser.add_argument("--jobs", type=int, default=0,
                        help="warm-pool workers (0 = one per CPU, 1 = "
                             "serial in-thread)")
    parser.add_argument("--cache", default=None, metavar="PATH",
                        help="result-cache journal path (default: "
                             "service_cache.checkpoint.json in the results "
                             "dir; 'none' = memory only)")
    parser.add_argument("--log", default=None, metavar="PATH",
                        help="append server log lines to PATH")
    args = parser.parse_args(argv)
    cache = args.cache
    if cache is None:
        cache = default_cache_path()
    elif cache == "none":
        cache = None
    log = open(args.log, "a") if args.log else None
    try:
        return serve(args.address, jobs=args.jobs, cache_path=cache, log=log)
    finally:
        if log is not None:
            log.close()


if __name__ == "__main__":
    sys.exit(main())
