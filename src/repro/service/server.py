"""Asyncio transport of the sweep service.

One :class:`SweepServer` multiplexes any number of concurrent clients
over TCP (``host:port``) or a unix-domain socket.  The transport layer
does no simulation work itself: for each requested cell it either
answers from the :class:`~repro.service.store.ResultStore` (a cache
hit), attaches to an already-in-flight computation of the same cache
key (two clients asking for one cell cost one simulation), or submits a
:class:`~repro.service.runner.ComputeJob` to the pool runner thread.
Results stream back to each client in completion order — exactly the
contract :func:`~repro.bench.executor.run_cells` gives the in-process
parallel path, so the client journals them the same way.

The scheduler state (``_inflight`` futures) lives on the event loop and
is only touched from it; the runner marshals completions back with
``call_soon_threadsafe``.  Shutdown order matters: transport first (no
new work), then the runner (drains the pool), then the store (releases
the cache journal lease).
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import IO, Optional

from repro.bench.chunking import DEFAULT_RETRY_LIMIT, CellAborted
from repro.errors import BenchmarkError
from repro.service import protocol
from repro.service.runner import ComputeJob, PoolRunner
from repro.service.store import ResultStore

__all__ = ["SweepServer", "ServerHandle", "start_in_thread", "serve"]


class SweepServer:
    """The persistent sweep server (scheduler + glue over store/runner)."""

    def __init__(self, jobs: int = 0, cache_path: Optional[str] = None,
                 retry_limit: Optional[int] = DEFAULT_RETRY_LIMIT,
                 log: Optional[IO[str]] = None):
        self.store = ResultStore(cache_path)
        self.runner = PoolRunner(jobs=jobs, retry_limit=retry_limit)
        self._inflight: dict[str, asyncio.Future] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._log_fh = log
        self.address: Optional[str] = None
        self.requests = 0
        self.cells_served = 0
        self.cache_hits = 0
        self.dedup_hits = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self, address: str) -> str:
        """Bind and start serving; returns the actual bound address
        (``host:0`` picks a free port — the return value names it)."""
        kind = protocol.parse_address(address)
        self.runner.start()
        if kind[0] == "unix":
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=kind[1])
            self.address = kind[1]
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=kind[1], port=kind[2])
            host, port = self._server.sockets[0].getsockname()[:2]
            self.address = f"{host}:{port}"
        self._log(f"listening on {self.address} "
                  f"(cache: {self.store.path or 'memory'})")
        return self.address

    async def stop(self) -> None:
        """Transport, then runner, then store — in that order."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.runner.stop)
        self._log(f"stopped ({self.counters()})")
        self.store.close()

    def counters(self) -> dict:
        return {
            "requests": self.requests,
            "cells_served": self.cells_served,
            "cache_hits": self.cache_hits,
            "dedup_hits": self.dedup_hits,
            "cells_computed": self.runner.cells_computed,
            "pool_batches": self.runner.batches,
            "store": self.store.counters(),
        }

    def _log(self, msg: str) -> None:
        if self._log_fh is None:
            return
        stamp = time.strftime("%H:%M:%S")
        try:
            self._log_fh.write(f"[{stamp}] {msg}\n")
            self._log_fh.flush()
        except OSError:  # pragma: no cover - log disk full
            self._log_fh = None

    # -- scheduler ---------------------------------------------------------

    def _resolve(self, key: str, fut: asyncio.Future, outcome) -> None:
        """Runner completion, marshalled onto the loop.  The outcome is
        stored as the future's *result* whatever it is (tuple, abort, or
        exception) — a client that disconnected before retrieving an
        exception-valued future must not trip the never-retrieved
        warning."""
        self._inflight.pop(key, None)
        if not fut.done():
            fut.set_result(outcome)
        if isinstance(outcome, tuple):
            self.store.put(key, outcome[0])

    def _lookup(self, key: str):
        """``("hit", t)`` | ``("wait", fut)`` | ``("compute", fut)``."""
        t = self.store.get(key)
        if t is not None:
            self.cache_hits += 1
            return ("hit", t)
        fut = self._inflight.get(key)
        if fut is not None:
            self.dedup_hits += 1
            return ("wait", fut)
        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        self._inflight[key] = fut
        return ("compute", fut)

    # -- transport ---------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                if not line.strip():
                    continue
                try:
                    frame = protocol.parse_frame(line)
                    op = frame["op"]
                    if op == "ping":
                        await self._send(writer, {"op": "pong",
                                                  "counters": self.counters()})
                    elif op == "sweep":
                        await self._handle_sweep(frame, writer)
                    else:
                        raise protocol.ProtocolError(f"unknown op {op!r}")
                except (protocol.ProtocolError, BenchmarkError) as err:
                    self._log(f"request error: {err}")
                    await self._send(writer, {
                        "op": "error", "id": frame.get("id")
                        if isinstance(frame, dict) else None,
                        "message": str(err)})
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-stream; nothing to unwind
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _send(self, writer: asyncio.StreamWriter, frame: dict) -> None:
        writer.write(protocol.format_frame(frame))
        await writer.drain()

    async def _handle_sweep(self, frame: dict,
                            writer: asyncio.StreamWriter) -> None:
        self.requests += 1
        req_id = frame.get("id")
        machine = frame["machine"]
        operation = frame["operation"]
        nprocs = frame["nprocs"]
        settings = protocol.decode_settings(frame["settings"])
        ctx_token = protocol.context_fingerprint(
            machine, operation, nprocs, settings)
        cells = frame["cells"]
        self._log(f"sweep #{self.requests}: {len(cells)} cell(s) of "
                  f"{operation} on {machine} x{nprocs}")
        served = 0
        hits = 0
        waits = []
        for cell in cells:
            stack = protocol.decode_stack(cell["stack"])
            size = int(cell["size"])
            label = f"{stack.name}|{size}"
            key = protocol.cache_key(
                machine, operation, nprocs, settings, stack, size)
            state, value = self._lookup(key)
            if state == "hit":
                served += 1
                hits += 1
                await self._send(writer, {
                    "op": "cell", "id": req_id, "key": label, "t": value,
                    "cached": True, "stats": None})
                continue
            if state == "compute":
                loop = asyncio.get_running_loop()

                def make_done(key=key, fut=value):
                    def done(outcome):
                        loop.call_soon_threadsafe(
                            self._resolve, key, fut, outcome)
                    return done

                self.runner.submit(ComputeJob(
                    key=key, ctx_token=ctx_token, machine=machine,
                    operation=operation, nprocs=nprocs, settings=settings,
                    stack=stack, size=size, done=make_done()))
            waits.append((label, value))

        async def settle(label: str, fut: asyncio.Future):
            return label, await asyncio.shield(fut)

        for settled in asyncio.as_completed(
                [settle(label, fut) for label, fut in waits]):
            label, outcome = await settled
            served += 1
            if isinstance(outcome, tuple):
                t, stats = outcome
                await self._send(writer, {
                    "op": "cell", "id": req_id, "key": label, "t": t,
                    "cached": False,
                    "stats": protocol.encode_stats(stats)})
            elif isinstance(outcome, CellAborted):
                await self._send(writer, {
                    "op": "abort", "id": req_id, "key": label,
                    "deaths": outcome.deaths, "reason": outcome.reason})
            else:
                self._log(f"cell {label} failed: {outcome!r}")
                await self._send(writer, {
                    "op": "cell_error", "id": req_id, "key": label,
                    "message": str(outcome)})
        self.cells_served += served
        await self._send(writer, {"op": "end", "id": req_id,
                                  "cells": served, "cache_hits": hits})


# -- embedding helpers -------------------------------------------------------

class ServerHandle:
    """A server running on its own event-loop thread (tests, CLI spawn)."""

    def __init__(self, server: SweepServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread, address: str):
        self.server = server
        self._loop = loop
        self._thread = thread
        self.address = address

    def counters(self) -> dict:
        return self.server.counters()

    def stop(self) -> None:
        """Stop the server and join its loop thread (idempotent)."""
        if self._thread is None:
            return
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop).result(timeout=60.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()
        self._thread = None

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


def start_in_thread(address: str = "127.0.0.1:0", *, jobs: int = 0,
                    cache_path: Optional[str] = None,
                    retry_limit: Optional[int] = DEFAULT_RETRY_LIMIT,
                    log: Optional[IO[str]] = None) -> ServerHandle:
    """Start a :class:`SweepServer` on a fresh daemon event-loop thread.

    Returns once the socket is bound; ``handle.address`` carries the real
    port when ``:0`` asked for an ephemeral one.
    """
    started = threading.Event()
    holder: dict = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            server = SweepServer(jobs=jobs, cache_path=cache_path,
                                 retry_limit=retry_limit, log=log)
            holder["address"] = loop.run_until_complete(
                server.start(address))
            holder["loop"] = loop
            holder["server"] = server
        except BaseException as err:  # surface bind/store errors to caller
            holder["error"] = err
            loop.close()
            return
        finally:
            started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, name="repro-sweep-server",
                              daemon=True)
    thread.start()
    started.wait(timeout=30.0)
    if "error" in holder:
        raise holder["error"]
    if "server" not in holder:
        raise BenchmarkError("sweep server failed to start in time")
    return ServerHandle(holder["server"], holder["loop"], thread,
                        holder["address"])


def serve(address: str, *, jobs: int = 0, cache_path: Optional[str] = None,
          retry_limit: Optional[int] = DEFAULT_RETRY_LIMIT,
          log: Optional[IO[str]] = None) -> int:
    """Run a sweep server in the foreground until interrupted.

    The ``python -m repro.bench --serve`` / ``python -m repro.service``
    entry point.  SIGTERM and Ctrl-C both unwind through the normal stop
    path (transport → runner/pool → store), so the cache journal ends on
    a complete record.
    """
    from repro.bench.executor import sigterm_interrupts

    async def main() -> None:
        server = SweepServer(jobs=jobs, cache_path=cache_path,
                             retry_limit=retry_limit, log=log)
        bound = await server.start(address)
        print(f"sweep server listening on {bound}", flush=True)
        try:
            await asyncio.Event().wait()   # until KeyboardInterrupt
        finally:
            await server.stop()

    try:
        with sigterm_interrupts():
            asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0
