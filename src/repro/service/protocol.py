"""Wire format and cache-key derivation for the sweep service.

Transport is newline-delimited JSON ("NDJSON"): one frame per line, each
frame a JSON object with an ``op`` discriminator.  NDJSON keeps the
protocol inspectable with ``nc`` and the reader trivially incremental —
the same property the format-3 journal exploits — and every value that
crosses the wire is built from frozen dataclasses of primitives, so the
codec is a plain ``asdict``/reconstruct round-trip with no pickle.

Client → server frames::

    {"op": "sweep", "id": N, "machine": ..., "operation": ..., "nprocs": ...,
     "settings": {...}, "cells": [{"stack": {...}, "size": S}, ...]}
    {"op": "ping"}

Server → client frames (streamed, completion order)::

    {"op": "cell",  "id": N, "key": "stack|size", "t": ..., "cached": bool,
     "stats": {...} | null}
    {"op": "abort", "id": N, "key": ..., "deaths": ..., "reason": ...}
    {"op": "cell_error", "id": N, "key": ..., "message": ...}
    {"op": "end",   "id": N, "cells": ..., "cache_hits": ...}
    {"op": "error", "id": N | null, "message": ...}
    {"op": "pong",  "counters": {...}}

The **cache key** is the content address of one sweep cell: a blake2b
digest over the canonical JSON of everything the measured time is a
function of — machine, operation, nprocs, the measurement settings, the
full stack (tuning included), the message size, and the fault plan
(whose seed covers the "seed" of the cell identity).  It promotes the
journal's per-record blake2b integrity key into an *identity* key: the
server's result cache is a format-3 journal whose cell keys are these
digests, so every cached entry is both content-addressed and
checksummed with the same primitive.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import IO, Any, Optional

from repro.bench.imb import CellStats, ImbSettings
from repro.coll.tuning import Tuning
from repro.errors import BenchmarkError
from repro.faults.plan import FaultPlan, FaultRule
from repro.mpi.stacks import Stack

__all__ = ["cache_key", "context_fingerprint", "encode_stack",
           "decode_stack", "encode_settings", "decode_settings",
           "encode_stats", "decode_stats", "parse_address", "format_frame",
           "parse_frame", "read_frames", "ProtocolError"]


class ProtocolError(BenchmarkError):
    """A malformed or out-of-protocol frame."""


# -- dataclass round-trips ---------------------------------------------------

def encode_stack(stack: Stack) -> dict:
    """A :class:`Stack` (tuning included) as a JSON-able dict."""
    return asdict(stack)


def decode_stack(data: dict) -> Stack:
    try:
        return Stack(**{**data, "tuning": Tuning(**data["tuning"])})
    except (KeyError, TypeError) as err:
        raise ProtocolError(f"bad stack on the wire: {err}") from err


def _encode_fault_plan(plan: Optional[FaultPlan]) -> Optional[dict]:
    if plan is None:
        return None
    return {"seed": plan.seed, "rules": [asdict(r) for r in plan.rules]}


def _decode_fault_plan(data: Optional[dict]) -> Optional[FaultPlan]:
    if data is None:
        return None
    try:
        return FaultPlan([FaultRule(**r) for r in data["rules"]],
                         seed=data["seed"])
    except (KeyError, TypeError) as err:
        raise ProtocolError(f"bad fault plan on the wire: {err}") from err


def encode_settings(settings: ImbSettings) -> dict:
    """An :class:`ImbSettings` (fault plan included) as a JSON-able dict."""
    return {
        "warmups": settings.warmups,
        "max_iterations": settings.max_iterations,
        "target_bytes": settings.target_bytes,
        "off_cache": bool(settings.off_cache),
        "root": settings.root,
        "fault_plan": _encode_fault_plan(settings.fault_plan),
    }


def decode_settings(data: dict) -> ImbSettings:
    try:
        return ImbSettings(
            warmups=data["warmups"],
            max_iterations=data["max_iterations"],
            target_bytes=data["target_bytes"],
            off_cache=data["off_cache"],
            root=data["root"],
            fault_plan=_decode_fault_plan(data.get("fault_plan")),
        )
    except (KeyError, TypeError) as err:
        raise ProtocolError(f"bad settings on the wire: {err}") from err


def encode_stats(stats: Optional[CellStats]) -> Optional[dict]:
    return None if stats is None else asdict(stats)


def decode_stats(data: Optional[dict]) -> Optional[CellStats]:
    if data is None:
        return None
    try:
        return CellStats(**data)
    except TypeError as err:
        raise ProtocolError(f"bad cell stats on the wire: {err}") from err


# -- content addressing ------------------------------------------------------

def context_fingerprint(machine: str, operation: str, nprocs: int,
                        settings: ImbSettings) -> str:
    """Canonical JSON of a sweep's execution context (cells share it)."""
    return json.dumps({
        "machine": machine,
        "operation": operation,
        "nprocs": nprocs,
        "settings": encode_settings(settings),
    }, sort_keys=True, separators=(",", ":"))


def cache_key(machine: str, operation: str, nprocs: int,
              settings: ImbSettings, stack: Stack, size: int) -> str:
    """Content address of one sweep cell (blake2b-128 hex digest).

    Covers every input the measured time is a function of; two cells
    collide exactly when the simulation would be bit-identical, which is
    what makes the digest safe to use as the dedupe/cache identity.
    """
    token = json.dumps({
        "ctx": json.loads(context_fingerprint(
            machine, operation, nprocs, settings)),
        "stack": encode_stack(stack),
        "size": size,
    }, sort_keys=True, separators=(",", ":")).encode()
    return hashlib.blake2b(token, digest_size=16).hexdigest()


# -- address parsing ---------------------------------------------------------

def parse_address(address: str) -> tuple:
    """``("tcp", host, port)`` or ``("unix", path)`` for an address string.

    ``host:port`` (port numeric) is TCP; anything containing a path
    separator — or ending in ``.sock`` — is a unix-domain socket path.
    """
    if "/" in address or address.endswith(".sock"):
        return ("unix", address)
    host, sep, port = address.rpartition(":")
    if sep and port.isdigit():
        return ("tcp", host or "127.0.0.1", int(port))
    raise BenchmarkError(
        f"bad service address {address!r}: expected host:port or a unix "
        f"socket path")


# -- framing -----------------------------------------------------------------

def format_frame(frame: dict) -> bytes:
    """One NDJSON wire line for a frame dict."""
    return (json.dumps(frame, sort_keys=True,
                       separators=(",", ":")) + "\n").encode()


def parse_frame(line: bytes) -> dict:
    try:
        frame = json.loads(line)
    except ValueError as err:
        raise ProtocolError(f"bad frame on the wire: {err}") from err
    if not isinstance(frame, dict) or not isinstance(frame.get("op"), str):
        raise ProtocolError(f"frame without an op: {line[:80]!r}")
    return frame


def read_frames(fh: IO[bytes]) -> Any:
    """Yield frames from a blocking binary stream until EOF (client side)."""
    for line in fh:
        if line.strip():
            yield parse_frame(line)
