"""Sweep-as-a-service: a persistent sweep server and its client.

The paper's core argument is amortization: KNEM's per-call setup
(region registration, cookie exchange) is hoisted into standing state so
repeated collectives pay only the copy.  This package applies the same
move to the harness itself.  A long-running server keeps the fork-once
warm pool, the per-spec memo caches, and a content-addressed result
cache alive across sweeps, so a repeated figure reproduction pays
neither process startup nor recomputation — ``python -m repro.bench``
becomes one client among many (``--serve`` / ``--connect``).

Components (scheduler / store / transport are deliberately separable):

- :mod:`repro.service.protocol` — wire codec: newline-delimited JSON
  frames, dataclass round-trips, and the content-addressed cache key.
- :mod:`repro.service.store` — :class:`ResultStore`, the cache layered
  on a format-3 JSONL journal keyed by cache key.
- :mod:`repro.service.runner` — :class:`PoolRunner`, the thread that
  owns the persistent :class:`~repro.bench.executor.WarmPool` and runs
  batched cache misses on it.
- :mod:`repro.service.server` — the asyncio transport multiplexing
  concurrent clients and deduping in-flight cells.
- :mod:`repro.service.client` — the blocking client used by
  :func:`repro.bench.harness.run_sweep`'s ``service=`` path.
"""

from repro.service.client import CellResult, ServiceClient
from repro.service.protocol import cache_key
from repro.service.server import ServerHandle, SweepServer, serve

__all__ = ["CellResult", "ServiceClient", "ServerHandle", "SweepServer",
           "cache_key", "serve"]
