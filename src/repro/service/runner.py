"""The compute side of the sweep service: a thread owning the warm pool.

The asyncio transport must never block on a simulation, so cache misses
cross a plain :class:`queue.Queue` into one ``PoolRunner`` thread that
owns the **persistent** :class:`~repro.bench.executor.WarmPool` for the
server's whole life — the fork-once amortization the ROADMAP asks for.
Each drain of the queue is batched and grouped by execution context
(machine, operation, nprocs, settings), and each group runs through the
*existing* :func:`~repro.bench.executor.run_cells` machinery with
``pool=`` — chunked dispatch, EWMA cost model, quarantine ladder and all
— tagged with a fresh pool generation so a torn-down run's late flushes
can never contaminate the next one.

Two same-group cells whose ``stack.name|size`` label collides (same
stack name, different tuning — distinct cache keys) cannot share one
``run_cells`` call, whose result labels are exactly those strings; the
later cell is deferred to the next batch instead.

Completion callbacks are marshalled back to the event loop with
``call_soon_threadsafe``; the runner never touches asyncio state
directly.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.bench.chunking import DEFAULT_RETRY_LIMIT, CellAborted
from repro.bench.executor import WarmPool, _run_cell, resolve_jobs, run_cells

__all__ = ["ComputeJob", "PoolRunner"]


@dataclass
class ComputeJob:
    """One cache-miss cell queued for the pool.

    ``done(outcome)`` is called from the runner thread with ``(t, stats)``
    on success, a :class:`CellAborted` on quarantine, or an exception on
    failure — the server wraps it in ``call_soon_threadsafe``.
    """

    key: str                    # content-addressed cache key
    ctx_token: str              # context fingerprint (grouping only)
    machine: str
    operation: str
    nprocs: int
    settings: Any
    stack: Any
    size: int
    done: Callable[[Any], None] = field(default=lambda outcome: None)

    @property
    def label(self) -> str:
        return f"{self.stack.name}|{self.size}"


class PoolRunner:
    """Batches queued cells onto one persistent warm pool.

    ``jobs`` follows ``--jobs`` semantics (0 = one worker per CPU);
    ``jobs=1`` runs cells serially in the runner thread itself — no
    fork, useful for tests and single-core hosts.  The pool is created
    lazily on the first computed batch, so a server whose every request
    hits the cache never forks at all.
    """

    def __init__(self, jobs: int = 0,
                 retry_limit: Optional[int] = DEFAULT_RETRY_LIMIT):
        self._jobs = resolve_jobs(jobs)
        self._retry_limit = retry_limit
        self._queue: queue.Queue = queue.Queue()
        self._pool: Optional[WarmPool] = None
        self._chunk_base = 0
        self._thread: Optional[threading.Thread] = None
        #: cells computed by this runner (the server's "did the pool run"
        #: counter — cache hits never reach it)
        self.cells_computed = 0
        self.batches = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-sweep-pool", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Drain-stop the runner and shut the pool down (idempotent)."""
        if self._thread is None:
            return
        self._queue.put(None)
        self._thread.join(timeout=30.0)
        self._thread = None

    def submit(self, job: ComputeJob) -> None:
        self._queue.put(job)

    # -- runner thread -----------------------------------------------------

    def _ensure_pool(self) -> Optional[WarmPool]:
        if self._jobs <= 1:
            return None
        if self._pool is None:
            self._pool = WarmPool(self._jobs)
        return self._pool

    def _run(self) -> None:
        stop = False
        try:
            while not stop:
                job = self._queue.get()
                if job is None:
                    return
                batch = [job]
                while True:
                    try:
                        nxt = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if nxt is None:
                        stop = True
                        break
                    batch.append(nxt)
                deferred = self._run_batch(batch)
                for j in deferred:
                    self._queue.put(j)
        finally:
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None

    def _run_batch(self, batch: list) -> list:
        """Run one drained batch; returns label-collision deferrals."""
        self.batches += 1
        groups: dict[str, list[ComputeJob]] = {}
        for job in batch:
            groups.setdefault(job.ctx_token, []).append(job)
        deferred: list[ComputeJob] = []
        for jobs in groups.values():
            by_label: dict[str, ComputeJob] = {}
            for job in jobs:
                if job.label in by_label:
                    deferred.append(job)
                else:
                    by_label[job.label] = job
            self._run_group(by_label)
        return deferred

    def _run_group(self, by_label: dict) -> None:
        jobs = list(by_label.values())
        first = jobs[0]
        pool = self._ensure_pool()
        if pool is None:
            # Serial in-thread path (jobs=1): same _run_cell the serial
            # sweep and the pool workers use, so times stay identical.
            for job in jobs:
                try:
                    _key, t, stats = _run_cell(
                        (job.machine, job.stack, job.nprocs, job.operation,
                         job.size, job.settings))
                    self.cells_computed += 1
                    job.done((t, stats))
                except BaseException as exc:
                    job.done(exc)
            return
        report: dict = {}
        pending = dict(by_label)
        producer = run_cells(
            first.machine, first.operation, first.nprocs, first.settings,
            [(job.stack, job.size) for job in jobs],
            jobs=0, report=report, retry_limit=self._retry_limit,
            pool=pool, chunk_base=self._chunk_base)
        try:
            for label, t, stats in producer:
                job = pending.pop(label, None)
                if job is None:  # pragma: no cover - first-wins duplicate
                    continue
                if isinstance(t, CellAborted):
                    job.done(t)
                else:
                    self.cells_computed += 1
                    job.done((t, stats))
        except BaseException as exc:
            # A worker error fails every cell still pending in the group;
            # the pool survives (run_cells leaves external pools running).
            for job in pending.values():
                job.done(exc)
            pending.clear()
        finally:
            producer.close()
            self._chunk_base += report.get("chunks", 0)
