"""Core-to-core distances and locality grouping.

Distance between two cores is a small integer reflecting how far apart their
shared resources are (the further the ancestor, the slower the traffic):

====  =============================================
 0    same core
 1    same innermost shared cache (e.g. Zoot L2 pair)
 2    same socket / last-level cache
 3    same memory domain (multi-socket domain)
 4    same board (different domains)
 5    different boards
====  =============================================

The KNEM collective component uses these distances (and
:func:`group_by_domain`) to build the two-level hierarchy of Figure 1 and to
pick leaders close to the data.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.spec import MachineSpec
from repro.topology.objects import Topology

__all__ = ["DistanceMatrix", "group_by_domain", "leader_order"]


#: Shared per-spec matrices (see :meth:`DistanceMatrix.for_spec`).
_DISTANCE_CACHE: dict[MachineSpec, "DistanceMatrix"] = {}


class DistanceMatrix:
    """Pairwise distance lookup with a precomputed numpy matrix."""

    @classmethod
    def for_spec(cls, spec: MachineSpec) -> "DistanceMatrix":
        """Memoized shared instance for ``spec``.

        The O(n_cores²) common-ancestor walk dominates Machine construction
        on IG (48 cores); the result depends only on the frozen spec, so
        repeated sweep cells share one matrix (marked read-only to keep the
        sharing safe).
        """
        dm = _DISTANCE_CACHE.get(spec)
        if dm is None:
            dm = _DISTANCE_CACHE[spec] = cls(Topology.for_spec(spec))
        return dm

    def __init__(self, topology: Topology):
        self.topology = topology
        spec = topology.spec
        n = spec.n_cores
        m = np.zeros((n, n), dtype=np.int8)
        for a in range(n):
            for b in range(a + 1, n):
                m[a, b] = m[b, a] = self._distance(spec, topology, a, b)
        m.flags.writeable = False
        self.matrix = m

    @staticmethod
    def _distance(spec: MachineSpec, topo: Topology, a: int, b: int) -> int:
        if a == b:
            return 0
        anc = topo.common_ancestor(a, b)
        if anc.type == "cache":
            # Innermost shared cache = 1; outer (LLC) = 2.  With one cache
            # level both collapse to 2 unless the level is the innermost.
            inner_most = anc.attrs["level"] == min(c.level for c in spec.caches)
            return 1 if inner_most and len(spec.caches) > 1 else 2
        if anc.type == "socket":
            return 2
        if spec.core_domain(a) == spec.core_domain(b):
            return 3
        if anc.type == "board":
            return 4
        return 5

    def __call__(self, a: int, b: int) -> int:
        return int(self.matrix[a, b])

    def nearest(self, core: int, candidates: list[int]) -> int:
        """The candidate closest to ``core`` (ties broken by index)."""
        if not candidates:
            raise ValueError("nearest() with no candidates")
        return min(candidates, key=lambda c: (self.matrix[core, c], c))


def group_by_domain(spec: MachineSpec, cores: list[int]) -> dict[int, list[int]]:
    """Split cores into the paper's NUMA "sets" (Figure 1), keyed by domain."""
    groups: dict[int, list[int]] = {}
    for c in cores:
        groups.setdefault(spec.core_domain(c), []).append(c)
    return {d: sorted(g) for d, g in sorted(groups.items())}


def leader_order(spec: MachineSpec, root_core: int, domains: list[int]) -> list[int]:
    """Order domains for the first tree level: root's domain first, then by
    link-hop proximity to it (boards interleave naturally on IG)."""
    root_domain = spec.core_domain(root_core)

    def hops(d: int) -> int:
        if d == root_domain:
            return 0
        # hop count via the link graph is 1 within a board mesh, more across
        # boards; approximate with board membership to stay spec-only.
        boards = {spec.socket_board[s]
                  for s, dom in enumerate(spec.socket_domain) if dom == d}
        root_boards = {
            spec.socket_board[s]
            for s, dom in enumerate(spec.socket_domain)
            if dom == root_domain
        }
        return 1 if boards & root_boards else 2

    return sorted(domains, key=lambda d: (hops(d), d))
