"""hwloc-style topology discovery over a :class:`~repro.hardware.spec.MachineSpec`.

The paper's KNEM collective component builds its NUMA-aware communication
trees from Hardware Locality (hwloc [16]) information: which cores share a
cache, which share a NUMA node, which sit on the same board.  This package
provides the same queries against the simulated machine:

- :class:`~repro.topology.objects.Topology` — the object tree
  (Machine > Board > Socket > NumaNode > Cache > Core);
- :mod:`~repro.topology.distance` — core-to-core distance matrix and
  locality grouping (the "sets" of Figure 1);
- :mod:`~repro.topology.binding` — rank-to-core binding policies.
"""

from repro.topology.binding import BINDINGS, bind_ranks
from repro.topology.distance import DistanceMatrix, group_by_domain
from repro.topology.objects import Topology, TopologyObject

__all__ = [
    "Topology",
    "TopologyObject",
    "DistanceMatrix",
    "group_by_domain",
    "bind_ranks",
    "BINDINGS",
]
