"""The topology object tree (hwloc-alike).

Object types, from root to leaves::

    machine > board > socket > numanode-view > cache levels > core

Each object knows its type, logical index, the machine cores it spans
(``cpuset``), its parent, and its children.  The tree is derived entirely
from the :class:`~repro.hardware.spec.MachineSpec`, mirroring what hwloc
would report on the real machine.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import HardwareConfigError
from repro.hardware.spec import MachineSpec

__all__ = ["TopologyObject", "Topology", "OBJECT_TYPES"]

#: Object types in root-to-leaf order ("numanode" binds to the memory domain).
OBJECT_TYPES = ("machine", "board", "socket", "cache", "core")


class TopologyObject:
    """One node of the topology tree."""

    __slots__ = ("type", "index", "cpuset", "parent", "children", "attrs")

    def __init__(
        self,
        type: str,
        index: int,
        cpuset: tuple[int, ...],
        parent: Optional["TopologyObject"] = None,
        **attrs,
    ):
        if type not in OBJECT_TYPES:
            raise HardwareConfigError(f"unknown topology object type {type!r}")
        self.type = type
        self.index = index
        self.cpuset = cpuset
        self.parent = parent
        self.children: list[TopologyObject] = []
        self.attrs = attrs
        if parent is not None:
            parent.children.append(self)

    @property
    def depth(self) -> int:
        d, obj = 0, self
        while obj.parent is not None:
            d += 1
            obj = obj.parent
        return d

    def walk(self) -> Iterator["TopologyObject"]:
        """Depth-first pre-order traversal of this subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def ancestors(self) -> Iterator["TopologyObject"]:
        obj = self.parent
        while obj is not None:
            yield obj
            obj = obj.parent

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.type}#{self.index} cpuset={self.cpuset}>"


#: Shared per-spec topology trees (see :meth:`Topology.for_spec`).
_TOPOLOGY_CACHE: dict[MachineSpec, "Topology"] = {}


class Topology:
    """Discovered topology of a machine; query object by hwloc-like calls."""

    @classmethod
    def for_spec(cls, spec: MachineSpec) -> "Topology":
        """Memoized shared instance for ``spec``.

        The tree is immutable after construction (nothing in the runtime
        mutates TopologyObject state), so every Machine built from the same
        frozen spec can share one discovery pass.  Use the constructor
        directly if a private mutable tree is ever needed.
        """
        topo = _TOPOLOGY_CACHE.get(spec)
        if topo is None:
            topo = _TOPOLOGY_CACHE[spec] = cls(spec)
        return topo

    def __init__(self, spec: MachineSpec):
        self.spec = spec
        self.root = TopologyObject("machine", 0, tuple(range(spec.n_cores)),
                                   name=spec.name)
        boards: dict[int, TopologyObject] = {}
        for b in range(spec.n_boards):
            cores = tuple(
                c
                for s in range(spec.n_sockets)
                if spec.socket_board[s] == b
                for c in spec.cores_of_socket(s)
            )
            boards[b] = TopologyObject("board", b, cores, parent=self.root)
        self.sockets: list[TopologyObject] = []
        for s in range(spec.n_sockets):
            sock = TopologyObject(
                "socket",
                s,
                tuple(spec.cores_of_socket(s)),
                parent=boards[spec.socket_board[s]],
                domain=spec.socket_domain[s],
            )
            self.sockets.append(sock)
        # Cache levels inside each socket, widest scope first.
        self._cores: list[TopologyObject] = [None] * spec.n_cores  # type: ignore
        for sock in self.sockets:
            self._grow_caches(sock, list(spec.caches)[::-1], list(sock.cpuset))

    def _grow_caches(self, parent: TopologyObject, caches: list,
                     cores: list[int]) -> None:
        if not caches:
            for c in cores:
                self._cores[c] = TopologyObject(
                    "core", c, (c,), parent=parent, domain=self.spec.core_domain(c)
                )
            return
        cache, rest = caches[0], caches[1:]
        seen: set[tuple[int, ...]] = set()
        for c in cores:
            group = tuple(g for g in self.spec.cache_group(c, cache) if g in set(cores))
            if group in seen:
                continue
            seen.add(group)
            obj = TopologyObject(
                "cache",
                len(seen) - 1,
                group,
                parent=parent,
                level=cache.level,
                size=cache.size,
            )
            self._grow_caches(obj, rest, list(group))

    # -- queries --------------------------------------------------------------
    def core(self, index: int) -> TopologyObject:
        if not 0 <= index < len(self._cores):
            raise HardwareConfigError(f"core {index} out of range")
        return self._cores[index]

    def objects(self, type: str) -> list[TopologyObject]:
        return [o for o in self.root.walk() if o.type == type]

    def common_ancestor(self, core_a: int, core_b: int) -> TopologyObject:
        """Lowest common ancestor of two cores (hwloc's distance anchor)."""
        path_a = [self.core(core_a)] + list(self.core(core_a).ancestors())
        in_a = set(map(id, path_a))
        for obj in [self.core(core_b)] + list(self.core(core_b).ancestors()):
            if id(obj) in in_a:
                return obj
        raise HardwareConfigError("disconnected topology tree")  # pragma: no cover

    def render(self) -> str:
        """ASCII rendering of the tree (used by the topology explorer example)."""
        lines: list[str] = []

        def emit(obj: TopologyObject, indent: int) -> None:
            extra = ""
            if obj.type == "cache":
                extra = f" L{obj.attrs['level']} {obj.attrs['size'] // (1024 * 1024)}MB"
            if obj.type in ("socket", "core") and "domain" in obj.attrs:
                extra = f" domain={obj.attrs['domain']}"
            if obj.type == "core":
                lines.append("  " * indent + f"core {obj.index}{extra}")
            else:
                span = f"[{obj.cpuset[0]}-{obj.cpuset[-1]}]" if obj.cpuset else "[]"
                lines.append("  " * indent + f"{obj.type} {obj.index} {span}{extra}")
                for child in obj.children:
                    emit(child, indent + 1)

        emit(self.root, 0)
        return "\n".join(lines)
