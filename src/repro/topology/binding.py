"""Rank-to-core binding policies.

The paper pins one MPI process per physical core and keeps the mapping
identical across all compared MPI implementations ("the mapping between
physical cores and MPI processes is identical, regardless of the MPI
implementation used").  The default ``linear`` policy reproduces that:
rank *r* on core *r* (socket-major), which also matches how ``mpirun
--bind-to core`` lays ranks out on these machines.

``scatter`` (round-robin across sockets) is provided for experiments on
binding sensitivity.
"""

from __future__ import annotations

from repro.errors import HardwareConfigError
from repro.hardware.spec import MachineSpec

__all__ = ["bind_ranks", "BINDINGS"]


def _linear(spec: MachineSpec, n: int) -> list[int]:
    return list(range(n))


def _scatter(spec: MachineSpec, n: int) -> list[int]:
    order: list[int] = []
    per_socket = [list(spec.cores_of_socket(s)) for s in range(spec.n_sockets)]
    i = 0
    while len(order) < spec.n_cores:
        for sock in per_socket:
            if i < len(sock):
                order.append(sock[i])
        i += 1
    return order[:n]


BINDINGS = {"linear": _linear, "scatter": _scatter}


def bind_ranks(spec: MachineSpec, n_ranks: int, policy: str = "linear") -> list[int]:
    """Return the core bound to each rank (index = rank).

    One process per core, as in the paper's runs; oversubscription is
    rejected because the simulation's copy-engine model assumes a dedicated
    core per process.
    """
    if n_ranks <= 0:
        raise HardwareConfigError(f"need at least one rank, got {n_ranks}")
    if n_ranks > spec.n_cores:
        raise HardwareConfigError(
            f"{n_ranks} ranks oversubscribe {spec.name} ({spec.n_cores} cores)"
        )
    try:
        fn = BINDINGS[policy]
    except KeyError:
        raise HardwareConfigError(
            f"unknown binding policy {policy!r}; available: {sorted(BINDINGS)}"
        ) from None
    cores = fn(spec, n_ranks)
    if len(set(cores)) != len(cores):
        raise HardwareConfigError(  # pragma: no cover
            "binding produced duplicate cores")
    return cores
