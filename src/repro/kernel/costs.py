"""Kernel cost model.

The paper's Section V-A motivates the 16 KB switch-point with the overhead
of trapping into kernel mode ("about 100 ns on modern processors"); region
registration additionally pins user pages.  These constants are the knobs
the KNEM driver and the shared-memory layer charge before any bytes move.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KernelError
from repro.units import NS, US

__all__ = ["KernelCosts", "PAGE_SIZE"]

#: x86 base page size; KNEM pins user buffers page by page.
PAGE_SIZE = 4096


@dataclass(frozen=True)
class KernelCosts:
    """Tunable kernel overheads (seconds).

    ``syscall`` — one user->kernel->user round trip (ioctl).
    ``region_base`` — fixed part of declaring a KNEM region.
    ``page_pin`` — per-page get_user_pages cost while registering.
    ``page_unpin`` — per-page release cost at deregistration.
    ``copy_setup`` — per-copy kernel-side setup (descriptor walk).
    ``dma_setup`` — extra descriptor programming for I/OAT offload.
    ``mailbox_write`` — store+flush of a small shared-memory mailbox slot.
    ``poll_interval`` — granularity at which blocked processes re-poll
        shared flags (models the progression loop of the MPI library).
    """

    syscall: float = 100 * NS
    region_base: float = 150 * NS
    page_pin: float = 25 * NS
    page_unpin: float = 8 * NS
    copy_setup: float = 120 * NS
    dma_setup: float = 1 * US
    mailbox_write: float = 60 * NS
    poll_interval: float = 200 * NS

    def __post_init__(self) -> None:
        for name in (
            "syscall",
            "region_base",
            "page_pin",
            "page_unpin",
            "copy_setup",
            "dma_setup",
            "mailbox_write",
            "poll_interval",
        ):
            if getattr(self, name) < 0:
                raise KernelError(f"kernel cost {name} must be >= 0")

    def pin_time(self, nbytes: int) -> float:
        """Registration cost of an ``nbytes`` region (base + per-page pin)."""
        pages = (nbytes + PAGE_SIZE - 1) // PAGE_SIZE
        return self.region_base + pages * self.page_pin

    def unpin_time(self, nbytes: int) -> float:
        pages = (nbytes + PAGE_SIZE - 1) // PAGE_SIZE
        return pages * self.page_unpin
