"""Simulated operating-system services.

- :mod:`repro.kernel.costs` — syscall / page-pinning cost model (the paper
  quotes ~100 ns to trap into the kernel, Section V-A);
- :mod:`repro.kernel.shm` — System-V-style shared memory: mailboxes for
  small out-of-band messages and FIFO segments for copy-in/copy-out;
- :mod:`repro.kernel.knem` — the KNEM driver: persistent region
  registration with cookies, direction control (read/write), partial-region
  copies, asynchronous copies, and I/OAT DMA offload (Section III).
"""

from repro.kernel.costs import KernelCosts
from repro.kernel.knem import KnemDriver, KnemRegion, PROT_READ, PROT_WRITE
from repro.kernel.shm import Mailbox, ShmWorld, mailbox_latency

__all__ = [
    "KernelCosts",
    "KnemDriver",
    "KnemRegion",
    "PROT_READ",
    "PROT_WRITE",
    "ShmWorld",
    "Mailbox",
    "mailbox_latency",
]
