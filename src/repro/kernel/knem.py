"""The simulated KNEM driver.

Mirrors the KNEM ≥ 0.7 programming interface the paper relies on
(Section III): persistent **region** registration returning a *cookie*,
**direction control** via region protection flags (read for
receiver-reading, write for sender-writing), **partial access** at arbitrary
offsets (granularity control for pipelining), **asynchronous** copies, and
optional **I/OAT DMA offload**.

Driver entry points are generators: callers ``yield from`` them inside a
simulated process so syscall and copy time are charged to the calling core
— the property the paper's collective algorithms exploit (the process that
issues the ioctl is the one whose core performs the in-kernel memcpy).

The security model matches Section III: any process may attempt a copy with
any cookie; a stale/forged cookie raises :class:`KnemInvalidCookie`, a copy
against the region's protection raises :class:`KnemPermissionError` — both
modelled as the corresponding ioctl errors, charged one syscall.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.errors import (
    FaultInjected,
    KnemBoundsError,
    KnemInvalidCookie,
    KnemPermissionError,
)
from repro.faults.health import KnemHealth
from repro.faults.plan import FaultPlan
from repro.hardware.memory import MemorySystem, SimBuffer
from repro.kernel.costs import KernelCosts
from repro.simtime.core import Event, Simulator
from repro.simtime.trace import Tracer

__all__ = ["PROT_READ", "PROT_WRITE", "KnemRegion", "KnemDriver"]

PROT_READ = 0x1
PROT_WRITE = 0x2

#: Flag for :meth:`KnemDriver.icopy`/``copy`` requesting DMA-engine offload.
FLAG_DMA = 0x100


class KnemRegion:
    """A registered (pinned) memory region addressable by cookie."""

    __slots__ = ("cookie", "owner_core", "buffer", "offset", "length", "prot", "alive")

    def __init__(self, cookie: int, owner_core: int, buffer: SimBuffer,
                 offset: int, length: int, prot: int):
        self.cookie = cookie
        self.owner_core = owner_core
        self.buffer = buffer
        self.offset = offset
        self.length = length
        self.prot = prot
        self.alive = True

    def check(self, offset: int, nbytes: int, want_prot: int) -> None:
        # Liveness is checked FIRST and unconditionally: a dead cookie must
        # always surface as KnemInvalidCookie, never as a permission or
        # bounds error, no matter which partial offset the copy names.
        if not self.alive:
            raise KnemInvalidCookie(f"cookie {self.cookie:#x} already destroyed")
        if not self.prot & want_prot:
            kind = "read" if want_prot == PROT_READ else "write"
            raise KnemPermissionError(
                f"region {self.cookie:#x} does not allow {kind} access"
            )
        if offset < 0 or nbytes < 0 or offset + nbytes > self.length:
            raise KnemBoundsError(
                f"[{offset}, {offset + nbytes}) outside region of length {self.length}"
            )


class KnemDriver:
    """One per machine; all processes share it like the real /dev/knem."""

    def __init__(self, sim: Simulator, mem: MemorySystem,
                 costs: Optional[KernelCosts] = None,
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.mem = mem
        self.costs = costs or KernelCosts()
        self.tracer = tracer or mem.tracer
        self._regions: dict[int, KnemRegion] = {}
        self._cookie_seq = itertools.count(0xA000)
        # statistics the registration-amortization ablation checks
        self.stats_registrations = 0
        self.stats_deregistrations = 0
        self.stats_copies = 0
        self.stats_bytes = 0
        self.stats_failed_ioctls = 0
        self.stats_injected_faults = 0
        self.stats_reclaims = 0
        #: armed :class:`FaultPlan` (None = zero-overhead fast path)
        self.fault_plan: Optional[FaultPlan] = None
        #: armed KNEM-San shadow-memory sanitizer (None = zero-overhead)
        self.sanitizer: Optional[object] = None
        #: degradation bookkeeping consulted by the MPI layers
        self.health = KnemHealth(tracer=self.tracer)

    def _inject(self, op: str, core: int, size: int,
                cookie: Optional[int] = None):
        """Generator: raise an injected fault for ``op`` if the plan says so.

        Charged one syscall like any other rejected ioctl, and recorded as a
        ``knem.fail`` with ``injected=True`` — a distinct error name so the
        cookie-lifecycle checker does not mistake it for a driver-detected
        misuse (use-after-free, double destroy).
        """
        plan = self.fault_plan
        if plan is None or not plan.fire(op, core, size):
            return
        self.stats_failed_ioctls += 1
        self.stats_injected_faults += 1
        fields = {"core": core, "op": op, "error": "FaultInjected",
                  "injected": True}
        if cookie is not None:
            fields["cookie"] = cookie
        self.tracer.emit("knem.fail", **fields)
        yield self.sim.timeout(self.costs.syscall)
        raise plan.exception(op, core, size)

    # -- region lifecycle -------------------------------------------------
    def create_region(self, core: int, buffer: SimBuffer, offset: int,
                      length: int, prot: int):
        """Register ``buffer[offset:offset+length]``; yields cost, returns cookie."""
        if self.fault_plan is not None:
            yield from self._inject("register", core, length)
        if prot & ~(PROT_READ | PROT_WRITE) or prot == 0:
            self.stats_failed_ioctls += 1
            self.tracer.emit("knem.fail", core=core, op="register",
                             error="KnemPermissionError")
            yield self.sim.timeout(self.costs.syscall)
            raise KnemPermissionError(f"bad protection flags {prot:#x}")
        try:
            buffer.check_range(offset, length)
        except Exception as exc:
            self.stats_failed_ioctls += 1
            self.tracer.emit("knem.fail", core=core, op="register",
                             error=type(exc).__name__)
            yield self.sim.timeout(self.costs.syscall)
            raise
        yield self.sim.timeout(self.costs.syscall + self.costs.pin_time(length))
        cookie = next(self._cookie_seq)
        self._regions[cookie] = KnemRegion(cookie, core, buffer, offset, length, prot)
        self.stats_registrations += 1
        if self.sanitizer is not None:
            self.sanitizer.note_register(core, self._regions[cookie])
        tr = self.tracer
        if tr.enabled:
            tr.emit("knem.register", core=core, cookie=cookie,
                    length=length, prot=prot, buf=buffer.id,
                    buf_label=buffer.label, offset=offset)
        else:
            tr.tick("knem.register")
        return cookie

    def destroy_region(self, core: int, cookie: int):
        """Deregister a region (generator; charges syscall + unpin)."""
        if self.fault_plan is not None:
            region = self._regions.get(cookie)
            yield from self._inject("destroy", core,
                                    region.length if region else 0,
                                    cookie=cookie)
        region = self._regions.pop(cookie, None)
        if region is None or not region.alive:
            self.stats_failed_ioctls += 1
            if self.sanitizer is not None:
                self.sanitizer.note_fail(core, cookie, "destroy",
                                         "KnemInvalidCookie")
            self.tracer.emit("knem.fail", core=core, cookie=cookie,
                             op="destroy", error="KnemInvalidCookie")
            yield self.sim.timeout(self.costs.syscall)
            raise KnemInvalidCookie(f"cookie {cookie:#x} is not a live region")
        # The region dies at ioctl entry, before the unpin cost is charged:
        # emit the trace event at the kill point so analyzers see copies
        # attempted after this instant as use-after-deregister.
        if self.sanitizer is not None:
            self.sanitizer.note_destroy(core, region)
        region.alive = False
        self.stats_deregistrations += 1
        tr = self.tracer
        if tr.enabled:
            tr.emit("knem.deregister", core=core, cookie=cookie,
                    buf=region.buffer.id)
        else:
            tr.tick("knem.deregister")
        yield self.sim.timeout(self.costs.syscall
                               + self.costs.unpin_time(region.length))

    def destroy_region_safe(self, core: int, cookie: int):
        """Destroy with one retry against injected faults, then force-reclaim.

        Genuine driver errors (dead cookie = double destroy) still raise —
        only *injected* failures are retried, so the analyzer's lifecycle
        findings keep their meaning on degraded runs.
        """
        for _attempt in (0, 1):
            try:
                yield from self.destroy_region(core, cookie)
                return
            except FaultInjected:
                continue
        self.reclaim(core, cookie)

    def reclaim(self, core: int, cookie: int) -> None:
        """Forcibly release a region, bypassing the (possibly faulty) ioctl.

        Models the kernel's cleanup when the /dev/knem fd closes: it cannot
        fail and charges no simulated time.  Idempotent — reclaiming a
        cookie that is already gone is a no-op, so abort paths can call it
        unconditionally from ``finally`` blocks (which must not yield).
        Emits ``knem.deregister`` so lifecycle checkers see the closure.
        """
        region = self._regions.pop(cookie, None)
        if region is None or not region.alive:
            return
        if self.sanitizer is not None:
            self.sanitizer.note_destroy(core, region, forced=True)
        region.alive = False
        self.stats_deregistrations += 1
        self.stats_reclaims += 1
        tr = self.tracer
        if tr.enabled:
            tr.emit("knem.deregister", core=core, cookie=cookie,
                    buf=region.buffer.id, forced=True)
        else:
            tr.tick("knem.deregister")

    def reclaim_owned(self, core: int) -> list[int]:
        """Reclaim every live region registered by ``core`` (process death).

        Models the kernel sweeping a dead process's /dev/knem fd: all of its
        persistent cookies are released at once, with no simulated cost.
        Returns the reclaimed cookies (deterministic registration order) so
        callers can trace them.
        """
        cookies = [c for c, r in self._regions.items()
                   if r.owner_core == core and r.alive]
        for cookie in cookies:
            self.reclaim(core, cookie)
        return cookies

    def region(self, cookie: int) -> KnemRegion:
        """Kernel-internal lookup (no cost); raises on dead cookies."""
        region = self._regions.get(cookie)
        if region is None or not region.alive:
            raise KnemInvalidCookie(f"cookie {cookie:#x} is not a live region")
        return region

    # -- copies -------------------------------------------------------------
    def icopy(
        self,
        core: int,
        cookie: int,
        region_offset: int,
        local: SimBuffer,
        local_offset: int,
        nbytes: int,
        write: bool,
        flags: int = 0,
    ) -> Event:
        """Asynchronous copy between a region and a local buffer.

        ``write=False`` *reads* the region into ``local`` (receiver-reading);
        ``write=True`` writes ``local`` into the region (sender-writing).
        The returned event fires at completion; the syscall + setup cost is
        **not** included (use :meth:`copy` from process context, or charge
        ``submit_time`` yourself for overlapped submissions).
        """
        region = self._region_checked(cookie, region_offset, nbytes, write)
        local.check_range(local_offset, nbytes)
        if write:
            src, src_off = local, local_offset
            dst, dst_off = region.buffer, region.offset + region_offset
        else:
            src, src_off = region.buffer, region.offset + region_offset
            dst, dst_off = local, local_offset
        self.stats_copies += 1
        self.stats_bytes += nbytes
        tr = self.tracer
        if tr.enabled:
            tr.emit(
                "knem.copy", core=core, cookie=cookie, nbytes=nbytes,
                write=write, dma=bool(flags & FLAG_DMA),
                region_buf=region.buffer.id,
                region_start=region.offset + region_offset,
                local_buf=local.id, local_start=local_offset,
            )
        else:
            tr.tick("knem.copy")
        if flags & FLAG_DMA:
            done = self.mem.dma_copy(src, src_off, dst, dst_off, nbytes,
                                     label="knem-dma")
        else:
            done = self.mem.copy(core, src, src_off, dst, dst_off, nbytes,
                                 kernel=True, label="knem")
        if self.sanitizer is not None:
            self.sanitizer.note_copy(core, region, region_offset, nbytes,
                                     write, done)
        return done

    def copy(
        self,
        core: int,
        cookie: int,
        region_offset: int,
        local: SimBuffer,
        local_offset: int,
        nbytes: int,
        write: bool,
        flags: int = 0,
    ):
        """Synchronous copy (generator): syscall + setup, then the transfer."""
        if self.fault_plan is not None:
            yield from self._inject("copy", core, nbytes, cookie=cookie)
        try:
            done = self.icopy(core, cookie, region_offset, local, local_offset,
                              nbytes, write, flags)
        except Exception as exc:
            self.stats_failed_ioctls += 1
            if self.sanitizer is not None:
                self.sanitizer.note_fail(core, cookie, "copy",
                                         type(exc).__name__,
                                         nbytes=nbytes, write=write)
            self.tracer.emit("knem.fail", core=core, cookie=cookie, op="copy",
                             error=type(exc).__name__, write=write,
                             nbytes=nbytes)
            yield self.sim.timeout(self.costs.syscall)
            raise
        setup = self.costs.syscall + self.costs.copy_setup
        if flags & FLAG_DMA:
            setup += self.costs.dma_setup
        yield self.sim.timeout(setup)
        yield done

    def submit_time(self, flags: int = 0) -> float:
        """Cost of submitting an asynchronous copy from process context."""
        t = self.costs.syscall + self.costs.copy_setup
        if flags & FLAG_DMA:
            t += self.costs.dma_setup
        return t

    # -- internals ------------------------------------------------------------
    def _region_checked(self, cookie: int, offset: int, nbytes: int,
                        write: bool) -> KnemRegion:
        region = self.region(cookie)
        region.check(offset, nbytes, PROT_WRITE if write else PROT_READ)
        return region

    @property
    def live_regions(self) -> int:
        return len(self._regions)
