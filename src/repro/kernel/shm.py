"""Shared-memory segments: mailboxes and FIFO fragment pools.

Two distinct uses, matching the two roles shared memory plays in the paper:

1. **Mailboxes** carry small control messages (match headers, KNEM cookies,
   synchronization flags).  Their cost is a cache-line ping between cores —
   a latency that grows with topological distance — not a bandwidth cost.
   The KNEM collective component uses the SM BTL "only as an out of band
   channel for synchronization or delivering cookies" (Section V-A).

2. **FIFO segments** are the pre-allocated exchange zones of the
   copy-in/copy-out transport (Open MPI SM BTL / MPICH2 Nemesis).  They are
   real :class:`~repro.hardware.memory.SimBuffer` objects, so copies through
   them consume memory bandwidth twice and pollute caches — the effect the
   paper identifies as the core drawback of the double-copy approach.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import ShmError
from repro.faults.plan import FaultPlan
from repro.hardware.memory import MemorySystem, SimBuffer
from repro.hardware.spec import MachineSpec
from repro.kernel.costs import KernelCosts
from repro.simtime.core import Event, Simulator
from repro.simtime.primitives import Channel, Semaphore
from repro.simtime.trace import Tracer
from repro.units import NS

__all__ = ["mailbox_latency", "Mailbox", "FifoSegment", "ShmWorld"]


def mailbox_latency(spec: MachineSpec, core_a: int, core_b: int) -> float:
    """Cache-line transfer latency between two cores.

    Calibrated to era-typical core-to-core latencies: ~60 ns within a shared
    cache, ~120 ns across sockets in one coherence domain, plus the NUMA
    link latency when domains differ (doubled for the request/response pair
    of a coherence miss).
    """
    if core_a == core_b:
        return 20 * NS
    sa, sb = spec.core_socket(core_a), spec.core_socket(core_b)
    if sa == sb:
        return 60 * NS
    da, db = spec.core_domain(core_a), spec.core_domain(core_b)
    if da == db:
        return 120 * NS
    hop = 150 * NS
    return 120 * NS + 2 * hop * (1 + abs(spec.socket_board[sa] - spec.socket_board[sb]))


class Mailbox:
    """A small-message channel into one process (control traffic only).

    ``post`` charges the sender the store cost and delivers the payload
    after the core-to-core latency; ``recv`` blocks the receiver until a
    message is available (the poll granularity models the MPI progression
    loop's busy-wait).
    """

    def __init__(self, sim: Simulator, spec: MachineSpec, owner_core: int,
                 costs: KernelCosts, name: str = "mbox",
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.spec = spec
        self.owner_core = owner_core
        self.costs = costs
        self.name = name
        self.tracer = tracer or Tracer()
        self._channel = Channel(sim, name=name)
        self.posted = 0

    def post(self, sender_core: int, payload: Any):
        """Sender-side deposit; generator (``yield from``), returns None."""
        self.posted += 1
        tr = self.tracer
        if tr.enabled:
            tr.emit("shm.post", box=self.name, src_core=sender_core,
                    dst_core=self.owner_core)
        else:
            tr.tick("shm.post")
        yield self.sim.timeout(self.costs.mailbox_write)
        delay = mailbox_latency(self.spec, sender_core, self.owner_core)
        self.sim.schedule(delay, lambda: self._channel.put(payload))

    def post_nowait(self, sender_core: int, payload: Any) -> None:
        """Fire-and-forget variant for completion callbacks (no sender cost)."""
        self.posted += 1
        tr = self.tracer
        if tr.enabled:
            tr.emit("shm.post", box=self.name, src_core=sender_core,
                    dst_core=self.owner_core)
        else:
            tr.tick("shm.post")
        delay = self.costs.mailbox_write + mailbox_latency(
            self.spec, sender_core, self.owner_core
        )
        self.sim.schedule(delay, lambda: self._channel.put(payload))

    def recv(self) -> Event:
        """Event yielding the next payload (FIFO order)."""
        return self._channel.get()

    def __len__(self) -> int:
        return len(self._channel)


class FifoSegment:
    """A ring of fixed-size fragments shared by one sender-receiver pair.

    The segment's backing buffer is homed on the **receiver's** memory
    domain (Open MPI's SM BTL maps per-receiver FIFOs, first-touched by the
    receiver).  Slot bookkeeping is a semaphore: the sender acquires a free
    slot, copies a fragment in, and hands the slot index to the receiver's
    mailbox; the receiver copies out and releases the slot.
    """

    def __init__(
        self,
        mem: MemorySystem,
        spec: MachineSpec,
        costs: KernelCosts,
        sender_core: int,
        receiver_core: int,
        fragment_size: int,
        n_slots: int,
        name: str = "fifo",
        tracer: Optional[Tracer] = None,
    ):
        if fragment_size <= 0 or n_slots <= 0:
            raise ShmError("fragment size and slot count must be positive")
        self.mem = mem
        self.spec = spec
        self.costs = costs
        self.tracer = tracer or mem.tracer
        self.name = name
        self.sender_core = sender_core
        self.receiver_core = receiver_core
        self.fragment_size = fragment_size
        self.n_slots = n_slots
        domain = spec.core_domain(receiver_core)
        self.buffer: SimBuffer = mem.alloc(
            fragment_size * n_slots, domain, label=name, backed=True
        )
        self.free_slots = Channel(mem.sim, name=f"{name}:free")
        for slot in range(n_slots):
            self.free_slots.put(slot)
        self.full_queue = Channel(mem.sim, name=f"{name}:full")
        #: serializes messages through this FIFO (fragments of interleaved
        #: messages would be indistinguishable in the slot stream)
        self.tx_lock = Semaphore(mem.sim, 1, name=f"{name}:tx")
        #: armed :class:`FaultPlan` (None = zero-overhead fast path)
        self.fault_plan: Optional[FaultPlan] = None
        #: armed slot-protocol sanitizer (None = zero-overhead fast path)
        self.sanitizer: Optional[Any] = None

    def slot_offset(self, slot: int) -> int:
        if not 0 <= slot < self.n_slots:
            raise ShmError(f"slot {slot} out of range")
        return slot * self.fragment_size

    def acquire_slot(self) -> Event:
        """Sender side: event yielding the index of a free fragment slot.

        With an armed fault plan the acquisition can fail: the returned
        event fails with :class:`~repro.errors.ShmFaultInjected`, thrown
        into the yielding sender.  There is no transport below shared
        memory to degrade to, so SHM faults are fail-fast by design.
        """
        plan = self.fault_plan
        if plan is not None and plan.fire("shm.slot", self.sender_core,
                                          self.fragment_size):
            self.tracer.emit("shm.fault", fifo=self.name, op="slot",
                             src_core=self.sender_core, injected=True)
            ev = Event(self.mem.sim, name=f"{self.name}:slot-fault")
            ev.fail(plan.exception("shm.slot", self.sender_core,
                                   self.fragment_size))
            return ev
        return self.free_slots.get()

    def publish(self, slot: int, nbytes: int, meta: Any = None) -> None:
        """Sender side: make a filled slot visible to the receiver."""
        if self.sanitizer is not None:
            self.sanitizer.note_publish(self, slot, nbytes)
        tr = self.tracer
        if tr.enabled:
            tr.emit("shm.fifo_publish", fifo=self.name, slot=slot,
                    nbytes=nbytes, src_core=self.sender_core,
                    dst_core=self.receiver_core)
        else:
            tr.tick("shm.fifo_publish")
        delay = self.costs.mailbox_write + mailbox_latency(
            self.spec, self.sender_core, self.receiver_core
        )
        self.mem.sim.schedule(delay, lambda: self.full_queue.put((slot, nbytes, meta)))

    def next_full(self) -> Event:
        """Receiver side: event yielding ``(slot, nbytes, meta)``."""
        return self.full_queue.get()

    def release_slot(self, slot: int) -> None:
        """Receiver side: return a drained slot to the sender."""
        if not 0 <= slot < self.n_slots:
            raise ShmError(f"slot {slot} out of range")
        if self.sanitizer is not None:
            self.sanitizer.note_release(self, slot)
        self.free_slots.put(slot)

    @property
    def slots_outstanding(self) -> int:
        """Slots not in the free pool: held by a sender or published."""
        return self.n_slots - len(self.free_slots)

    def reclaim(self) -> int:
        """Reset the segment to pristine state (one endpoint died).

        Models the kernel tearing down the dead process's mapping: every
        in-flight fragment is discarded, the free pool refills to full
        capacity, and the tx serialization lock is released.  Cost-free and
        idempotent.  Blocked slot acquirers are forgotten, not woken — the
        rank-failure path unwinds those processes separately.  Returns the
        number of slots recovered.
        """
        leaked = self.slots_outstanding
        self.full_queue.reset()
        self.free_slots.reset()
        for slot in range(self.n_slots):
            self.free_slots.put(slot)
        self.tx_lock.reset()
        if self.sanitizer is not None:
            self.sanitizer.note_reclaim(self)
        if leaked:
            tr = self.tracer
            if tr.enabled:
                tr.emit("shm.reclaim", fifo=self.name, slots=leaked,
                        src_core=self.sender_core,
                        dst_core=self.receiver_core)
            else:
                tr.tick("shm.reclaim")
        return leaked


class ShmWorld:
    """Factory/registry for mailboxes and per-pair FIFOs on one machine."""

    def __init__(self, sim: Simulator, spec: MachineSpec, mem: MemorySystem,
                 costs: Optional[KernelCosts] = None):
        self.sim = sim
        self.spec = spec
        self.mem = mem
        self.costs = costs or KernelCosts()
        self._mailboxes: dict[Any, Mailbox] = {}
        self._fifos: dict[tuple[int, int], FifoSegment] = {}
        self.fault_plan: Optional[FaultPlan] = None
        self.sanitizer: Optional[Any] = None

    def arm_faults(self, plan: Optional[FaultPlan]) -> None:
        """Arm (or disarm with ``None``) fault injection on every FIFO."""
        self.fault_plan = plan
        for seg in self._fifos.values():
            seg.fault_plan = plan

    def arm_sanitizer(self, sanitizer: Optional[Any]) -> None:
        """Arm (or disarm with ``None``) the slot sanitizer on every FIFO."""
        self.sanitizer = sanitizer
        for seg in self._fifos.values():
            seg.sanitizer = sanitizer

    def mailbox(self, key: Any, owner_core: int) -> Mailbox:
        """Get-or-create the mailbox named ``key`` owned by ``owner_core``."""
        box = self._mailboxes.get(key)
        if box is None:
            box = Mailbox(self.sim, self.spec, owner_core, self.costs,
                          name=f"mbox:{key}", tracer=self.mem.tracer)
            self._mailboxes[key] = box
        elif box.owner_core != owner_core:
            raise ShmError(f"mailbox {key!r} already owned by core {box.owner_core}")
        return box

    def reclaim_core(self, core: int) -> int:
        """Reset every FIFO with a dead ``core`` endpoint; returns slots freed.

        Deterministic iteration (FIFOs are created in program order) keeps
        the reclamation trace stable across runs.
        """
        recovered = 0
        for (snd, rcv), seg in self._fifos.items():
            if core in (snd, rcv):
                recovered += seg.reclaim()
        return recovered

    @property
    def slots_outstanding(self) -> int:
        """FIFO slots currently not in any free pool (leak accounting)."""
        return sum(seg.slots_outstanding for seg in self._fifos.values())

    def reclaim_all(self) -> int:
        """Reset every FIFO (post-abort quiescence); returns slots freed.

        Only safe when no legitimate transfer is in flight — the job
        launcher calls this after the event queue drained following a rank
        failure, when every surviving fragment belongs to an aborted
        operation.
        """
        return sum(seg.reclaim() for seg in self._fifos.values())

    def fifo(
        self,
        sender_core: int,
        receiver_core: int,
        fragment_size: int = 32 * 1024,
        n_slots: int = 4,
    ) -> FifoSegment:
        """Get-or-create the FIFO from one core to another (lazy, per pair)."""
        key = (sender_core, receiver_core)
        seg = self._fifos.get(key)
        if seg is None:
            seg = FifoSegment(
                self.mem,
                self.spec,
                self.costs,
                sender_core,
                receiver_core,
                fragment_size,
                n_slots,
                name=f"fifo[{sender_core}->{receiver_core}]",
            )
            seg.fault_plan = self.fault_plan
            seg.sanitizer = self.sanitizer
            self._fifos[key] = seg
        return seg
