"""Weighted max-min fair fluid-flow network.

Every in-flight memory copy is a *flow* with

- a **demand cap** (the executing copy engine's maximum rate),
- a set of **resources** it traverses (memory ports, links), each with a
  per-flow **weight** (an intra-domain memcpy loads its controller with
  read *and* write traffic, so it carries weight 2 there; a cache-hot read
  carries a fractional weight on the source port), and
- a number of **remaining bytes**.

Rates are assigned by progressive filling (weighted max-min fairness): all
active flows grow their rate together until a resource saturates or a flow
hits its demand cap; saturated/capped flows freeze and the rest continue.
On every flow arrival or departure the network advances each flow's byte
account at its old rate and recomputes the allocation — the classic
flow-level approximation used in network simulation, applied here to the
memory system.  This reproduces the contention phenomena the paper leans
on: a linear broadcast saturating the root's memory port, FIFO double copies
loading a controller twice, and cross-board traffic crowding IG's interlink.
"""

from __future__ import annotations

import itertools
from bisect import insort
from typing import Callable, Iterable, Optional

import numpy as np

from repro import vector as _vector
from repro.errors import SimulationError
from repro.simtime.core import Event, Simulator

__all__ = ["Resource", "Flow", "FlowNetwork",
           "install_waterfill_kernel", "installed_waterfill_kernel"]

#: Bytes below which a flow is considered finished.  A quarter byte is far
#: below physical relevance but large enough that the completion horizon
#: stays representable against float accumulation error in ``sim.now``.
_EPS_BYTES = 0.25
#: Rate below which a resource is considered saturated.
_EPS_RATE = 1e-3


def _flow_id(f: "Flow") -> int:
    """Sort key for deterministic flow iteration (creation order)."""
    return f.id


#: Optional replacement for :meth:`FlowNetwork._assign_rates_vec`, installed
#: by the measured-kernel machinery (:mod:`repro.bench.kernels`).  A kernel
#: is ``fn(net, ordered)`` operating on the network's resident vector state;
#: ``None`` (the default, and the fallback when receipts are stale) keeps
#: the generic resident-numpy waterfilling.
_WATERFILL_KERNEL: Optional[Callable[["FlowNetwork", list], None]] = None


def install_waterfill_kernel(
        fn: Optional[Callable[["FlowNetwork", list], None]]) -> None:
    """Install a generated waterfill kernel (``None`` restores generic)."""
    global _WATERFILL_KERNEL
    _WATERFILL_KERNEL = fn


def installed_waterfill_kernel() -> Optional[Callable]:
    return _WATERFILL_KERNEL


def _row_sum(rows: "np.ndarray") -> "np.ndarray":
    """Column sums by strictly sequential row accumulation.

    ``np.add.reduce(rows, axis=0)`` is row-sequential only while the
    reduction axis is strided; with a single column the data is contiguous
    and numpy switches to pairwise summation, which rounds differently from
    the scalar path's one-by-one adds.  The explicit loop pins the
    association order for every shape, which the bitwise scalar/vector
    equivalence contract requires.
    """
    out = np.zeros(rows.shape[1])
    for row in rows:
        out += row
    return out


class Resource:
    """A capacity-limited hardware component (memory port, link, engine).

    ``contention_knee``/``contention_alpha`` model throughput degradation
    under many concurrent streams (DRAM row-buffer and bank-locality loss):
    beyond ``knee`` simultaneous flows, effective capacity shrinks as
    ``capacity / (1 + alpha * (n - knee))``.  Zero alpha disables it
    (links, copy engines).
    """

    __slots__ = ("name", "capacity", "flows", "contention_knee",
                 "contention_alpha")

    def __init__(self, name: str, capacity: float, contention_knee: int = 0,
                 contention_alpha: float = 0.0):
        if capacity <= 0:
            raise SimulationError(f"resource {name}: capacity must be positive")
        if contention_alpha < 0 or contention_knee < 0:
            raise SimulationError(f"resource {name}: bad contention parameters")
        self.name = name
        self.capacity = capacity
        self.contention_knee = contention_knee
        self.contention_alpha = contention_alpha
        #: live flows traversing this resource (maintained by the network)
        self.flows: set["Flow"] = set()

    def effective_capacity(self, n_flows: int | None = None) -> float:
        """Capacity available given the number of concurrent streams."""
        if not self.contention_alpha:
            return self.capacity
        n = len(self.flows) if n_flows is None else n_flows
        if n <= self.contention_knee:
            return self.capacity
        return self.capacity / (
            1.0 + self.contention_alpha * (n - self.contention_knee))

    @property
    def load(self) -> float:
        """Current allocated throughput (weighted) on this resource."""
        return sum(f.rate * f.weights[self] for f in self.flows)

    @property
    def utilization(self) -> float:
        return self.load / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Resource {self.name} cap={self.capacity:.3g} flows={len(self.flows)}>"


class Flow:
    """One in-flight transfer (created via :meth:`FlowNetwork.transfer`).

    ``streams`` optionally overrides how many contention *streams* this flow
    contributes to each resource (default 1.0): posted writes disturb a DRAM
    controller's scheduling far less than latency-sensitive read streams, so
    the memory system counts them fractionally.
    """

    __slots__ = ("id", "demand", "weights", "remaining", "rate", "event",
                 "label", "streams")

    _ids = itertools.count(1)

    def __init__(self, demand: float, weights: dict[Resource, float], nbytes: float,
                 event: Event, label: str = "",
                 streams: Optional[dict[Resource, float]] = None):
        if demand <= 0:
            raise SimulationError("flow demand cap must be positive")
        if any(w <= 0 for w in weights.values()):
            raise SimulationError("flow resource weights must be positive")
        self.id = next(Flow._ids)
        self.demand = demand
        self.weights = weights
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.event = event
        self.label = label
        self.streams = streams or {}

    def streams_on(self, res: Resource) -> float:
        return self.streams.get(res, 1.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Flow#{self.id} {self.label} "
                f"rem={self.remaining:.0f}B rate={self.rate:.3g}>")


class FlowNetwork:
    """Tracks active flows, assigns fair rates, fires completion events.

    ``vectorized`` selects the numpy waterfilling path (``None`` = the
    process-wide ``REPRO_VECTOR`` default).  The scalar path remains the
    oracle: both produce **bitwise-identical** rates, byte accounts, and
    wake horizons — every elementwise numpy operation used (multiply,
    subtract, divide, first-occurrence argmin, row-order ``add.reduce``)
    is IEEE-equal to its Python-scalar counterpart, and every float
    accumulation walks flows in creation-id order in both paths.  The
    differential battery in tests/hardware/test_vector_flows.py locks
    this; ``vector_min_flows`` gates the numpy path to rebalances large
    enough to amortize array construction (safe to flip mid-run precisely
    because the paths are indistinguishable).
    """

    def __init__(self, sim: Simulator, vectorized: Optional[bool] = None):
        self.sim = sim
        self.vectorized = _vector.enabled() if vectorized is None else vectorized
        #: smallest active-flow count routed to the numpy waterfilling
        #: (below it the scalar path is faster; tests set 0 to force numpy)
        self.vector_min_flows = 8
        self._active: set[Flow] = set()
        self._last_update = 0.0
        self._wake_generation = 0
        self._rebalance_pending = False
        #: lifetime statistics
        self.completed_flows = 0
        self.completed_bytes = 0.0
        #: rate assignments executed by each implementation (diagnostics;
        #: the differential tests assert the intended path actually ran)
        self.scalar_assignments = 0
        self.vector_assignments = 0
        # --- resident vector state (see _vec_add/_vec_remove) ---------------
        # Slot-row incidence matrices held between rebalances: each active
        # flow owns a row (recycled through a freelist), each resource ever
        # seen owns a column in global first-seen order.  A rebalance
        # gathers rows in flow-id order instead of rebuilding the matrices
        # from dicts per call.  Column order only influences np.argmin
        # tie-breaks, which only pick the *label* of the bottleneck; every
        # saturated resource freezes through the sat-threshold mask
        # regardless, so results stay bitwise-identical to the scalar path
        # (the differential battery in tests/hardware/test_vector_flows.py
        # holds this to account).
        self._ordered: list[Flow] = []     # id-ordered mirror of _active
        self._vslot: dict[Flow, int] = {}  # flow -> row slot
        self._vfree: list[int] = []        # recycled row slots
        self._vnext_row = 0                # next never-used row slot
        self._vres_index: dict[Resource, int] = {}  # resource -> column
        self._vres_list: list[Resource] = []
        self._vW = np.zeros((0, 0))        # slot-row weight matrix
        self._vS = np.zeros((0, 0))        # slot-row stream matrix
        self._vcaps = np.zeros(0)          # per-column capacity
        self._vknee = np.zeros(0)          # per-column contention knee
        self._valpha = np.zeros(0)         # per-column contention alpha
        self._vthresh = np.zeros(0)        # per-column saturation threshold
        #: resident state mirrors _active (goes stale when flows change
        #: while ``vectorized`` is off; the next vector rebalance rebuilds)
        self._vclean = True

    # -- public API ---------------------------------------------------------
    def transfer(
        self,
        nbytes: float,
        demand: float,
        weights: dict[Resource, float],
        latency: float = 0.0,
        label: str = "",
        streams: Optional[dict[Resource, float]] = None,
    ) -> Event:
        """Start a transfer; the returned event fires at completion.

        ``latency`` is a fixed startup delay served before the fluid phase
        (memory access latency, link hops).  A zero-byte transfer completes
        after just the latency.
        """
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes}")
        done = Event(self.sim, name=f"flow:{label}")
        if nbytes == 0:
            self.sim.schedule(latency, lambda: done.succeed(None))
            return done
        flow = Flow(demand, weights, nbytes, done, label=label, streams=streams)
        if latency > 0:
            self.sim.schedule(latency, lambda: self._admit(flow))
        else:
            self._admit(flow)
        return done

    @property
    def active_count(self) -> int:
        return len(self._active)

    # -- internals ----------------------------------------------------------
    def _admit(self, flow: Flow) -> None:
        self._advance()
        self._active.add(flow)
        for res in flow.weights:
            res.flows.add(flow)
        if self.vectorized:
            self._vec_add(flow)
        else:
            self._vclean = False
        # Defer the (expensive) reassignment to a zero-delay event so a burst
        # of same-instant arrivals — e.g. every leaf of a broadcast tree
        # starting its segment copy together — pays for one rebalance.
        if not self._rebalance_pending:
            self._rebalance_pending = True
            self.sim.schedule(0.0, self._deferred_rebalance)

    def _deferred_rebalance(self) -> None:
        self._rebalance_pending = False
        self._advance()
        self._rebalance()

    def _retire(self, flow: Flow) -> None:
        self._active.discard(flow)
        for res in flow.weights:
            res.flows.discard(flow)
        if self.vectorized:
            self._vec_remove(flow)
        else:
            self._vclean = False
        self.completed_flows += 1

    # -- resident vector state ----------------------------------------------
    def _vcol_add(self, res: Resource) -> None:
        """Give ``res`` a column (global first-seen order, grown amortized)."""
        j = len(self._vres_list)
        if j >= self._vcaps.shape[0]:
            new_cols = max(16, 2 * j)
            rows = self._vW.shape[0]
            for attr in ("_vW", "_vS"):
                grown = np.zeros((rows, new_cols))
                old = getattr(self, attr)
                grown[:, :old.shape[1]] = old
                setattr(self, attr, grown)
            for attr in ("_vcaps", "_vknee", "_valpha", "_vthresh"):
                grown = np.zeros(new_cols)
                old = getattr(self, attr)
                grown[:old.shape[0]] = old
                setattr(self, attr, grown)
        self._vres_index[res] = j
        self._vres_list.append(res)
        self._vcaps[j] = res.capacity
        self._vknee[j] = res.contention_knee
        self._valpha[j] = res.contention_alpha
        self._vthresh[j] = _EPS_RATE * max(1.0, res.capacity / 1e9)

    def _vrow_alloc(self) -> int:
        """Hand out a zeroed row slot (freelist first, then amortized growth)."""
        free = self._vfree
        if free:
            return free.pop()
        slot = self._vnext_row
        self._vnext_row += 1
        if slot >= self._vW.shape[0]:
            new_rows = max(16, 2 * (slot + 1))
            cols = self._vW.shape[1]
            for attr in ("_vW", "_vS"):
                grown = np.zeros((new_rows, cols))
                old = getattr(self, attr)
                grown[:old.shape[0]] = old
                setattr(self, attr, grown)
        return slot

    def _vec_add(self, flow: Flow) -> None:
        """Incremental resident-state update for one admitted flow."""
        if not self._vclean:
            return  # stale; the next vector rebalance rebuilds in bulk
        index = self._vres_index
        for r in flow.weights:
            if r not in index:
                self._vcol_add(r)
        slot = self._vrow_alloc()
        self._vslot[flow] = slot
        row_w = self._vW[slot]
        row_s = self._vS[slot]
        for r, w in flow.weights.items():
            j = index[r]
            row_w[j] = w
            row_s[j] = flow.streams_on(r)
        # Flow ids rise monotonically, so admits append in id order — except
        # latency-delayed admits, which can arrive out of creation order.
        ordered = self._ordered
        if not ordered or ordered[-1].id < flow.id:
            ordered.append(flow)
        else:
            insort(ordered, flow, key=_flow_id)

    def _vec_remove(self, flow: Flow) -> None:
        """Incremental resident-state update for one retired flow."""
        if not self._vclean:
            return
        slot = self._vslot.pop(flow, None)
        if slot is None:
            # Admitted while the resident state was stale or vectorized was
            # off: the mirror is inconsistent — rebuild at next rebalance.
            self._vclean = False
            return
        self._vW[slot].fill(0.0)
        self._vS[slot].fill(0.0)
        self._vfree.append(slot)
        self._ordered.remove(flow)

    def _vec_sync(self) -> list[Flow]:
        """Return the id-ordered active flows, rebuilding resident state
        if flow arrivals/departures happened while it was stale."""
        if not self._vclean:
            self._vslot.clear()
            self._vfree.clear()
            self._vnext_row = 0
            self._vW[:, :] = 0.0
            self._vS[:, :] = 0.0
            self._ordered = []
            self._vclean = True
            for flow in sorted(self._active, key=_flow_id):
                self._vec_add(flow)
        return self._ordered

    def _advance(self) -> None:
        """Account bytes transferred since the last state change."""
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0:
            return
        active = self._active
        if self.vectorized and len(active) >= self.vector_min_flows:
            # Per-flow byte accounts are independent elementwise IEEE ops,
            # bitwise-equal to the scalar loop (zero-rate flows subtract an
            # exact 0.0).  Only ``completed_bytes`` — a tolerance-compared
            # lifetime stat whose scalar accumulation order is already
            # address-dependent — is summed in id order instead.
            ordered = (self._ordered if self._vclean
                       else sorted(active, key=_flow_id))
            count = len(ordered)
            moved = np.fromiter((f.remaining for f in ordered), np.float64,
                                count=count)
            rates = np.fromiter((f.rate for f in ordered), np.float64,
                                count=count)
            rates *= dt  # now the per-flow bytes moved
            moved -= rates  # now the new per-flow remaining bytes
            for flow, rem in zip(ordered, moved.tolist()):
                flow.remaining = rem
            self.completed_bytes += float(np.add.reduce(rates))
            return
        for flow in active:
            if flow.rate > 0:
                moved = flow.rate * dt
                flow.remaining -= moved
                self.completed_bytes += moved

    def _rebalance(self) -> None:
        """Recompute max-min fair rates and reschedule the next completion."""
        # Sorted by creation id so completion events fire in a
        # memory-layout-independent order (see _assign_rates).
        finished = sorted(
            (f for f in self._active if f.remaining <= _EPS_BYTES), key=_flow_id)
        for flow in finished:
            self._retire(flow)
        if self.vectorized and len(self._active) >= self.vector_min_flows:
            self.vector_assignments += 1
            ordered = self._vec_sync()
            kernel = _WATERFILL_KERNEL
            if kernel is not None:
                kernel(self, ordered)
            else:
                self._assign_rates_vec(ordered)
        else:
            self.scalar_assignments += 1
            self._assign_rates(self._active)
        for flow in finished:
            flow.remaining = 0.0
            flow.event.succeed(None)
        self._schedule_wake()

    @staticmethod
    def _assign_rates(flows: Iterable[Flow]) -> None:
        """Weighted progressive filling over the union of traversed resources.

        Incremental bookkeeping keeps each filling round O(|flows| +
        |resources|): per-resource weight sums and member sets shrink as
        flows freeze, instead of being recomputed from scratch.

        Every float accumulation here walks flows in creation-id order.
        Flow ids are per-process creation counters, identical for the same
        cell in any process; raw set order is keyed on object addresses, so
        summing in it would give ULP-different rates from run to run and
        break the byte-identical serial/parallel CSV guarantee.
        """
        ordered = sorted(flows, key=_flow_id)
        for f in ordered:
            f.rate = 0.0
        residual: dict[Resource, float] = {}
        wsum: dict[Resource, float] = {}
        members: dict[Resource, set[Flow]] = {}
        streams: dict[Resource, float] = {}
        for f in ordered:
            for r, w in f.weights.items():
                wsum[r] = wsum.get(r, 0.0) + w
                streams[r] = streams.get(r, 0.0) + f.streams_on(r)
                try:
                    members[r].add(f)
                except KeyError:
                    members[r] = {f}
        for r, n in streams.items():
            residual[r] = r.effective_capacity(int(round(n)))

        unfrozen = set(ordered)

        def freeze(f: Flow) -> None:
            for r, w in f.weights.items():
                wsum[r] -= w
                members[r].discard(f)

        # All unfrozen flows carry the same uniform rate, so flows freeze on
        # their demand caps in ascending-demand order: a sorted sweep frees
        # whole batches per filling round instead of one flow at a time.
        # (Stable sort over the id-ordered list: demand ties break by id.)
        by_demand = sorted(ordered, key=lambda f: f.demand)
        demand_ptr = 0
        rate = 0.0  # the uniform rate every unfrozen flow has received
        while unfrozen:
            # Largest uniform rate increment every unfrozen flow can take.
            while demand_ptr < len(by_demand) and by_demand[demand_ptr] not in unfrozen:
                demand_ptr += 1
            inc = (by_demand[demand_ptr].demand - rate
                   if demand_ptr < len(by_demand) else float("inf"))
            bottleneck: Optional[Resource] = None
            for r, cap_left in residual.items():
                ws = wsum[r]
                if ws <= 1e-12:
                    continue
                r_inc = cap_left / ws
                if r_inc < inc:
                    inc = r_inc
                    bottleneck = r
            if inc < 0:
                inc = 0.0
            rate += inc
            for r in residual:
                residual[r] -= inc * wsum[r]
            frozen: set[Flow] = set()
            # Demand-capped flows: ascending sweep from the pointer.
            while demand_ptr < len(by_demand):
                f = by_demand[demand_ptr]
                if f not in unfrozen:
                    demand_ptr += 1
                    continue
                if f.demand - rate > _EPS_RATE:
                    break
                frozen.add(f)
                demand_ptr += 1
            # Flows on saturated resources.
            if bottleneck is not None and residual[bottleneck] <= \
                    _EPS_RATE * max(1.0, bottleneck.capacity / 1e9):
                frozen |= members[bottleneck]
            for r, cap_left in residual.items():
                if r is not bottleneck and wsum[r] > 1e-12 and \
                        cap_left <= _EPS_RATE * max(1.0, r.capacity / 1e9):
                    frozen |= members[r]
            if not frozen:
                if bottleneck is None:
                    break  # all demand-capped; loop would have frozen them
                frozen = set(members[bottleneck])
            # wsum decrements are float subtractions: fixed order again.
            for f in sorted(frozen, key=_flow_id):
                f.rate = rate
                freeze(f)
            unfrozen -= frozen
        for f in unfrozen:  # pragma: no cover - loop always drains
            f.rate = rate

    def _assign_rates_vec(self, ordered: list[Flow]) -> None:
        """Numpy waterfilling, bitwise-identical to :meth:`_assign_rates`.

        Equality holds operation by operation, not approximately:

        - column sums accumulate rows sequentially (:func:`_row_sum`), so
          the weight/stream totals reproduce the scalar loop's id-ordered
          accumulation (absent flows contribute an exact ``+0.0``);
        - elementwise multiply/subtract/divide are the same correctly-rounded
          IEEE operations the scalar path applies per resource;
        - ``np.argmin`` returns the *first* minimum, matching the scalar
          running strict-``<`` scan over first-seen resource order;
        - freezes subtract whole weight rows in flow-id order, mirroring the
          scalar per-resource ``wsum`` decrements (``x - 0.0 == x``).

        Every scalar crossing back into simulator state (``f.rate``,
        comparisons against python floats) is converted with ``float()`` so
        no ``np.float64`` leaks into the event queue or the JSONL journal.
        """
        n = len(ordered)
        if n == 0:
            return
        # Gather the resident slot rows in flow-id order.  Columns beyond
        # the current flows' resources carry all-zero weight sums and are
        # masked off by ``live`` below; their ``+0.0`` contributions to the
        # row sums are bitwise-neutral (weights are positive, so no partial
        # sum is ever ``-0.0``).
        n_res = len(self._vres_list)
        slots = self._vslot
        idx = [slots[f] for f in ordered]
        weight_rows = self._vW[idx][:, :n_res]
        stream_rows = self._vS[idx][:, :n_res]
        for f in ordered:
            f.rate = 0.0
        wsum = _row_sum(weight_rows)
        # Vectorized effective capacity, elementwise IEEE-equal to the
        # scalar Resource.effective_capacity: the stream counts are exact
        # small integers in float (np.round is the same half-to-even as
        # round()), the denominator is exactly 1.0 whenever alpha is zero
        # or the count is at/below the knee, and x / 1.0 == x bitwise.
        excess = np.maximum(np.round(_row_sum(stream_rows)) - self._vknee[:n_res],
                            0.0)
        residual = self._vcaps[:n_res] / (1.0 + self._valpha[:n_res] * excess)
        sat_thresh = self._vthresh[:n_res]

        demands = [f.demand for f in ordered]
        # Stable argsort ties break by index (= creation id), matching the
        # scalar stable sort over the id-ordered list.
        by_demand = np.argsort(np.asarray(demands), kind="stable").tolist()
        unfrozen = np.ones(n, dtype=bool)
        n_unfrozen = n
        demand_ptr = 0
        rate = 0.0
        inf = float("inf")
        while n_unfrozen:
            while demand_ptr < n and not unfrozen[by_demand[demand_ptr]]:
                demand_ptr += 1
            inc = demands[by_demand[demand_ptr]] - rate if demand_ptr < n else inf
            bottleneck = -1
            live = wsum > 1e-12
            if live.any():
                r_inc = (np.where(live, residual, inf)
                         / np.where(live, wsum, 1.0))
                j = int(np.argmin(r_inc))
                j_inc = float(r_inc[j])
                if j_inc < inc:
                    inc = j_inc
                    bottleneck = j
            if inc < 0:
                inc = 0.0
            rate += inc
            residual -= inc * wsum
            frozen = np.zeros(n, dtype=bool)
            # Demand-capped flows: ascending sweep from the pointer.
            while demand_ptr < n:
                i = by_demand[demand_ptr]
                if not unfrozen[i]:
                    demand_ptr += 1
                    continue
                if demands[i] - rate > _EPS_RATE:
                    break
                frozen[i] = True
                demand_ptr += 1
            # Unfrozen members of saturated resources.  ``live`` predates
            # the residual update but ``wsum`` has not changed since.
            sat = live & (residual <= sat_thresh)
            if sat.any():
                frozen |= unfrozen & (weight_rows[:, sat] != 0.0).any(axis=1)
            if not frozen.any():
                if bottleneck < 0:
                    break  # all demand-capped; loop would have frozen them
                frozen = unfrozen & (weight_rows[:, bottleneck] != 0.0)
            # Freeze in id order; whole-row wsum decrements reproduce the
            # scalar per-resource subtractions bit for bit.
            frozen_idx = np.nonzero(frozen)[0].tolist()
            for i in frozen_idx:
                ordered[i].rate = rate
                wsum -= weight_rows[i]
            unfrozen &= ~frozen
            n_unfrozen -= len(frozen_idx)
        if n_unfrozen:  # pragma: no cover - loop always drains
            for i in np.nonzero(unfrozen)[0].tolist():
                ordered[i].rate = rate

    def _schedule_wake(self) -> None:
        self._wake_generation += 1
        if not self._active:
            return
        if self.vectorized and len(self._active) >= self.vector_min_flows:
            count = len(self._active)
            rems = np.fromiter((f.remaining for f in self._active), np.float64,
                               count=count)
            rates = np.fromiter((f.rate for f in self._active), np.float64,
                                count=count)
            pos = rates > 0.0
            # Elementwise division + min: same value the scalar generator
            # finds (min is order-independent over exact quotients).
            horizon = (float(np.min(rems[pos] / rates[pos]))
                       if pos.any() else None)
        else:
            horizon = min(
                (f.remaining / f.rate for f in self._active if f.rate > 0),
                default=None,
            )
        if horizon is None:
            raise SimulationError(
                "flow network stalled: active flows but no positive rates"
            )
        # Keep the wake strictly after `now` in float arithmetic: a horizon
        # below one ulp of the clock would freeze time (Zeno loop).
        min_dt = max(abs(self.sim.now) * 1e-14, 1e-15)
        gen = self._wake_generation
        self.sim.schedule(max(horizon, min_dt), lambda: self._on_wake(gen))

    def _on_wake(self, generation: int) -> None:
        if generation != self._wake_generation:
            return  # superseded by a later arrival/departure
        self._advance()
        self._rebalance()
