"""Declarative machine specifications.

A :class:`MachineSpec` is a frozen description of an intra-node memory
system: sockets grouped on boards, memory domains (NUMA nodes or a single
SMP controller), the inter-domain link graph, core copy engines, and the
cache hierarchy.  Everything downstream (topology tree, flow resources,
cache domains) is derived from this one object, so tests can build synthetic
machines as easily as the paper's four platforms.

Conventions:

- cores are numbered globally ``0 .. n_cores-1``, socket-major
  (core ``s * cores_per_socket + i`` is core ``i`` of socket ``s``);
- memory domains are numbered ``0 .. n_domains-1``;
- bandwidths are bytes/second, latencies seconds, sizes bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HardwareConfigError

__all__ = ["CoreSpec", "CacheSpec", "LinkSpec", "MachineSpec", "CACHE_SCOPES"]

#: Valid sharing scopes for a cache level, from narrowest to widest.
CACHE_SCOPES = ("core", "pair", "socket", "domain")


@dataclass(frozen=True)
class CoreSpec:
    """Per-core execution parameters.

    ``copy_bandwidth`` is the single-stream memcpy rate against
    memory-resident data; ``cached_copy_bandwidth`` the rate when the source
    is resident in the last-level cache (used to blend by residency).
    ``elem_op_time`` is the calibrated time for one element-update of the
    ASP relaxation loop (min+add over 32-bit ints, memory bound), used by
    the application compute model.
    """

    freq_ghz: float
    copy_bandwidth: float
    cached_copy_bandwidth: float
    elem_op_time: float = 9e-9

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0 or self.copy_bandwidth <= 0:
            raise HardwareConfigError(
                "core frequency and copy bandwidth must be positive")
        if self.cached_copy_bandwidth < self.copy_bandwidth:
            raise HardwareConfigError(
                "cached copy bandwidth must be >= memory copy bandwidth")


@dataclass(frozen=True)
class CacheSpec:
    """One cache level: capacity, sharing scope, and streaming bandwidths.

    ``bandwidth`` is the rate one core sustains streaming from this cache;
    ``total_bandwidth`` the aggregate the cache serves to all its sharers
    (banked LLCs saturate well below ``sharers * per-core rate``).  A zero
    ``total_bandwidth`` defaults to ``2.5 * bandwidth``.
    """

    level: int
    size: int
    scope: str
    bandwidth: float
    total_bandwidth: float = 0.0

    def __post_init__(self) -> None:
        if self.scope not in CACHE_SCOPES:
            raise HardwareConfigError(
                f"cache scope {self.scope!r} not in {CACHE_SCOPES}")
        if self.size <= 0 or self.bandwidth <= 0:
            raise HardwareConfigError("cache size and bandwidth must be positive")
        if self.total_bandwidth == 0.0:
            object.__setattr__(self, "total_bandwidth", 2.5 * self.bandwidth)
        if self.total_bandwidth < self.bandwidth:
            raise HardwareConfigError("total_bandwidth must be >= per-core bandwidth")


@dataclass(frozen=True)
class LinkSpec:
    """An undirected inter-domain link (HyperTransport / QPI / board bridge)."""

    a: int
    b: int
    bandwidth: float
    latency: float = 100e-9

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise HardwareConfigError(f"self-link on domain {self.a}")
        if self.bandwidth <= 0 or self.latency < 0:
            raise HardwareConfigError(
                "link bandwidth must be positive and latency >= 0")

    @property
    def key(self) -> tuple[int, int]:
        return (min(self.a, self.b), max(self.a, self.b))


@dataclass(frozen=True)
class MachineSpec:
    """A complete intra-node machine description (see module docstring)."""

    name: str
    cores_per_socket: int
    socket_domain: tuple[int, ...]
    socket_board: tuple[int, ...]
    domain_mem_bandwidth: tuple[float, ...]
    domain_mem_bytes: tuple[int, ...]
    core: CoreSpec
    caches: tuple[CacheSpec, ...]
    links: tuple[LinkSpec, ...] = ()
    mem_latency: float = 80e-9
    #: How much of a *dirty* cache hit (lines written by another core, read
    #: via a coherence intervention) is actually served at cache speed.
    #: Snoopy FSB platforms resolve HITM interventions at bus/memory speed
    #: (≈ 0), on-die shared L3s serve them nearly as fast as clean hits.
    dirty_intervention_efficiency: float = 0.85
    #: Fraction of intervention-served bytes written back to home memory.
    #: MESI/MESIF (Intel) demotes M->S with a writeback (1.0); MOESI (AMD)
    #: keeps the line Owned and serves sharers without touching memory (0.0).
    intervention_writeback: float = 1.0
    #: Memory-controller stream-contention model: beyond ``knee`` concurrent
    #: streams a port's effective bandwidth degrades (row-buffer/bank
    #: locality loss) as ``bw / (1 + alpha * (n - knee))``.  Posted writes
    #: count as ``write_stream_weight`` of a read stream (controllers
    #: reorder them freely).
    mem_stream_knee: int = 6
    mem_stream_alpha: float = 0.02
    write_stream_weight: float = 0.3
    #: Single-stream read bandwidth shrinks with NUMA distance (reads are
    #: latency-bound): effective rate = copy_bw / (1 + penalty * hops).
    numa_read_hop_penalty: float = 0.35
    description: str = ""

    def __post_init__(self) -> None:
        if self.cores_per_socket <= 0:
            raise HardwareConfigError("cores_per_socket must be positive")
        if len(self.socket_domain) != len(self.socket_board):
            raise HardwareConfigError("socket_domain and socket_board lengths differ")
        if not self.socket_domain:
            raise HardwareConfigError("machine needs at least one socket")
        n_domains = max(self.socket_domain) + 1
        if sorted(set(self.socket_domain)) != list(range(n_domains)):
            raise HardwareConfigError("memory domains must be contiguous from 0")
        if (len(self.domain_mem_bandwidth) != n_domains
                or len(self.domain_mem_bytes) != n_domains):
            raise HardwareConfigError(
                "per-domain arrays must have one entry per memory domain")
        if any(b <= 0 for b in self.domain_mem_bandwidth):
            raise HardwareConfigError("memory bandwidth must be positive")
        for link in self.links:
            if not (0 <= link.a < n_domains and 0 <= link.b < n_domains):
                raise HardwareConfigError(f"link {link} references unknown domain")
        if not self.caches:
            raise HardwareConfigError("machine needs at least one cache level")
        levels = [c.level for c in self.caches]
        if levels != sorted(levels) or len(set(levels)) != len(levels):
            raise HardwareConfigError("cache levels must be strictly increasing")
        if self.cores_per_socket % 2 and any(c.scope == "pair" for c in self.caches):
            raise HardwareConfigError(
                "'pair' cache scope requires an even cores_per_socket")
        if not 0.0 <= self.dirty_intervention_efficiency <= 1.0:
            raise HardwareConfigError("dirty_intervention_efficiency must be in [0, 1]")
        if not 0.0 <= self.intervention_writeback <= 1.0:
            raise HardwareConfigError("intervention_writeback must be in [0, 1]")

    # -- derived sizes -----------------------------------------------------
    @property
    def n_sockets(self) -> int:
        return len(self.socket_domain)

    @property
    def n_cores(self) -> int:
        return self.n_sockets * self.cores_per_socket

    @property
    def n_domains(self) -> int:
        return max(self.socket_domain) + 1

    @property
    def n_boards(self) -> int:
        return max(self.socket_board) + 1

    @property
    def llc(self) -> CacheSpec:
        """The last-level (widest-sharing, highest-level) cache."""
        return self.caches[-1]

    @property
    def is_smp(self) -> bool:
        """True when one memory controller serves every socket (Zoot)."""
        return self.n_domains == 1

    # -- core coordinate helpers -------------------------------------------
    def core_socket(self, core: int) -> int:
        self._check_core(core)
        return core // self.cores_per_socket

    def core_domain(self, core: int) -> int:
        return self.socket_domain[self.core_socket(core)]

    def core_board(self, core: int) -> int:
        return self.socket_board[self.core_socket(core)]

    def cores_of_socket(self, socket: int) -> range:
        if not 0 <= socket < self.n_sockets:
            raise HardwareConfigError(f"socket {socket} out of range")
        start = socket * self.cores_per_socket
        return range(start, start + self.cores_per_socket)

    def cores_of_domain(self, domain: int) -> list[int]:
        if not 0 <= domain < self.n_domains:
            raise HardwareConfigError(f"domain {domain} out of range")
        cores: list[int] = []
        for s, d in enumerate(self.socket_domain):
            if d == domain:
                cores.extend(self.cores_of_socket(s))
        return cores

    def cache_group(self, core: int, cache: CacheSpec) -> tuple[int, ...]:
        """The set of cores sharing ``cache`` with ``core``."""
        self._check_core(core)
        if cache.scope == "core":
            return (core,)
        if cache.scope == "pair":
            base = core - (core % 2)
            return (base, base + 1)
        if cache.scope == "socket":
            return tuple(self.cores_of_socket(self.core_socket(core)))
        return tuple(self.cores_of_domain(self.core_domain(core)))

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.n_cores:
            raise HardwareConfigError(
                f"core {core} out of range (machine has {self.n_cores})")

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.n_cores} cores = "
            f"{self.n_sockets}s x {self.cores_per_socket}c, "
            f"{self.n_domains} memory domain(s), {self.n_boards} board(s)"
        )
