"""Hardware models: machine specifications, flow-level bandwidth arbitration,
cache residency, and the memory system that turns copy requests into
simulated data movement.

The four machines from the paper's evaluation (Section VI-A) are available
from :mod:`repro.hardware.machines` as :func:`zoot`, :func:`dancer`,
:func:`saturn`, and :func:`ig`.
"""

from repro.hardware.cache import CacheDomain, CacheSystem
from repro.hardware.flows import Flow, FlowNetwork, Resource
from repro.hardware.machines import (
    MACHINES,
    dancer,
    get_machine,
    ig,
    saturn,
    smp_machine,
    numa_machine,
    zoot,
)
from repro.hardware.memory import CopyRequest, MemorySystem, SimBuffer
from repro.hardware.spec import CacheSpec, CoreSpec, LinkSpec, MachineSpec

__all__ = [
    "CacheSpec",
    "CoreSpec",
    "LinkSpec",
    "MachineSpec",
    "Resource",
    "Flow",
    "FlowNetwork",
    "CacheDomain",
    "CacheSystem",
    "SimBuffer",
    "CopyRequest",
    "MemorySystem",
    "zoot",
    "dancer",
    "saturn",
    "ig",
    "smp_machine",
    "numa_machine",
    "get_machine",
    "MACHINES",
]
