"""The memory system: buffers, copy requests, flows, and the DMA engine.

:class:`MemorySystem` is the single entry point every transport uses to move
bytes.  A copy names the **executing core** (the paper's central concern:
*who* performs the copy decides whether a collective parallelizes), a source
and destination buffer+offset, and a size.  The request becomes a fluid flow
(see :mod:`repro.hardware.flows`) across:

- the executing core's copy engine,
- the source domain's memory port — weighted by the *miss* fraction, since
  cache-resident source bytes are not re-fetched from memory,
- the link path from the source domain to the executing core's domain
  (reads) and from there to the destination domain (writes),
- the destination domain's memory port.

When both buffers are *backed*, the payload bytes are physically moved at
completion time, so collectives built on this layer are data-checkable.
"""

from __future__ import annotations

import itertools
from typing import Optional

import networkx as nx
import numpy as np

from repro.errors import HardwareConfigError, RoutingError, SimulationError
from repro.hardware.cache import CacheSystem
from repro.hardware.flows import FlowNetwork, Resource
from repro.hardware.spec import MachineSpec
from repro.simtime.core import Event, Simulator
from repro.simtime.trace import Tracer

__all__ = ["SimBuffer", "CopyRequest", "MemorySystem"]


class SimBuffer:
    """A region of simulated memory homed on one memory domain.

    ``array`` (optional) is a contiguous numpy array backing the buffer; the
    memory system moves real bytes through it on copy completion.  Unbacked
    buffers participate in timing only (used for huge calibrated app runs).
    """

    _ids = itertools.count(1)

    __slots__ = ("id", "size", "domain", "array", "data", "label")

    def __init__(
        self,
        size: int,
        domain: int,
        array: Optional[np.ndarray] = None,
        label: str = "",
    ):
        if size < 0:
            raise SimulationError(f"negative buffer size {size}")
        if array is not None:
            if not array.flags["C_CONTIGUOUS"]:
                raise SimulationError("SimBuffer requires a C-contiguous array")
            if array.nbytes != size:
                raise SimulationError(
                    f"backing array is {array.nbytes}B but buffer declared {size}B"
                )
        self.id = next(SimBuffer._ids)
        self.size = size
        self.domain = domain
        self.array = array
        self.data = array.view(np.uint8).reshape(-1) if array is not None else None
        self.label = label or f"buf{self.id}"

    @property
    def backed(self) -> bool:
        return self.data is not None

    def check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise SimulationError(
                f"range [{offset}, {offset + nbytes}) outside buffer {self.label} "
                f"of size {self.size}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimBuffer {self.label} {self.size}B @domain{self.domain}>"


class CopyRequest:
    """Internal record of one copy (kept on the completion event for tracing)."""

    __slots__ = ("core", "src", "src_off", "dst", "dst_off", "nbytes",
                 "kernel", "label")

    def __init__(self, core, src, src_off, dst, dst_off, nbytes, kernel, label):
        self.core = core
        self.src = src
        self.src_off = src_off
        self.dst = dst
        self.dst_off = dst_off
        self.nbytes = nbytes
        self.kernel = kernel
        self.label = label


#: Memoized per-spec routing: (routes, link latencies).  Shared read-only
#: between MemorySystem instances — nothing mutates them after build.
_ROUTE_CACHE: dict[
    MachineSpec,
    tuple[dict[tuple[int, int], list[tuple[int, int]]],
          dict[tuple[int, int], float]],
] = {}


def _route_tables(spec: MachineSpec) -> tuple[
    dict[tuple[int, int], list[tuple[int, int]]],
    dict[tuple[int, int], float],
]:
    """Shortest-path link routes between all domain pairs, per spec."""
    cached = _ROUTE_CACHE.get(spec)
    if cached is not None:
        return cached
    graph = nx.Graph()
    graph.add_nodes_from(range(spec.n_domains))
    link_latency: dict[tuple[int, int], float] = {}
    for link in spec.links:
        link_latency[link.key] = link.latency
        # Prefer few hops, then fat pipes, deterministically.
        graph.add_edge(link.a, link.b, weight=1.0 + 1e-12 / link.bandwidth)
    routes: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for a in range(spec.n_domains):
        for b in range(spec.n_domains):
            if a == b:
                routes[(a, b)] = []
                continue
            try:
                path = nx.shortest_path(graph, a, b, weight="weight")
            except nx.NetworkXNoPath:
                raise RoutingError(
                    f"no link path between domains {a} and {b}") from None
            routes[(a, b)] = [
                (min(u, v), max(u, v)) for u, v in zip(path, path[1:])
            ]
    _ROUTE_CACHE[spec] = (routes, link_latency)
    return routes, link_latency


class MemorySystem:
    """Owns the flow network, resources, routing, and cache bookkeeping."""

    def __init__(self, sim: Simulator, spec: MachineSpec,
                 tracer: Optional[Tracer] = None,
                 vectorized: Optional[bool] = None):
        self.sim = sim
        self.spec = spec
        self.tracer = tracer or Tracer()
        self.caches = CacheSystem(spec)
        # ``vectorized=None`` defers to the process-wide REPRO_VECTOR flag
        # (see repro.vector); the scalar flow path stays the oracle.
        self.network = FlowNetwork(sim, vectorized=vectorized)

        # Core copy engines are *time-sliced*: a flow running at rate r with
        # achievable single-stream rate d occupies fraction r/d of its core,
        # so concurrent copies issued by one core can never aggregate beyond
        # what the core could do serially.  Capacity 1.0 = one core.
        self.core_engines = [
            Resource(f"engine[core{c}]", 1.0) for c in range(spec.n_cores)
        ]
        self.mem_ports = [
            Resource(f"mem[domain{d}]", spec.domain_mem_bandwidth[d],
                     contention_knee=spec.mem_stream_knee,
                     contention_alpha=spec.mem_stream_alpha)
            for d in range(spec.n_domains)
        ]
        self.links: dict[tuple[int, int], Resource] = {}
        for link in spec.links:
            if link.key in self.links:
                raise HardwareConfigError(f"duplicate link {link.key}")
            self.links[link.key] = Resource(f"link{link.key}", link.bandwidth)
        # Route tables and latencies are pure functions of the frozen spec;
        # share one shortest-path pass across every machine built from it.
        self._routes, self._link_latency = _route_tables(spec)

        # Optional I/OAT-style DMA engine (one per machine, era-typical
        # rate); time-sliced like a core engine.
        self.dma_rate = spec.core.copy_bandwidth
        self.dma_engine = Resource("dma-engine", 1.0)
        # In-flight reads per cache domain: concurrent readers of the same
        # source range within one cache domain share line fills (the lines a
        # peer is fetching right now hit in the shared cache), so only one
        # memory fetch per line reaches the controller.
        self._inflight_reads: dict[int, list[tuple[int, int, int]]] = {}
        # Shared-cache aggregate bandwidth: cache-served reads and
        # write-allocates of every sharer compete for the banked LLC.
        self.llc_ports: dict[int, Resource] = {
            id(dom): Resource(f"llcbw[{dom.name}]", spec.llc.total_bandwidth)
            for dom in self.caches.domains
        }
        self.bytes_copied = 0
        self.copies = 0

    # -- allocation ----------------------------------------------------------
    def alloc(
        self,
        size: int,
        domain: int,
        label: str = "",
        backed: bool = True,
        array: Optional[np.ndarray] = None,
    ) -> SimBuffer:
        """Allocate a buffer homed on ``domain`` (first-touch is the caller)."""
        if not 0 <= domain < self.spec.n_domains:
            raise HardwareConfigError(f"domain {domain} out of range")
        if array is None and backed:
            array = np.zeros(size, dtype=np.uint8)
        return SimBuffer(size, domain, array=array, label=label)

    # -- routing -------------------------------------------------------------
    def route(self, src_domain: int, dst_domain: int) -> list[tuple[int, int]]:
        """Link keys traversed from one domain to another (possibly empty)."""
        try:
            return self._routes[(src_domain, dst_domain)]
        except KeyError:
            raise RoutingError(
                f"unknown domains ({src_domain}, {dst_domain})") from None

    # -- the copy primitive ----------------------------------------------------
    def copy(
        self,
        core: int,
        src: SimBuffer,
        src_off: int,
        dst: SimBuffer,
        dst_off: int,
        nbytes: int,
        kernel: bool = False,
        label: str = "copy",
    ) -> Event:
        """Copy ``nbytes`` from ``src`` to ``dst``, executed by ``core``.

        Returns the completion event.  ``kernel`` marks in-kernel copies
        (KNEM) — it only affects tracing here; syscall costs are charged by
        the kernel layer before issuing the copy.
        """
        self.spec._check_core(core)
        src.check_range(src_off, nbytes)
        dst.check_range(dst_off, nbytes)
        core_domain = self.spec.core_domain(core)

        clean, dirty = self.caches.residency(core, src, src_off, nbytes)
        # Dirty lines (written by a peer core) are served by a coherence
        # intervention whose usefulness is platform-dependent: ~free on an
        # on-die shared L3, bus-speed (worthless) on a snoopy FSB.
        resident = clean + dirty * self.spec.dirty_intervention_efficiency
        cache_dom = self.caches.domain_of(core)
        sharers = self._sharing_factor(cache_dom, src.id, src_off, nbytes)
        # Concurrent same-domain readers split the line fills among them.
        miss = (1.0 - resident) / (1.0 + sharers)
        hit = 1.0 - miss
        read_route = self.route(src.domain, core_domain)
        demand = self._blended_rate(hit, read_hops=len(read_route))
        weights: dict[Resource, float] = {self.core_engines[core]: 1.0 / demand}
        streams: dict[Resource, float] = {}
        # LLC traffic: cache-served reads (hit fraction) plus write-allocate.
        self._add_weight(weights, self.llc_ports[id(cache_dom)], hit + 1.0)
        # Reading a peer's dirty lines may demote them with a home-memory
        # writeback (MESI/MESIF); MOESI serves sharers from the Owned state
        # without touching memory (intervention_writeback = 0).
        src_port_load = miss + (dirty * self.spec.dirty_intervention_efficiency
                                * self.spec.intervention_writeback)
        if src_port_load > 1e-9:
            src_port = self.mem_ports[src.domain]
            self._add_weight(weights, src_port, src_port_load)
            streams[src_port] = 1.0  # a latency-sensitive read stream
        if miss > 1e-9:
            for key in read_route:
                self._add_weight(weights, self.links[key], miss)
        dst_port = self.mem_ports[dst.domain]
        self._add_weight(weights, dst_port, 1.0)
        streams[dst_port] = streams.get(dst_port, 0.0) + self.spec.write_stream_weight
        for key in self.route(core_domain, dst.domain):
            self._add_weight(weights, self.links[key], 1.0)

        latency = self.spec.mem_latency
        for key in self.route(src.domain, core_domain):
            latency += self._link_latency[key]
        for key in self.route(core_domain, dst.domain):
            latency += self._link_latency[key]

        req = CopyRequest(core, src, src_off, dst, dst_off, nbytes, kernel, label)
        entry = (src.id, src_off, src_off + nbytes)
        self._inflight_reads.setdefault(id(cache_dom), []).append(entry)
        done = self.network.transfer(nbytes, demand, weights, latency=latency,
                                     label=label, streams=streams)

        def _finish(_ev):
            self._inflight_reads[id(cache_dom)].remove(entry)
            self._complete(req)

        done.add_callback(_finish)
        return done

    def _sharing_factor(self, cache_dom, buffer_id: int, start: int,
                        nbytes: int) -> float:
        """Overlap-weighted count of concurrent same-domain readers of the
        range ``[start, start+nbytes)`` of one buffer."""
        entries = self._inflight_reads.get(id(cache_dom))
        if not entries or nbytes <= 0:
            return 0.0
        end = start + nbytes
        share = 0.0
        for bid, s, e in entries:
            if bid != buffer_id:
                continue
            lo, hi = max(s, start), min(e, end)
            if lo < hi:
                share += (hi - lo) / nbytes
        return share

    def dma_copy(
        self,
        src: SimBuffer,
        src_off: int,
        dst: SimBuffer,
        dst_off: int,
        nbytes: int,
        label: str = "dma",
    ) -> Event:
        """Copy offloaded to the I/OAT-style DMA engine (no core engine used)."""
        src.check_range(src_off, nbytes)
        dst.check_range(dst_off, nbytes)
        weights: dict[Resource, float] = {self.dma_engine: 1.0 / self.dma_rate}
        self._add_weight(weights, self.mem_ports[src.domain], 1.0)
        self._add_weight(weights, self.mem_ports[dst.domain], 1.0)
        for key in self.route(src.domain, dst.domain):
            self._add_weight(weights, self.links[key], 1.0)
        latency = self.spec.mem_latency * 2  # descriptor fetch + completion write
        req = CopyRequest(None, src, src_off, dst, dst_off, nbytes, True, label)
        done = self.network.transfer(nbytes, self.dma_rate, weights,
                                     latency=latency, label=label)
        done.add_callback(lambda _ev: self._complete(req, touch_caches=False))
        return done

    # -- helpers ---------------------------------------------------------------
    def _blended_rate(self, hit: float, read_hops: int = 0) -> float:
        """Copy engine demand cap, blending memory- and cache-source rates.

        The miss portion is latency-bound and degrades with NUMA distance
        (``numa_read_hop_penalty`` per link hop on the read path).
        """
        core = self.spec.core
        llc_bw = self.caches.domains[0].bandwidth
        miss_bw = core.copy_bandwidth
        if read_hops:
            miss_bw /= 1.0 + self.spec.numa_read_hop_penalty * read_hops
        inv = (1.0 - hit) / miss_bw + hit / llc_bw
        return 1.0 / inv

    @staticmethod
    def _add_weight(weights: dict[Resource, float], res: Resource, w: float) -> None:
        weights[res] = weights.get(res, 0.0) + w

    def _complete(self, req: CopyRequest, touch_caches: bool = True) -> None:
        if req.src.backed and req.dst.backed and req.nbytes:
            req.dst.data[req.dst_off: req.dst_off + req.nbytes] = \
                req.src.data[req.src_off: req.src_off + req.nbytes]
        if touch_caches and req.core is not None:
            # Source lines arrive clean (or get demoted to shared-clean by
            # the intervention); destination lines are dirty in this cache.
            self.caches.touch(req.core, req.src, req.src_off, req.nbytes,
                              dirty=False)
            self.caches.touch(req.core, req.dst, req.dst_off, req.nbytes,
                              dirty=True)
        self.bytes_copied += req.nbytes
        self.copies += 1
        # Hot path: skip building the 11-field kwargs dict when tracing is
        # off; the always-on per-category counter is maintained either way.
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                "copy",
                core=req.core,
                src=req.src.label,
                dst=req.dst.label,
                nbytes=req.nbytes,
                kernel=req.kernel,
                label=req.label,
                src_buf=req.src.id,
                src_off=req.src_off,
                dst_buf=req.dst.id,
                dst_off=req.dst_off,
            )
        else:
            tracer.tick("copy")
