"""Range-accurate LRU cache-residency model.

The model tracks, per *cache domain* (a group of cores sharing a cache —
Zoot's L2 per core-pair, the per-socket L3 elsewhere), exactly which byte
ranges of which buffers are resident, as a set of disjoint intervals.
Copies query the hit fraction of the precise range they are about to read,
and install the ranges they read and wrote.  Range accuracy matters: a
pipeline streaming *new* segments of a big buffer must see misses even
though *earlier* segments of the same buffer are resident.

This captures the cache effects the paper's evaluation depends on:

- **cache reuse** — a broadcast source that stays resident is re-read by
  in-domain peers at cache rather than memory bandwidth (why ASP's gain
  exceeds the off-cache synthetic benchmark's, Section VI-E);
- **cache pollution** — copy-in/copy-out FIFOs install intermediate bytes,
  evicting application data (Section I's second identified problem).

Eviction is LRU at two granularities: least-recently-touched buffer first,
and within it, oldest-inserted ranges first.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import TYPE_CHECKING, Deque, Iterable

from repro.errors import HardwareConfigError
from repro.hardware.spec import MachineSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.memory import SimBuffer

__all__ = ["CacheDomain", "CacheSystem"]


class _Ranges:
    """Disjoint, insertion-ordered byte ranges of one buffer.

    Each span is ``[start, end, dirty]``: *dirty* spans hold lines written
    by a copy destination (another core reading them needs a coherence
    intervention); *clean* spans were loaded by reads.
    """

    __slots__ = ("spans", "total")

    def __init__(self) -> None:
        # deque of [start, end, dirty) in insertion order (oldest left)
        self.spans: Deque[list] = deque()
        self.total = 0

    def overlap(self, start: int, end: int) -> tuple[int, int]:
        """Resident bytes of [start, end) as ``(clean, dirty)``."""
        clean = dirty = 0
        for s, e, d in self.spans:
            lo, hi = max(s, start), min(e, end)
            if lo < hi:
                if d:
                    dirty += hi - lo
                else:
                    clean += hi - lo
        return clean, dirty

    def insert(self, start: int, end: int, dirty: bool) -> int:
        """Insert [start, end) with the given state; returns net bytes added.

        Overlapped portions of existing spans are carved out (the new span
        owns its range and sits at the young end); non-overlapped remainders
        keep their age and state.
        """
        if end <= start:
            return 0
        keep: Deque[list] = deque()
        removed = 0
        for span in self.spans:
            s, e, d = span
            if e <= start or s >= end:
                keep.append(span)
                continue
            if s < start:
                keep.append([s, start, d])
            if e > end:
                keep.append([end, e, d])
            removed += min(e, end) - max(s, start)
        keep.append([start, end, dirty])
        self.spans = keep
        added = (end - start) - removed
        self.total += added
        return added

    def evict_oldest(self, nbytes: int) -> int:
        """Drop up to ``nbytes`` from the oldest spans; returns bytes dropped."""
        dropped = 0
        while nbytes > dropped and self.spans:
            s, e, d = self.spans[0]
            ln = e - s
            if ln <= nbytes - dropped:
                self.spans.popleft()
                dropped += ln
            else:
                self.spans[0][0] = s + (nbytes - dropped)
                dropped = nbytes
        self.total -= dropped
        return dropped


class CacheDomain:
    """One shared cache: range-LRU over buffers."""

    def __init__(self, name: str, capacity: int, bandwidth: float,
                 cores: Iterable[int]):
        if capacity <= 0:
            raise HardwareConfigError(f"cache {name}: capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.bandwidth = bandwidth
        self.cores = frozenset(cores)
        self._buffers: OrderedDict[int, _Ranges] = OrderedDict()
        self._total = 0
        self.evicted_bytes = 0

    @property
    def used(self) -> int:
        return self._total

    def resident_bytes(self, buffer_id: int) -> int:
        r = self._buffers.get(buffer_id)
        return r.total if r is not None else 0

    def touch(self, buffer_id: int, start: int, nbytes: int,
              dirty: bool = False) -> None:
        """Install ``[start, start+nbytes)`` (keeping the trailing window if
        the range alone exceeds the cache), evicting LRU ranges as needed.

        ``dirty`` marks the range as written (copy destination)."""
        if nbytes <= 0:
            return
        end = start + nbytes
        if nbytes > self.capacity:
            start = end - self.capacity  # streaming leaves only the tail
        ranges = self._buffers.pop(buffer_id, None)
        if ranges is None:
            ranges = _Ranges()
        self._buffers[buffer_id] = ranges  # most-recently-used position
        self._total += ranges.insert(start, end, dirty)
        self._evict_to_capacity(protect=buffer_id)

    def _evict_to_capacity(self, protect: int) -> None:
        while self._total > self.capacity:
            victim_id = next(iter(self._buffers))
            need = self._total - self.capacity
            if victim_id == protect and len(self._buffers) > 1:
                # The protected buffer is oldest but others exist: age it to
                # the young end once so the others get evicted first.
                self._buffers.move_to_end(victim_id)
                victim_id = next(iter(self._buffers))
            victim = self._buffers[victim_id]
            dropped = victim.evict_oldest(need)
            self._total -= dropped
            self.evicted_bytes += dropped
            if victim.total == 0:
                del self._buffers[victim_id]
            if dropped == 0:  # pragma: no cover - defensive
                raise HardwareConfigError("cache eviction made no progress")

    def residency(self, buffer_id: int, start: int,
                  nbytes: int) -> tuple[float, float]:
        """Hit fractions ``(clean, dirty)`` of ``[start, start+nbytes)``."""
        if nbytes <= 0:
            return 0.0, 0.0
        r = self._buffers.get(buffer_id)
        if r is None:
            return 0.0, 0.0
        clean, dirty = r.overlap(start, start + nbytes)
        return clean / nbytes, dirty / nbytes

    def invalidate(self, buffer_id: int) -> None:
        r = self._buffers.pop(buffer_id, None)
        if r is not None:
            self._total -= r.total

    def flush(self) -> None:
        self._buffers.clear()
        self._total = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CacheDomain {self.name} {self._total}/{self.capacity}B>"


class CacheSystem:
    """All last-level cache domains of a machine, indexed by core.

    Only the LLC participates in copy-bandwidth blending (the paper's cache
    effects are LLC effects); narrower levels still appear in the topology
    tree for distance computation.
    """

    def __init__(self, spec: MachineSpec):
        self.spec = spec
        llc = spec.llc
        self.domains: list[CacheDomain] = []
        self._core_domain: dict[int, CacheDomain] = {}
        seen: set[tuple[int, ...]] = set()
        for core in range(spec.n_cores):
            group = spec.cache_group(core, llc)
            if group in seen:
                continue
            seen.add(group)
            dom = CacheDomain(
                name=f"llc[{group[0]}-{group[-1]}]",
                capacity=llc.size,
                bandwidth=llc.bandwidth,
                cores=group,
            )
            self.domains.append(dom)
            for c in group:
                self._core_domain[c] = dom

    def domain_of(self, core: int) -> CacheDomain:
        try:
            return self._core_domain[core]
        except KeyError:
            raise HardwareConfigError(f"core {core} out of range") from None

    def residency(self, core: int, buf: "SimBuffer", start: int = 0,
                  nbytes: int | None = None) -> tuple[float, float]:
        """``(clean, dirty)`` hit fractions in ``core``'s LLC domain."""
        nbytes = buf.size if nbytes is None else nbytes
        return self.domain_of(core).residency(buf.id, start, nbytes)

    def touch(self, core: int, buf: "SimBuffer", start: int, nbytes: int,
              dirty: bool = False) -> None:
        self.domain_of(core).touch(buf.id, start, nbytes, dirty=dirty)

    def invalidate(self, buf: "SimBuffer") -> None:
        """Drop a buffer from every cache (used by IMB off-cache mode)."""
        for dom in self.domains:
            dom.invalidate(buf.id)

    def flush_all(self) -> None:
        for dom in self.domains:
            dom.flush()
