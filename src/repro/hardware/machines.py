"""The paper's four evaluation platforms (Section VI-A) plus generic builders.

Bandwidth and latency values are era-plausible calibrations for the 2007-2010
parts the paper names; the published hardware descriptions pin the *shape*
(core counts, socket/board layout, cache sizes and sharing, which links
exist), while the sustained-bandwidth numbers are taken from contemporary
STREAM/memcpy measurements of the same processor generations:

- Zoot    — 4s x 4c Intel Tigerton E7340 (2.40 GHz), SMP front-side bus:
            one north-bridge memory controller shared by 16 cores, 4 MB L2
            shared per core pair.  FSB-era sustained copy ~2.5 GB/s/core,
            ~10 GB/s aggregate controller throughput.
- Dancer  — 2s x 4c Intel Nehalem-EP E5520 (2.27 GHz), 2 NUMA domains,
            8 MB L3 per socket, QPI between sockets.
- Saturn  — 2s x 8c Intel Nehalem-EX X7550 (2.00 GHz), 2 NUMA domains,
            18 MB L3 per socket, wider QPI.
- IG      — 8s x 6c AMD Opteron 8439 SE (2.8 GHz), 8 NUMA domains on two
            boards (4+4), 5 MB L3 per socket, HyperTransport mesh within a
            board and a low-performance inter-board interlink (the paper
            notes the two-board split explicitly).

Absolute microseconds are not the reproduction target (see DESIGN.md §2);
who-wins/crossover shapes are.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import HardwareConfigError
from repro.hardware.spec import CacheSpec, CoreSpec, LinkSpec, MachineSpec
from repro.units import GiB, MiB, gbps

__all__ = [
    "zoot",
    "dancer",
    "saturn",
    "ig",
    "smp_machine",
    "numa_machine",
    "get_machine",
    "warm_caches",
    "MACHINES",
]


def zoot() -> MachineSpec:
    """16-core SMP: 4 sockets x quad-core Tigerton, one memory controller."""
    return MachineSpec(
        name="zoot",
        cores_per_socket=4,
        socket_domain=(0, 0, 0, 0),
        socket_board=(0, 0, 0, 0),
        domain_mem_bandwidth=(gbps(10.0),),
        domain_mem_bytes=(32 * GiB,),
        core=CoreSpec(
            freq_ghz=2.40,
            copy_bandwidth=gbps(2.5),
            cached_copy_bandwidth=gbps(6.5),
            elem_op_time=9.07e-9,
        ),
        caches=(
            CacheSpec(level=2, size=4 * MiB, scope="pair", bandwidth=gbps(6.5)),
        ),
        links=(),
        mem_latency=110e-9,
        dirty_intervention_efficiency=0.1,  # FSB HITM: bus-speed interventions
        description="4-socket quad-core Intel Xeon Tigerton E7340, SMP north-bridge",
    )


def dancer() -> MachineSpec:
    """8-core dual-socket Nehalem-EP with two NUMA domains over QPI."""
    return MachineSpec(
        name="dancer",
        cores_per_socket=4,
        socket_domain=(0, 1),
        socket_board=(0, 0),
        domain_mem_bandwidth=(gbps(15.0), gbps(15.0)),
        domain_mem_bytes=(2 * GiB, 2 * GiB),
        core=CoreSpec(
            freq_ghz=2.27,
            copy_bandwidth=gbps(5.0),
            cached_copy_bandwidth=gbps(11.0),
        ),
        caches=(
            CacheSpec(level=3, size=8 * MiB, scope="socket", bandwidth=gbps(11.0)),
        ),
        links=(LinkSpec(0, 1, bandwidth=gbps(10.5), latency=120e-9),),
        mem_latency=75e-9,
        dirty_intervention_efficiency=0.9,  # inclusive on-die L3
        description="2-socket quad-core Intel Xeon Nehalem-EP E5520",
    )


def saturn() -> MachineSpec:
    """16-core dual-socket Nehalem-EX with two NUMA domains."""
    return MachineSpec(
        name="saturn",
        cores_per_socket=8,
        socket_domain=(0, 1),
        socket_board=(0, 0),
        domain_mem_bandwidth=(gbps(20.0), gbps(20.0)),
        domain_mem_bytes=(32 * GiB, 32 * GiB),
        core=CoreSpec(
            freq_ghz=2.00,
            copy_bandwidth=gbps(4.5),
            cached_copy_bandwidth=gbps(10.0),
        ),
        caches=(
            CacheSpec(level=3, size=18 * MiB, scope="socket", bandwidth=gbps(10.0)),
        ),
        links=(LinkSpec(0, 1, bandwidth=gbps(12.0), latency=130e-9),),
        mem_latency=90e-9,
        dirty_intervention_efficiency=0.9,  # inclusive on-die L3
        description="2-socket octo-core Intel Xeon Nehalem-EX X7550",
    )


def ig() -> MachineSpec:
    """48-core 8-socket Opteron: HT mesh per board, slow inter-board link.

    Within each 4-socket board the HyperTransport fabric is modelled as a
    full mesh of 4 GB/s links; the boards are joined by two 4 GB/s bridge
    links (domains 0-4 and 3-7) — "low performance" in that the whole
    24-core board shares two links' bisection, matching the paper's "two
    sets of 4 sockets on two separate boards connected by a low performance
    interlink".
    """
    intra = gbps(4.0)
    inter = gbps(4.0)
    links: list[LinkSpec] = []
    for board_base in (0, 4):
        board = range(board_base, board_base + 4)
        for i in board:
            for j in board:
                if i < j:
                    links.append(LinkSpec(i, j, bandwidth=intra, latency=120e-9))
    links.append(LinkSpec(0, 4, bandwidth=inter, latency=400e-9))
    links.append(LinkSpec(3, 7, bandwidth=inter, latency=400e-9))
    return MachineSpec(
        name="ig",
        cores_per_socket=6,
        socket_domain=tuple(range(8)),
        socket_board=(0, 0, 0, 0, 1, 1, 1, 1),
        domain_mem_bandwidth=tuple(gbps(8.0) for _ in range(8)),
        domain_mem_bytes=tuple(16 * GiB for _ in range(8)),
        core=CoreSpec(
            freq_ghz=2.8,
            copy_bandwidth=gbps(3.5),
            cached_copy_bandwidth=gbps(7.5),
            elem_op_time=8.0e-9,
        ),
        caches=(
            CacheSpec(level=3, size=5 * MiB, scope="socket", bandwidth=gbps(7.5)),
        ),
        links=tuple(links),
        mem_latency=100e-9,
        dirty_intervention_efficiency=0.75,  # non-inclusive L3, probe filter
        intervention_writeback=0.0,  # MOESI: Owned state, no memory writeback
        mem_stream_alpha=0.03,  # DDR2 row-buffer thrash under many streams
        description="8-socket six-core AMD Opteron 8439 SE on two boards",
    )


def smp_machine(
    name: str = "smp",
    n_sockets: int = 2,
    cores_per_socket: int = 4,
    mem_bandwidth: float = gbps(10.0),
    core_copy_bandwidth: float = gbps(3.0),
    llc_size: int = 8 * MiB,
) -> MachineSpec:
    """A generic single-memory-controller machine for tests and examples."""
    cached = max(core_copy_bandwidth * 2.5, mem_bandwidth / 2)
    return MachineSpec(
        name=name,
        cores_per_socket=cores_per_socket,
        socket_domain=tuple(0 for _ in range(n_sockets)),
        socket_board=tuple(0 for _ in range(n_sockets)),
        domain_mem_bandwidth=(mem_bandwidth,),
        domain_mem_bytes=(8 * GiB,),
        core=CoreSpec(2.5, core_copy_bandwidth, cached),
        caches=(CacheSpec(level=3, size=llc_size, scope="socket", bandwidth=cached),),
        description=f"synthetic SMP ({n_sockets}s x {cores_per_socket}c)",
    )


def numa_machine(
    name: str = "numa",
    n_domains: int = 4,
    cores_per_socket: int = 4,
    mem_bandwidth: float = gbps(10.0),
    link_bandwidth: float = gbps(5.0),
    core_copy_bandwidth: float = gbps(3.5),
    llc_size: int = 6 * MiB,
    topology: str = "mesh",
) -> MachineSpec:
    """A generic NUMA machine with one socket per domain.

    ``topology`` selects the link graph: ``"mesh"`` (all-pairs), ``"ring"``,
    or ``"chain"``.
    """
    if n_domains < 2:
        raise HardwareConfigError("numa_machine needs at least 2 domains")
    links: list[LinkSpec] = []
    if topology == "mesh":
        links = [
            LinkSpec(i, j, bandwidth=link_bandwidth)
            for i in range(n_domains)
            for j in range(i + 1, n_domains)
        ]
    elif topology == "ring":
        links = [
            LinkSpec(i, (i + 1) % n_domains, bandwidth=link_bandwidth)
            for i in range(n_domains)
        ]
    elif topology == "chain":
        links = [LinkSpec(i, i + 1, bandwidth=link_bandwidth)
                 for i in range(n_domains - 1)]
    else:
        raise HardwareConfigError(f"unknown topology {topology!r}")
    cached = core_copy_bandwidth * 2.2
    return MachineSpec(
        name=name,
        cores_per_socket=cores_per_socket,
        socket_domain=tuple(range(n_domains)),
        socket_board=tuple(0 for _ in range(n_domains)),
        domain_mem_bandwidth=tuple(mem_bandwidth for _ in range(n_domains)),
        domain_mem_bytes=tuple(4 * GiB for _ in range(n_domains)),
        core=CoreSpec(2.5, core_copy_bandwidth, cached),
        caches=(CacheSpec(level=3, size=llc_size, scope="socket", bandwidth=cached),),
        links=tuple(links),
        description=f"synthetic NUMA ({n_domains} domains, {topology})",
    )


#: Registry of the paper's platforms, keyed by the names used in Section VI.
MACHINES: dict[str, Callable[[], MachineSpec]] = {
    "zoot": zoot,
    "dancer": dancer,
    "saturn": saturn,
    "ig": ig,
}


#: Memoized named specs: frozen dataclasses, so every Machine built from the
#: same name shares one instance (and with it the per-spec topology,
#: distance-matrix, and route caches keyed on it).
_SPEC_CACHE: dict[str, MachineSpec] = {}


def get_machine(name: str) -> MachineSpec:
    """Build one of the paper's machines by (case-insensitive) name."""
    key = name.lower()
    spec = _SPEC_CACHE.get(key)
    if spec is None:
        try:
            spec = _SPEC_CACHE[key] = MACHINES[key]()
        except KeyError:
            raise HardwareConfigError(
                f"unknown machine {name!r}; available: {sorted(MACHINES)}"
            ) from None
    return spec


def warm_caches(spec_or_name) -> MachineSpec:
    """Populate every per-spec memo a machine build consults.

    The named-spec cache, topology tree, distance matrix, and shortest-path
    route tables are all pure functions of the frozen spec and memoized at
    module level.  The warm-pool sweep executor calls this in the *parent*
    before forking its workers, so every worker inherits populated caches
    instead of paying the O(n_cores²) construction per process — the
    amortize-the-setup move the paper itself makes for collectives.

    Accepts a machine name or a :class:`~repro.hardware.spec.MachineSpec`;
    returns the (cached) spec.  Imports are deferred: the topology and
    memory layers import this module.
    """
    from repro.hardware.memory import _route_tables
    from repro.topology.distance import DistanceMatrix
    from repro.topology.objects import Topology

    spec = get_machine(spec_or_name) if isinstance(spec_or_name, str) \
        else spec_or_name
    Topology.for_spec(spec)
    DistanceMatrix.for_spec(spec)
    _route_tables(spec)
    return spec
