"""Graham-style shared-memory fan-in/fan-out trees (related work [9]).

A logical fixed-degree tree built over the *rank order* (deliberately
topology-oblivious — the paper's critique of this approach is exactly that
"the fixed degree tree is built following the logical ranks layout, which
cannot always reflect architecture characteristics").  Messages stream
through the copy-in/copy-out transport in cache-sized segments to control
working-set size, as in the original component.

Not part of the paper's measured configurations; provided as the
related-work baseline for the topology-awareness ablation.
"""

from __future__ import annotations

from typing import Optional

from repro.coll.algorithms import export_schedule, rank_of, segments, vrank_of
from repro.coll.base import BaseColl, register_component
from repro.hardware.memory import SimBuffer
from repro.mpi.communicator import CollCtx

__all__ = ["SmTreeColl"]


def _kary_parent_children(vrank: int, size: int,
                          degree: int) -> tuple[Optional[int], list[int]]:
    parent = None if vrank == 0 else (vrank - 1) // degree
    children = [c for c in range(vrank * degree + 1, vrank * degree + degree + 1)
                if c < size]
    return parent, children


@register_component("smtree")
class SmTreeColl(BaseColl):
    """Fixed-degree fan-in/fan-out with segment pipelining."""

    def bcast(self, ctx: CollCtx, buf: SimBuffer, offset: int, nbytes: int,
              root: int):
        if ctx.size == 1:
            return
        degree = self.tuning.sm_tree_degree
        segsize = self.tuning.sm_tree_segsize
        v = vrank_of(ctx.rank, root, ctx.size)
        parent, children = _kary_parent_children(v, ctx.size, degree)
        pending = []
        for seg_off, seg_len in segments(nbytes, segsize):
            if parent is not None:
                yield from ctx.recv(rank_of(parent, root, ctx.size), buf,
                                    offset + seg_off, seg_len)
            for child in children:
                pending.append(ctx.isend(rank_of(child, root, ctx.size), buf,
                                         offset + seg_off, seg_len))
        for req in pending:
            yield req.event

    def gather(self, ctx: CollCtx, sendbuf: SimBuffer,
               recvbuf: Optional[SimBuffer], count: int, root: int):
        """Fan-in: children aggregate into a temp, forward up the k-ary tree."""
        size = ctx.size
        if size == 1:
            yield from self._local_copy(ctx, sendbuf, 0, recvbuf, 0, count)
            return
        degree = self.tuning.sm_tree_degree
        v = vrank_of(ctx.rank, root, size)
        parent, children = _kary_parent_children(v, size, degree)

        def subtree(vr: int) -> list[int]:
            out = [vr]
            _p, kids = _kary_parent_children(vr, size, degree)
            for k in kids:
                out.extend(subtree(k))
            return out

        mine = subtree(v)
        if v == 0:
            temp = recvbuf
        else:
            temp = ctx.proc.alloc(len(mine) * count, label="smtree-tmp")
        index = {vr: i for i, vr in enumerate(sorted(mine))}
        slot = (lambda vr: rank_of(vr, root, size) * count) if v == 0 else (
            lambda vr: index[vr] * count)
        yield from self._local_copy(ctx, sendbuf, 0, temp, slot(v), count)
        for child in children:
            child_vrs = sorted(subtree(child))
            # Children send their subtree in their own sorted-vrank order;
            # receive piecewise into the right slots.
            child_temp = ctx.proc.alloc(len(child_vrs) * count,
                                        label="smtree-rx")
            yield from ctx.recv(rank_of(child, root, size), child_temp, 0,
                                len(child_vrs) * count)
            for i, vr in enumerate(child_vrs):
                yield from self._local_copy(ctx, child_temp, i * count,
                                            temp, slot(vr), count)
        if v != 0:
            yield from ctx.send(rank_of(parent, root, size), temp, 0,
                                len(mine) * count)


export_schedule("smtree", "bcast",
                description="fixed-degree fan-out tree, segment pipelined")
export_schedule("smtree", "gather",
                description="fixed-degree fan-in with subtree aggregation")
