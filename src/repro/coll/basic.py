"""The ``basic`` component: the linear reference algorithms, unmodified.

Exists as a named registration of :class:`~repro.coll.base.BaseColl` so a
stack can select it explicitly (correctness baseline, and the delegation
target inside KNEM-Coll below its 16 KB threshold).
"""

from __future__ import annotations

from repro.coll.algorithms import export_schedule
from repro.coll.base import BaseColl, register_component

__all__ = ["BasicColl"]


@register_component("basic")
class BasicColl(BaseColl):
    """Linear algorithms over point-to-point for every operation."""


for _op in ("barrier", "bcast", "scatter", "gather", "allgather", "alltoall",
            "reduce", "allreduce"):
    export_schedule("basic", _op,
                    description=f"linear reference {_op} over point-to-point")
del _op
