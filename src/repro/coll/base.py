"""Component interface, registry, and linear reference algorithms.

:class:`BaseColl` implements every collective with the straightforward
linear algorithm over point-to-point messaging; specialized components
override what they optimize and inherit the rest — mirroring how Open MPI
components fall back to the basic module for unimplemented operations.

All collective methods are generators executed *per rank*: each rank of the
communicator runs the same method with its own :class:`CollCtx`, and the
method plays that rank's role in the algorithm.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.errors import CollectiveError
from repro.hardware.memory import SimBuffer
from repro.mpi.communicator import CollCtx

#: Reduction operators (numpy ufuncs applied element-wise).
REDUCE_OPS: dict[str, Callable] = {
    "sum": np.add,
    "prod": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
}

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.runtime import World

__all__ = ["BaseColl", "register_component", "make_component"]

_REGISTRY: dict[str, Callable[["World"], "BaseColl"]] = {}


def register_component(name: str):
    """Class decorator adding a collective component to the registry."""

    def wrap(cls):
        _REGISTRY[name] = cls
        cls.component_name = name
        return cls

    return wrap


def make_component(name: str, world: "World") -> "BaseColl":
    """Instantiate a registered collective component by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise CollectiveError(
            f"unknown collective component {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(world)


class BaseColl:
    """Linear reference algorithms; the fallback for every component."""

    component_name = "base"

    def __init__(self, world: "World"):
        self.world = world
        self.tuning = world.stack.tuning

    # -- helpers ------------------------------------------------------------
    def _local_copy(self, ctx: CollCtx, src: SimBuffer, src_off: int,
                    dst: SimBuffer, dst_off: int, nbytes: int):
        """A rank moving its own contribution (charged to its core)."""
        if nbytes:
            yield ctx.machine.mem.copy(ctx.proc.core, src, src_off, dst,
                                       dst_off, nbytes, label="coll-local")

    @staticmethod
    def _uniform(count: int, size: int) -> tuple[list[int], list[int]]:
        return [count] * size, [r * count for r in range(size)]

    # -- barrier -------------------------------------------------------------
    def barrier(self, ctx: CollCtx):
        yield from ctx.dissemination_barrier()

    # -- broadcast --------------------------------------------------------------
    def bcast(self, ctx: CollCtx, buf: SimBuffer, offset: int, nbytes: int,
              root: int):
        if ctx.size == 1:
            return
        if ctx.rank == root:
            reqs = [ctx.isend(peer, buf, offset, nbytes)
                    for peer in range(ctx.size) if peer != root]
            for req in reqs:
                yield req.event
        else:
            yield from ctx.recv(root, buf, offset, nbytes)

    # -- scatter -------------------------------------------------------------------
    def scatter(self, ctx: CollCtx, sendbuf: Optional[SimBuffer],
                recvbuf: SimBuffer, count: int, root: int):
        counts, displs = self._uniform(count, ctx.size)
        yield from self.scatterv(ctx, sendbuf, counts, displs, recvbuf, root)

    def scatterv(self, ctx: CollCtx, sendbuf: Optional[SimBuffer],
                 counts: list[int], displs: list[int], recvbuf: SimBuffer,
                 root: int):
        if ctx.rank == root:
            if sendbuf is None:
                raise CollectiveError("scatter root requires a send buffer")
            reqs = []
            for peer in range(ctx.size):
                if peer == root:
                    continue
                reqs.append(ctx.isend(peer, sendbuf, displs[peer], counts[peer]))
            yield from self._local_copy(ctx, sendbuf, displs[root], recvbuf, 0,
                                        counts[root])
            for req in reqs:
                yield req.event
        else:
            yield from ctx.recv(root, recvbuf, 0, counts[ctx.rank])

    # -- gather --------------------------------------------------------------------
    def gather(self, ctx: CollCtx, sendbuf: SimBuffer,
               recvbuf: Optional[SimBuffer], count: int, root: int):
        counts, displs = self._uniform(count, ctx.size)
        yield from self.gatherv(ctx, sendbuf, recvbuf, counts, displs, root)

    def gatherv(self, ctx: CollCtx, sendbuf: SimBuffer,
                recvbuf: Optional[SimBuffer], counts: list[int],
                displs: list[int], root: int):
        if ctx.rank == root:
            if recvbuf is None:
                raise CollectiveError("gather root requires a receive buffer")
            reqs = []
            for peer in range(ctx.size):
                if peer == root:
                    continue
                reqs.append(ctx.irecv(peer, recvbuf, displs[peer], counts[peer]))
            yield from self._local_copy(ctx, sendbuf, 0, recvbuf, displs[root],
                                        counts[root])
            for req in reqs:
                yield req.event
        else:
            yield from ctx.send(root, sendbuf, 0, counts[ctx.rank])

    # -- allgather --------------------------------------------------------------------
    def allgather(self, ctx: CollCtx, sendbuf: SimBuffer, recvbuf: SimBuffer,
                  count: int):
        counts, displs = self._uniform(count, ctx.size)
        yield from self.allgatherv(ctx, sendbuf, recvbuf, counts, displs)

    def allgatherv(self, ctx: CollCtx, sendbuf: SimBuffer, recvbuf: SimBuffer,
                   counts: list[int], displs: list[int]):
        me = ctx.rank
        reqs = [ctx.irecv(peer, recvbuf, displs[peer], counts[peer])
                for peer in range(ctx.size) if peer != me]
        sends = [ctx.isend(peer, sendbuf, 0, counts[me])
                 for peer in range(ctx.size) if peer != me]
        yield from self._local_copy(ctx, sendbuf, 0, recvbuf, displs[me],
                                    counts[me])
        for req in reqs + sends:
            yield req.event

    # -- reductions ---------------------------------------------------------
    def reduce(self, ctx: CollCtx, sendbuf: SimBuffer,
               recvbuf: Optional[SimBuffer], count: int, root: int,
               dtype: str = "u1", op: str = "sum"):
        """Binomial-tree reduction (an extension beyond the paper's five
        operations; KNEM-Coll inherits it unchanged — reductions are among
        the "unimplemented collective calls" the paper delegates)."""
        from repro.coll.algorithms import (binomial_children, binomial_parent,
                                           rank_of, vrank_of)

        try:
            combine = REDUCE_OPS[op]
        except KeyError:
            raise CollectiveError(
                f"unknown reduce op {op!r}; available: {sorted(REDUCE_OPS)}"
            ) from None
        itemsize = np.dtype(dtype).itemsize
        if count % itemsize:
            raise CollectiveError(f"count {count} not a multiple of {dtype} size")
        size = ctx.size
        v = vrank_of(ctx.rank, root, size)
        parent = binomial_parent(v)
        children = binomial_children(v, size)

        def view(buf: SimBuffer):
            return buf.data[:count].view(dtype) if buf.backed else None

        if not children and parent is not None:
            yield from ctx.send(rank_of(parent, root, size), sendbuf, 0, count)
            return
        accum = ctx.proc.alloc(count, label="reduce-accum",
                               backed=sendbuf.backed)
        yield from self._local_copy(ctx, sendbuf, 0, accum, 0, count)
        scratch = ctx.proc.alloc(count, label="reduce-scratch",
                                 backed=sendbuf.backed)
        for child in children:
            yield from ctx.recv(rank_of(child, root, size), scratch, 0, count)
            if accum.backed:
                combine(view(accum), view(scratch), out=view(accum))
            yield ctx.proc.elem_ops(count // itemsize)
        if parent is not None:
            yield from ctx.send(rank_of(parent, root, size), accum, 0, count)
        else:
            if recvbuf is None:
                raise CollectiveError("reduce root requires a receive buffer")
            yield from self._local_copy(ctx, accum, 0, recvbuf, 0, count)

    def allreduce(self, ctx: CollCtx, sendbuf: SimBuffer, recvbuf: SimBuffer,
                  count: int, dtype: str = "u1", op: str = "sum"):
        """Reduce to rank 0, then broadcast (the basic composition)."""
        yield from self.reduce(ctx.sub(0), sendbuf, recvbuf, count, root=0,
                               dtype=dtype, op=op)
        yield from self.bcast(ctx.sub(200), recvbuf, 0, count, root=0)

    # -- alltoall -----------------------------------------------------------
    def alltoall(self, ctx: CollCtx, sendbuf: SimBuffer, recvbuf: SimBuffer,
                 count: int):
        counts, displs = self._uniform(count, ctx.size)
        yield from self.alltoallv(ctx, sendbuf, counts, displs, recvbuf,
                                  counts, displs)

    def alltoallv(self, ctx: CollCtx, sendbuf: SimBuffer,
                  send_counts: list[int], send_displs: list[int],
                  recvbuf: SimBuffer, recv_counts: list[int],
                  recv_displs: list[int]):
        me = ctx.rank
        reqs = [ctx.irecv(peer, recvbuf, recv_displs[peer], recv_counts[peer])
                for peer in range(ctx.size) if peer != me]
        sends = [ctx.isend(peer, sendbuf, send_displs[peer], send_counts[peer])
                 for peer in range(ctx.size) if peer != me]
        yield from self._local_copy(ctx, sendbuf, send_displs[me], recvbuf,
                                    recv_displs[me], recv_counts[me])
        for req in reqs + sends:
            yield req.event
