"""The Open MPI *tuned* collective component (baseline [10]).

Implements the algorithm pool and size-based runtime decision rules the
paper describes (Section II): for Broadcast, "a binomial algorithm is used
to deliver small messages, a split binary tree algorithm is selected for
intermediate messages, and large messages are transferred by a pipeline
algorithm".  Rooted gather/scatter switch binomial -> linear; allgather
switches recursive-doubling -> ring; alltoall uses pairwise exchange for
all but tiny messages.

Faithfulness note (documented in DESIGN.md): the intermediate-size
"split-binary" broadcast is modelled as a segmented binary-tree pipeline,
which has the same asymptotic cost structure (two concurrent subtrees, each
streaming segments) without the leaf half-exchange of the exact algorithm.
"""

from __future__ import annotations

from typing import Optional

from repro.coll.algorithms import (
    binary_parent_children,
    export_schedule,
    binomial_children,
    binomial_parent,
    binomial_subtree_size,
    chain_neighbors,
    rank_of,
    segments,
    vrank_of,
)
from repro.coll.base import BaseColl, register_component
from repro.errors import CollectiveError
from repro.hardware.memory import SimBuffer
from repro.mpi.communicator import CollCtx

__all__ = ["TunedColl"]


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@register_component("tuned")
class TunedColl(BaseColl):
    """Algorithm pool + decision function, like Open MPI's coll/tuned."""

    # ------------------------------------------------------------- broadcast
    def bcast(self, ctx: CollCtx, buf: SimBuffer, offset: int, nbytes: int,
              root: int):
        if ctx.size == 1:
            return
        t = self.tuning
        if nbytes <= t.tuned_bcast_binomial_max:
            yield from self._bcast_tree(ctx, buf, offset, nbytes, root,
                                        shape="binomial", segsize=0)
        elif nbytes <= t.tuned_bcast_splitbin_max:
            yield from self._bcast_tree(ctx, buf, offset, nbytes, root,
                                        shape="binary",
                                        segsize=t.tuned_bcast_segsize // 4)
        else:
            yield from self._bcast_tree(ctx, buf, offset, nbytes, root,
                                        shape="chain",
                                        segsize=t.tuned_bcast_segsize)

    def _bcast_tree(self, ctx: CollCtx, buf: SimBuffer, offset: int,
                    nbytes: int, root: int, shape: str, segsize: int):
        """Segmented broadcast down a tree: recv a segment, forward it."""
        v = vrank_of(ctx.rank, root, ctx.size)
        if shape == "binomial":
            parent = binomial_parent(v)
            children = binomial_children(v, ctx.size)
        elif shape == "binary":
            parent, children = binary_parent_children(v, ctx.size)
        elif shape == "chain":
            parent, nxt = chain_neighbors(v, ctx.size)
            children = [] if nxt is None else [nxt]
        else:  # pragma: no cover - defensive
            raise CollectiveError(f"unknown tree shape {shape!r}")
        to_rank = lambda vr: rank_of(vr, root, ctx.size)  # noqa: E731
        pending = []
        for seg_off, seg_len in segments(nbytes, segsize):
            if parent is not None:
                yield from ctx.recv(to_rank(parent), buf, offset + seg_off,
                                    seg_len)
            for child in children:
                pending.append(ctx.isend(to_rank(child), buf,
                                         offset + seg_off, seg_len))
        for req in pending:
            yield req.event

    # ------------------------------------------------------------------ gather
    def gather(self, ctx: CollCtx, sendbuf: SimBuffer,
               recvbuf: Optional[SimBuffer], count: int, root: int):
        if count <= self.tuning.tuned_gather_binomial_max and ctx.size > 2:
            yield from self._gather_binomial(ctx, sendbuf, recvbuf, count, root)
        else:
            yield from super().gather(ctx, sendbuf, recvbuf, count, root)

    def _gather_binomial(self, ctx: CollCtx, sendbuf: SimBuffer,
                         recvbuf: Optional[SimBuffer], count: int, root: int):
        """Fan-in over the binomial tree; subtree blocks ride in vrank order."""
        size = ctx.size
        v = vrank_of(ctx.rank, root, size)
        parent = binomial_parent(v)
        children = binomial_children(v, size)
        sub = binomial_subtree_size(v, size)
        if v == 0 and root == 0 and recvbuf is not None:
            temp, base = recvbuf, 0  # vrank order == rank order: gather in place
        else:
            temp = ctx.proc.alloc(sub * count, label="gather-tmp")
            base = 0
        yield from self._local_copy(ctx, sendbuf, 0, temp, base, count)
        # Children deliver smallest-subtree-first order irrelevant: irecv all.
        reqs = []
        for child in children:
            child_sub = binomial_subtree_size(child, size)
            reqs.append(ctx.irecv(rank_of(child, root, size), temp,
                                  base + (child - v) * count,
                                  child_sub * count))
        for req in reqs:
            yield req.event
        if v != 0:
            yield from ctx.send(rank_of(parent, root, size), temp, base,
                                sub * count)
        elif not (root == 0 and temp is recvbuf):
            if recvbuf is None:
                raise CollectiveError("gather root requires a receive buffer")
            # Unshuffle vrank-ordered temp into rank-ordered recvbuf.
            for vr in range(size):
                yield from self._local_copy(
                    ctx, temp, vr * count, recvbuf,
                    rank_of(vr, root, size) * count, count,
                )

    # -------------------------------------------------------------------- scatter
    def scatter(self, ctx: CollCtx, sendbuf: Optional[SimBuffer],
                recvbuf: SimBuffer, count: int, root: int):
        if count <= self.tuning.tuned_gather_binomial_max and ctx.size > 2:
            yield from self._scatter_binomial(ctx, sendbuf, recvbuf, count, root)
        else:
            yield from super().scatter(ctx, sendbuf, recvbuf, count, root)

    def _scatter_binomial(self, ctx: CollCtx, sendbuf: Optional[SimBuffer],
                          recvbuf: SimBuffer, count: int, root: int):
        size = ctx.size
        v = vrank_of(ctx.rank, root, size)
        parent = binomial_parent(v)
        children = binomial_children(v, size)
        sub = binomial_subtree_size(v, size)
        if v == 0:
            if sendbuf is None:
                raise CollectiveError("scatter root requires a send buffer")
            if root == 0:
                temp, base = sendbuf, 0
            else:
                temp = ctx.proc.alloc(size * count, label="scatter-tmp")
                base = 0
                for vr in range(size):  # shuffle into vrank order
                    yield from self._local_copy(
                        ctx, sendbuf, rank_of(vr, root, size) * count,
                        temp, vr * count, count,
                    )
        else:
            temp = ctx.proc.alloc(sub * count, label="scatter-tmp")
            base = 0
            yield from ctx.recv(rank_of(parent, root, size), temp, base,
                                sub * count)
        pending = []
        for child in children:
            child_sub = binomial_subtree_size(child, size)
            pending.append(ctx.isend(rank_of(child, root, size), temp,
                                     base + (child - v) * count,
                                     child_sub * count))
        yield from self._local_copy(ctx, temp, base + 0, recvbuf, 0, count)
        for req in pending:
            yield req.event

    # ------------------------------------------------------------------- allgather
    def allgather(self, ctx: CollCtx, sendbuf: SimBuffer, recvbuf: SimBuffer,
                  count: int):
        if ctx.size == 1:
            yield from self._local_copy(ctx, sendbuf, 0, recvbuf, 0, count)
            return
        if count < self.tuning.tuned_allgather_ring_min and _is_pow2(ctx.size):
            yield from self._allgather_recursive_doubling(ctx, sendbuf,
                                                          recvbuf, count)
        else:
            yield from self._allgather_ring(ctx, sendbuf, recvbuf, count)

    def _allgather_ring(self, ctx: CollCtx, sendbuf: SimBuffer,
                        recvbuf: SimBuffer, count: int):
        me, size = ctx.rank, ctx.size
        yield from self._local_copy(ctx, sendbuf, 0, recvbuf, me * count, count)
        left, right = (me - 1) % size, (me + 1) % size
        for step in range(size - 1):
            send_block = (me - step) % size
            recv_block = (me - step - 1) % size
            yield from ctx.sendrecv(
                right, recvbuf, send_block * count, count,
                left, recvbuf, recv_block * count, count, phase=step,
            )

    def _allgather_recursive_doubling(self, ctx: CollCtx, sendbuf: SimBuffer,
                                      recvbuf: SimBuffer, count: int):
        me, size = ctx.rank, ctx.size
        yield from self._local_copy(ctx, sendbuf, 0, recvbuf, me * count, count)
        k = 0
        dist = 1
        while dist < size:
            partner = me ^ dist
            my_group = (me // dist) * dist
            partner_group = (partner // dist) * dist
            yield from ctx.sendrecv(
                partner, recvbuf, my_group * count, dist * count,
                partner, recvbuf, partner_group * count, dist * count,
                phase=k,
            )
            dist <<= 1
            k += 1

    # --------------------------------------------------------------------- alltoall
    def alltoall(self, ctx: CollCtx, sendbuf: SimBuffer, recvbuf: SimBuffer,
                 count: int):
        if ctx.size == 1 or count < self.tuning.tuned_alltoall_pairwise_min:
            yield from super().alltoall(ctx, sendbuf, recvbuf, count)
            return
        yield from self._alltoall_pairwise(ctx, sendbuf, recvbuf, count)

    def _alltoall_pairwise(self, ctx: CollCtx, sendbuf: SimBuffer,
                           recvbuf: SimBuffer, count: int):
        """One partner per step: every core sends and receives exactly once."""
        me, size = ctx.rank, ctx.size
        yield from self._local_copy(ctx, sendbuf, me * count, recvbuf,
                                    me * count, count)
        for step in range(1, size):
            if _is_pow2(size):
                sendto = recvfrom = me ^ step
            else:
                sendto = (me + step) % size
                recvfrom = (me - step) % size
            yield from ctx.sendrecv(
                sendto, sendbuf, sendto * count, count,
                recvfrom, recvbuf, recvfrom * count, count, phase=step,
            )


export_schedule("tuned", "bcast",
                description="binomial / split-binary / chain pipeline by size")
export_schedule("tuned", "scatter",
                description="binomial below 6 KiB, linear otherwise")
export_schedule("tuned", "gather",
                description="binomial below 6 KiB, linear otherwise")
export_schedule("tuned", "allgather",
                description="recursive doubling (pow2) or ring")
export_schedule("tuned", "alltoall",
                description="pairwise exchange for all but tiny messages")
