"""Communication-topology helpers shared by the collective components.

All helpers work in *vrank* space: ranks are rotated so the operation root
is vrank 0 (``vrank = (rank - root) % size``), the standard trick that lets
one tree shape serve any root.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "vrank_of",
    "rank_of",
    "binomial_parent",
    "binomial_children",
    "binomial_subtree_size",
    "binary_parent_children",
    "chain_neighbors",
    "segments",
    "ScheduleSpec",
    "export_schedule",
    "exported_schedules",
    "schedule_names",
    "get_schedule",
]


@dataclass(frozen=True)
class ScheduleSpec:
    """One exported collective schedule, registered for static verification.

    Every collective component module calls :func:`export_schedule` at import
    time for each operation it implements, so ``repro.analysis.static`` can
    enumerate and model-check the full algorithm surface without knowing the
    components by name.  ``direction`` / ``concurrent`` mirror the
    :class:`repro.analysis.direction.DirectionSpec` contract the schedule is
    expected to honour ("mixed" imposes no direction constraint).
    """

    component: str
    op: str
    direction: str = "mixed"
    concurrent: bool = False
    description: str = ""
    #: tuning-field overrides that select algorithm variants worth verifying
    #: separately (e.g. forcing the multi-level board tree on 2-board specs).
    variants: tuple[tuple[str, tuple[tuple[str, object], ...]], ...] = field(
        default_factory=tuple)

    @property
    def name(self) -> str:
        return f"{self.component}.{self.op}"


#: name -> spec, in registration (module import) order.
_SCHEDULES: "dict[str, ScheduleSpec]" = {}


def export_schedule(component: str, op: str, *, direction: str = "mixed",
                    concurrent: bool = False, description: str = "",
                    variants: "dict[str, dict[str, object]] | None" = None,
                    ) -> ScheduleSpec:
    """Register one (component, operation) schedule for static verification."""
    frozen = tuple(sorted((name, tuple(sorted(changes.items())))
                          for name, changes in (variants or {}).items()))
    spec = ScheduleSpec(component=component, op=op, direction=direction,
                        concurrent=concurrent, description=description,
                        variants=frozen)
    _SCHEDULES[spec.name] = spec
    return spec


def exported_schedules(component: str | None = None) -> list[ScheduleSpec]:
    """All registered schedules (optionally for one component)."""
    specs = list(_SCHEDULES.values())
    if component is not None:
        specs = [s for s in specs if s.component == component]
    return specs


def schedule_names() -> list[str]:
    return list(_SCHEDULES)


def get_schedule(name: str) -> ScheduleSpec:
    try:
        return _SCHEDULES[name]
    except KeyError:
        raise KeyError(f"no exported schedule named {name!r}; "
                       f"known: {', '.join(_SCHEDULES) or '(none)'}") from None


def vrank_of(rank: int, root: int, size: int) -> int:
    """Rotate ``rank`` so the collective root becomes vrank 0."""
    return (rank - root) % size


def rank_of(vrank: int, root: int, size: int) -> int:
    """Inverse of :func:`vrank_of`."""
    return (vrank + root) % size


def binomial_parent(vrank: int) -> int | None:
    """Parent of a vrank in the binomial broadcast tree (None for the root).

    The parent clears the lowest set bit: vrank 0b0110 -> 0b0100.
    """
    if vrank == 0:
        return None
    return vrank & (vrank - 1)


def binomial_children(vrank: int, size: int) -> list[int]:
    """Children of a vrank, in the order a broadcast sends to them.

    vrank ``v`` owns children ``v + 2^k`` for each ``k`` with ``2^k`` above
    ``v``'s lowest set bit, while the child index stays below ``size``.
    Children are emitted largest-subtree-first, matching the usual binomial
    broadcast schedule (the big subtree gets the data earliest).
    """
    if size <= 1:
        return []
    low = vrank & -vrank if vrank else 1 << (size - 1).bit_length()
    children: list[int] = []
    bit = 1
    while bit < low and vrank + bit < size:
        children.append(vrank + bit)
        bit <<= 1
    return children[::-1]


def binomial_subtree_size(vrank: int, size: int) -> int:
    """Number of vranks in the subtree rooted at ``vrank`` (incl. itself).

    In the binomial tree, the subtree of ``v`` spans the contiguous vrank
    interval ``[v, v + span)`` with ``span = min(lowbit(v), size - v)``.
    """
    if vrank == 0:
        return size
    low = vrank & -vrank
    return min(low, size - vrank)


def binary_parent_children(vrank: int, size: int) -> tuple[int | None, list[int]]:
    """In-order complete binary tree over vranks (pipelined tree broadcast)."""
    parent = None if vrank == 0 else (vrank - 1) // 2
    children = [c for c in (2 * vrank + 1, 2 * vrank + 2) if c < size]
    return parent, children


def chain_neighbors(vrank: int, size: int) -> tuple[int | None, int | None]:
    """Predecessor/successor in the chain (pipeline) topology."""
    prev = None if vrank == 0 else vrank - 1
    nxt = None if vrank == size - 1 else vrank + 1
    return prev, nxt


def segments(nbytes: int, segsize: int) -> list[tuple[int, int]]:
    """Split ``nbytes`` into ``(offset, length)`` segments of ``segsize``."""
    if nbytes == 0:
        return [(0, 0)]
    if segsize <= 0:
        return [(0, nbytes)]
    out = []
    off = 0
    while off < nbytes:
        ln = min(segsize, nbytes - off)
        out.append((off, ln))
        off += ln
    return out
