"""KNEM-Coll: the paper's collective component (Section V).

Data movement never goes through point-to-point primitives; the component
calls the KNEM driver directly, using shared memory "only as an out of band
channel for synchronization or delivering cookies":

- **Broadcast** — root registers its buffer once (persistent region), the
  cookie is distributed out-of-band, every receiver's core performs its own
  in-kernel copy *in parallel* (receiver-reading).  On NUMA machines a
  two-level topology-aware tree with segment pipelining is used (Figure 1).
- **Scatter** — like Broadcast, but each receiver reads only its slice
  (partial region access; offsets computed from rank and counts).
- **Gather** — direction control: the root registers its *receive* buffer
  as writable and every sender's core writes its slice concurrently
  (sender-writing), removing the root-core serialization.
- **AllGather** — a Gather to rank 0 followed by a Broadcast: deliberately
  the paper's simple concatenation, which Section VI-D shows losing up to
  25% to Tuned-KNEM's ring on large NUMA machines.
- **Alltoall(v)** — every rank registers its send buffer, cookies are
  exchanged through a pre-allocated shared-memory array, then each rank
  fetches its blocks receiver-reading with a *rotated* start offset so each
  sender's memory is accessed by exactly one reader at a time (Figure 3).

Messages below 16 KB and unimplemented operations are delegated to the
regular (tuned) component, as in the real implementation.

**Degradation** (when a :class:`~repro.faults.FaultPlan` is armed): every
ioctl is retried once.  A registration that still fails turns the region
owner into a *direct sender* — the :data:`_DIRECT` sentinel rides the normal
cookie channel, and peers receive their data point-to-point instead.  A copy
that still fails makes the reader ask for a point-to-point resend in its
synchronization verdict (:data:`_RESEND`), served by the region owner after
it has collected *all* verdicts.  Either way the collective completes with
the same bytes over the copy-in/copy-out path; it never deadlocks, because
every recovery decision is made by one rank and communicated in-band on the
channels the protocol already uses.  After enough consecutive failures
:class:`~repro.faults.KnemHealth` disqualifies KNEM and each rank locally
stops attempting ioctls (which drives the same in-band degraded protocol).
Regions are force-reclaimed in ``finally`` blocks, so even aborting
collectives leak no cookies.
"""

from __future__ import annotations

from typing import Optional

from repro.coll.algorithms import export_schedule, segments
from repro.coll.base import BaseColl, register_component
from repro.coll.hierarchy import build_board_tree, build_tree, hierarchy_worthwhile
from repro.coll.tuned import TunedColl
from repro.errors import CollectiveError, FaultInjected
from repro.hardware.memory import SimBuffer
from repro.kernel.knem import FLAG_DMA, PROT_READ, PROT_WRITE
from repro.mpi.communicator import CollCtx

__all__ = ["KnemColl"]

# Phase namespace layout (offsets into the per-call tag space).
_PH_COOKIE = 0      # root/leader -> peers: region cookie
_PH_SYNC = 1        # peers -> root/leader: copy verdict (_OK / _RESEND)
_PH_LEADER_COOKIE = 2
_PH_LEADER_SYNC = 3
_PH_SEG_READY = 4   # leader -> leaves: pipelined segment availability
_PH_RESEND = 5      # owner -> degraded peer (or back): the data, p2p
_PH_LEADER_RESEND = 6
_PH_A2A_STATUS = 7  # alltoallv reader -> owner: copy verdict
_PH_A2A_RESEND = 8  # alltoallv owner -> reader: the block, p2p
_PH_BARRIER_A = 900
_PH_BARRIER_B = 950

#: Cookie-channel sentinel: the owner could not register its region and will
#: move the data point-to-point instead (degraded "direct" mode).
_DIRECT = "knem-direct"

#: Synchronization verdicts, piggybacked on the existing sync messages.
_OK = "ok"
_RESEND = "resend"


@register_component("knem")
class KnemColl(BaseColl):
    """The KNEM collective component."""

    def __init__(self, world):
        super().__init__(world)
        self._fallback = TunedColl(world)
        world.machine.knem.health.fail_limit = self.tuning.knem_fail_limit

    # -- helpers --------------------------------------------------------------
    @property
    def _knem(self):
        return self.world.machine.knem

    def _delegate(self, nbytes: int) -> bool:
        return nbytes < self.tuning.knem_min

    def _hierarchical(self, ctx: CollCtx) -> bool:
        forced = self.tuning.hierarchical
        if forced is not None:
            return forced and ctx.size > 1
        return hierarchy_worthwhile(ctx)

    def _segsize(self, nbytes: int) -> int:
        if not self.tuning.pipeline:
            return nbytes
        if nbytes >= self.tuning.pipeline_large_at:
            return self.tuning.pipeline_seg_large
        return self.tuning.pipeline_seg_intermediate

    # -- degradation helpers --------------------------------------------------
    def _register_or_degrade(self, core: int, buf: SimBuffer, offset: int,
                             nbytes: int, prot: int):
        """Register with one retry; returns the cookie, or None to degrade.

        A disqualified device is not even attempted — the rank-local check
        feeds the same in-band degraded protocol an injected failure would,
        so ranks can never disagree about the message pattern.
        """
        knem = self._knem
        if knem.health.disqualified:
            return None
        for _attempt in (0, 1):
            try:
                cookie = yield from knem.create_region(core, buf, offset,
                                                       nbytes, prot)
            except FaultInjected:
                continue
            knem.health.note_success()
            return cookie
        knem.health.note_failure("coll-register", core)
        return None

    def _copy_or_degrade(self, core: int, cookie, region_off: int,
                         local: SimBuffer, local_off: int, nbytes: int,
                         write: bool, flags: int = 0):
        """In-kernel copy with one retry; True on success, False to degrade."""
        if nbytes == 0:
            return True
        knem = self._knem
        if knem.health.disqualified:
            return False
        for _attempt in (0, 1):
            try:
                yield from knem.copy(core, cookie, region_off, local,
                                     local_off, nbytes, write=write,
                                     flags=flags)
            except FaultInjected:
                continue
            knem.health.note_success()
            return True
        knem.health.note_failure("coll-copy", core)
        return False

    def _release(self, core: int, cookie):
        """Deregister (retrying injected faults; force-reclaim as last resort)."""
        if cookie is not None:
            yield from self._knem.destroy_region_safe(core, cookie)

    # ------------------------------------------------------------- broadcast
    def bcast(self, ctx: CollCtx, buf: SimBuffer, offset: int, nbytes: int,
              root: int):
        if ctx.size == 1:
            return
        if self._delegate(nbytes):
            yield from self._fallback.bcast(ctx, buf, offset, nbytes, root)
            return
        if not self._hierarchical(ctx):
            yield from self._bcast_linear(ctx, buf, offset, nbytes, root)
        elif (self.tuning.hierarchy_levels >= 3
                and ctx.machine.spec.n_boards > 1):
            yield from self._bcast_multilevel(ctx, buf, offset, nbytes, root)
        else:
            yield from self._bcast_hierarchical(ctx, buf, offset, nbytes, root)

    def _bcast_linear(self, ctx: CollCtx, buf: SimBuffer, offset: int,
                      nbytes: int, root: int):
        """One region, one cookie broadcast, P-1 parallel receiver reads."""
        knem = self._knem
        core = ctx.proc.core
        if ctx.rank == root:
            cookie = yield from self._register_or_degrade(core, buf, offset,
                                                          nbytes, PROT_READ)
            try:
                post = _DIRECT if cookie is None else cookie
                reqs = [ctx.isend_obj(peer, post, phase=_PH_COOKIE)
                        for peer in range(ctx.size) if peer != root]
                for req in reqs:
                    yield req.event
                resend = []
                for peer in range(ctx.size):
                    if peer == root:
                        continue
                    verdict, _st = yield from ctx.recv_obj(peer, phase=_PH_SYNC)
                    if verdict == _RESEND:
                        resend.append(peer)
                for peer in resend:
                    yield from ctx.send(peer, buf, offset, nbytes,
                                        phase=_PH_RESEND)
                yield from self._release(core, cookie)
            finally:
                if cookie is not None:
                    knem.reclaim(core, cookie)
        else:
            cookie, _st = yield from ctx.recv_obj(root, phase=_PH_COOKIE)
            ok = False
            if cookie != _DIRECT:
                flags = FLAG_DMA if self.tuning.dma_offload else 0
                ok = yield from self._copy_or_degrade(
                    core, cookie, 0, buf, offset, nbytes, write=False,
                    flags=flags)
            yield from ctx.send_obj(root, _OK if ok else _RESEND,
                                    phase=_PH_SYNC)
            if not ok:
                yield from ctx.recv(root, buf, offset, nbytes,
                                    phase=_PH_RESEND)

    def _bcast_hierarchical(self, ctx: CollCtx, buf: SimBuffer, offset: int,
                            nbytes: int, root: int):
        """Two-level tree with segment pipelining (Figure 1).

        The root registers once; leaders pull segments from the root region
        and re-export their own buffer to their leaves, which pull each
        segment as soon as the leader announces it — overlapping the
        inter-domain and intra-domain copies.  On a degraded run the segment
        flags carry None once a relay lost the data; downstream ranks then
        request a whole-buffer resend from their parent in the tree.
        """
        knem = self._knem
        core = ctx.proc.core
        tree = build_tree(ctx, root, topology_aware=self.tuning.topology_aware)
        segsize = self._segsize(nbytes)
        segs = segments(nbytes, segsize)
        role = tree.role(ctx.rank)

        if role == "root":
            cookie = yield from self._register_or_degrade(core, buf, offset,
                                                          nbytes, PROT_READ)
            try:
                post = _DIRECT if cookie is None else cookie
                peers = tree.non_root_leaders + tree.leaves_of(root)
                reqs = [ctx.isend_obj(peer, post, phase=_PH_COOKIE)
                        for peer in peers]
                for req in reqs:
                    yield req.event
                resend = []
                for peer in peers:
                    verdict, _st = yield from ctx.recv_obj(peer, phase=_PH_SYNC)
                    if verdict == _RESEND:
                        resend.append(peer)
                for peer in resend:
                    yield from ctx.send(peer, buf, offset, nbytes,
                                        phase=_PH_RESEND)
                yield from self._release(core, cookie)
            finally:
                if cookie is not None:
                    knem.reclaim(core, cookie)

        elif role == "leader":
            root_cookie, _ = yield from ctx.recv_obj(root, phase=_PH_COOKIE)
            my_cookie = yield from self._register_or_degrade(
                core, buf, offset, nbytes, PROT_READ)
            try:
                leaves = tree.leaves_of(ctx.rank)
                post = _DIRECT if my_cookie is None else my_cookie
                reqs = [ctx.isend_obj(leaf, post, phase=_PH_LEADER_COOKIE)
                        for leaf in leaves]
                have_data = root_cookie != _DIRECT
                for seg_index, (seg_off, seg_len) in enumerate(segs):
                    if have_data:
                        have_data = yield from self._copy_or_degrade(
                            core, root_cookie, seg_off, buf, offset + seg_off,
                            seg_len, write=False)
                    # Per-segment availability flags are cheap shared-memory
                    # stores, but they execute on the leader's critical path —
                    # the synchronization cost that makes too-small pipeline
                    # segments lose (Section VI-B).
                    flag = seg_index if have_data else None
                    for leaf in leaves:
                        yield from ctx.send_obj(leaf, flag,
                                                phase=_PH_SEG_READY)
                for req in reqs:
                    yield req.event
                resend_leaves = []
                for leaf in leaves:
                    verdict, _st = yield from ctx.recv_obj(
                        leaf, phase=_PH_LEADER_SYNC)
                    if verdict == _RESEND:
                        resend_leaves.append(leaf)
                yield from ctx.send_obj(root, _OK if have_data else _RESEND,
                                        phase=_PH_SYNC)
                if not have_data:
                    yield from ctx.recv(root, buf, offset, nbytes,
                                        phase=_PH_RESEND)
                for leaf in resend_leaves:
                    yield from ctx.send(leaf, buf, offset, nbytes,
                                        phase=_PH_LEADER_RESEND)
                yield from self._release(core, my_cookie)
            finally:
                if my_cookie is not None:
                    knem.reclaim(core, my_cookie)

        else:  # leaf
            leader = tree.leader_of(ctx.rank)
            if leader == root:
                # Root-set leaves read the whole message straight from the
                # root region (the data is fully available from the start).
                cookie, _ = yield from ctx.recv_obj(root, phase=_PH_COOKIE)
                ok = False
                if cookie != _DIRECT:
                    ok = yield from self._copy_or_degrade(
                        core, cookie, 0, buf, offset, nbytes, write=False)
                yield from ctx.send_obj(root, _OK if ok else _RESEND,
                                        phase=_PH_SYNC)
                if not ok:
                    yield from ctx.recv(root, buf, offset, nbytes,
                                        phase=_PH_RESEND)
            else:
                cookie, _ = yield from ctx.recv_obj(leader,
                                                    phase=_PH_LEADER_COOKIE)
                ok = cookie != _DIRECT
                for seg_off, seg_len in segs:
                    flag, _st = yield from ctx.recv_obj(leader,
                                                        phase=_PH_SEG_READY)
                    if ok and flag is not None:
                        ok = yield from self._copy_or_degrade(
                            core, cookie, seg_off, buf, offset + seg_off,
                            seg_len, write=False)
                    else:
                        ok = False
                yield from ctx.send_obj(leader, _OK if ok else _RESEND,
                                        phase=_PH_LEADER_SYNC)
                if not ok:
                    yield from ctx.recv(leader, buf, offset, nbytes,
                                        phase=_PH_LEADER_RESEND)

    def _bcast_multilevel(self, ctx: CollCtx, buf: SimBuffer, offset: int,
                          nbytes: int, root: int):
        """Generic relay-tree pipelined broadcast (board > domain > core).

        Every relay registers its buffer once; each rank pulls segment *s*
        from its parent's region as soon as the parent announces it (root
        segments are available immediately), and re-announces to its own
        children — one inter-board transfer per board instead of one per
        far-board domain.
        """
        knem = self._knem
        core = ctx.proc.core
        tree = build_board_tree(ctx, root)
        me = ctx.rank
        par = tree.parent[me]
        kids = tree.children[me]
        segs = segments(nbytes, self._segsize(nbytes))

        my_cookie = None
        if kids:
            my_cookie = yield from self._register_or_degrade(
                core, buf, offset, nbytes, PROT_READ)
        try:
            post = _DIRECT if my_cookie is None else my_cookie
            have_data = True
            if par is None:  # root: everything is available from the start
                reqs = [ctx.isend_obj(kid, post, phase=_PH_COOKIE)
                        for kid in kids]
                for req in reqs:
                    yield req.event
            else:
                parent_cookie, _ = yield from ctx.recv_obj(par,
                                                           phase=_PH_COOKIE)
                reqs = [ctx.isend_obj(kid, post, phase=_PH_COOKIE)
                        for kid in kids]
                for req in reqs:
                    yield req.event
                have_data = parent_cookie != _DIRECT
                for seg_index, (seg_off, seg_len) in enumerate(segs):
                    flag = seg_index
                    if par != tree.root:
                        flag, _st = yield from ctx.recv_obj(
                            par, phase=_PH_SEG_READY)
                    if have_data and flag is not None:
                        have_data = yield from self._copy_or_degrade(
                            core, parent_cookie, seg_off, buf,
                            offset + seg_off, seg_len, write=False)
                    else:
                        have_data = False
                    announce = seg_index if have_data else None
                    for kid in kids:
                        yield from ctx.send_obj(kid, announce,
                                                phase=_PH_SEG_READY)
            resend_kids = []
            for kid in kids:
                verdict, _st = yield from ctx.recv_obj(kid, phase=_PH_SYNC)
                if verdict == _RESEND:
                    resend_kids.append(kid)
            if par is not None:
                yield from ctx.send_obj(par, _OK if have_data else _RESEND,
                                        phase=_PH_SYNC)
                if not have_data:
                    yield from ctx.recv(par, buf, offset, nbytes,
                                        phase=_PH_RESEND)
            for kid in resend_kids:
                yield from ctx.send(kid, buf, offset, nbytes,
                                    phase=_PH_RESEND)
            yield from self._release(core, my_cookie)
        finally:
            if my_cookie is not None:
                knem.reclaim(core, my_cookie)

    # ------------------------------------------------------------------- scatter
    def scatterv(self, ctx: CollCtx, sendbuf: Optional[SimBuffer],
                 counts: list[int], displs: list[int], recvbuf: SimBuffer,
                 root: int):
        if self._delegate(max(counts, default=0)):
            yield from self._fallback.scatterv(ctx, sendbuf, counts, displs,
                                               recvbuf, root)
            return
        knem = self._knem
        core = ctx.proc.core
        if ctx.rank == root:
            if sendbuf is None:
                raise CollectiveError("scatter root requires a send buffer")
            cookie = yield from self._register_or_degrade(
                core, sendbuf, 0, sendbuf.size, PROT_READ)
            try:
                post = _DIRECT if cookie is None else cookie
                reqs = [ctx.isend_obj(peer, post, phase=_PH_COOKIE)
                        for peer in range(ctx.size) if peer != root]
                yield from self._local_copy(ctx, sendbuf, displs[root],
                                            recvbuf, 0, counts[root])
                for req in reqs:
                    yield req.event
                resend = []
                for peer in range(ctx.size):
                    if peer == root:
                        continue
                    verdict, _st = yield from ctx.recv_obj(peer, phase=_PH_SYNC)
                    if verdict == _RESEND:
                        resend.append(peer)
                for peer in resend:
                    yield from ctx.send(peer, sendbuf, displs[peer],
                                        counts[peer], phase=_PH_RESEND)
                yield from self._release(core, cookie)
            finally:
                if cookie is not None:
                    knem.reclaim(core, cookie)
        else:
            cookie, _ = yield from ctx.recv_obj(root, phase=_PH_COOKIE)
            nbytes = counts[ctx.rank]
            ok = nbytes == 0
            if not ok and cookie != _DIRECT:
                # Receiver-reading: this rank's core pulls only its slice
                # (partial region access at the slice offset).
                ok = yield from self._copy_or_degrade(
                    core, cookie, displs[ctx.rank], recvbuf, 0, nbytes,
                    write=False)
            yield from ctx.send_obj(root, _OK if ok else _RESEND,
                                    phase=_PH_SYNC)
            if not ok:
                yield from ctx.recv(root, recvbuf, 0, nbytes,
                                    phase=_PH_RESEND)

    # -------------------------------------------------------------------- gather
    def gatherv(self, ctx: CollCtx, sendbuf: SimBuffer,
                recvbuf: Optional[SimBuffer], counts: list[int],
                displs: list[int], root: int):
        if self._delegate(max(counts, default=0)):
            yield from self._fallback.gatherv(ctx, sendbuf, recvbuf, counts,
                                              displs, root)
            return
        if self.tuning.gather_direction_write:
            yield from self._gather_write(ctx, sendbuf, recvbuf, counts,
                                          displs, root)
        else:
            yield from self._gather_root_reads(ctx, sendbuf, recvbuf, counts,
                                               displs, root)

    def _gather_write(self, ctx, sendbuf, recvbuf, counts, displs, root):
        """Direction control: all senders write the root region in parallel."""
        knem = self._knem
        core = ctx.proc.core
        if ctx.rank == root:
            if recvbuf is None:
                raise CollectiveError("gather root requires a receive buffer")
            cookie = yield from self._register_or_degrade(
                core, recvbuf, 0, recvbuf.size, PROT_WRITE)
            try:
                post = _DIRECT if cookie is None else cookie
                reqs = [ctx.isend_obj(peer, post, phase=_PH_COOKIE)
                        for peer in range(ctx.size) if peer != root]
                yield from self._local_copy(ctx, sendbuf, 0, recvbuf,
                                            displs[root], counts[root])
                for req in reqs:
                    yield req.event
                resend = []
                for peer in range(ctx.size):
                    if peer == root:
                        continue
                    verdict, _st = yield from ctx.recv_obj(peer, phase=_PH_SYNC)
                    if verdict == _RESEND:
                        resend.append(peer)
                for peer in resend:
                    yield from ctx.recv(peer, recvbuf, displs[peer],
                                        counts[peer], phase=_PH_RESEND)
                yield from self._release(core, cookie)
            finally:
                if cookie is not None:
                    knem.reclaim(core, cookie)
        else:
            cookie, _ = yield from ctx.recv_obj(root, phase=_PH_COOKIE)
            nbytes = counts[ctx.rank]
            ok = nbytes == 0
            if not ok and cookie != _DIRECT:
                # Sender-writing: this core pushes its block into the root
                # buffer at its displacement, concurrently with every peer.
                ok = yield from self._copy_or_degrade(
                    core, cookie, displs[ctx.rank], sendbuf, 0, nbytes,
                    write=True)
            yield from ctx.send_obj(root, _OK if ok else _RESEND,
                                    phase=_PH_SYNC)
            if not ok:
                yield from ctx.send(root, sendbuf, 0, nbytes,
                                    phase=_PH_RESEND)

    def _gather_root_reads(self, ctx, sendbuf, recvbuf, counts, displs, root):
        """Ablation: no direction control — the root's core does every copy."""
        knem = self._knem
        core = ctx.proc.core
        if ctx.rank == root:
            if recvbuf is None:
                raise CollectiveError("gather root requires a receive buffer")
            cookies = {}
            for peer in range(ctx.size):
                if peer == root:
                    continue
                cookie, _ = yield from ctx.recv_obj(peer, phase=_PH_COOKIE)
                cookies[peer] = cookie
            yield from self._local_copy(ctx, sendbuf, 0, recvbuf,
                                        displs[root], counts[root])
            need: dict[int, bool] = {}
            for peer, cookie in cookies.items():
                ok = counts[peer] == 0
                if not ok and cookie != _DIRECT:
                    ok = yield from self._copy_or_degrade(
                        core, cookie, 0, recvbuf, displs[peer], counts[peer],
                        write=False)
                need[peer] = not ok
            reqs = [ctx.isend_obj(peer, _RESEND if need[peer] else _OK,
                                  phase=_PH_SYNC)
                    for peer in cookies]
            for req in reqs:
                yield req.event
            for peer in cookies:
                if need[peer]:
                    yield from ctx.recv(peer, recvbuf, displs[peer],
                                        counts[peer], phase=_PH_RESEND)
        else:
            cookie = yield from self._register_or_degrade(
                core, sendbuf, 0, counts[ctx.rank], PROT_READ)
            try:
                post = _DIRECT if cookie is None else cookie
                yield from ctx.send_obj(root, post, phase=_PH_COOKIE)
                verdict, _st = yield from ctx.recv_obj(root, phase=_PH_SYNC)
                if verdict == _RESEND:
                    yield from ctx.send(root, sendbuf, 0, counts[ctx.rank],
                                        phase=_PH_RESEND)
                yield from self._release(core, cookie)
            finally:
                if cookie is not None:
                    knem.reclaim(core, cookie)

    # ------------------------------------------------------------------- allgather
    def allgatherv(self, ctx: CollCtx, sendbuf: SimBuffer, recvbuf: SimBuffer,
                   counts: list[int], displs: list[int]):
        if self._delegate(max(counts, default=0)):
            yield from self._fallback.allgatherv(ctx, sendbuf, recvbuf,
                                                 counts, displs)
            return
        # The paper's simple assembly: Gather to rank 0, then Broadcast of
        # the assembled buffer (Section V-C) — knowingly root-bottlenecked.
        total = max((d + c for d, c in zip(displs, counts)), default=0)
        yield from self.gatherv(ctx.sub(0), sendbuf, recvbuf, counts, displs,
                                root=0)
        yield from self.bcast(ctx.sub(100), recvbuf, 0, total, root=0)

    # --------------------------------------------------------------------- alltoall
    def alltoallv(self, ctx: CollCtx, sendbuf: SimBuffer,
                  send_counts: list[int], send_displs: list[int],
                  recvbuf: SimBuffer, recv_counts: list[int],
                  recv_displs: list[int]):
        if self._delegate(max(send_counts, default=0)):
            yield from self._fallback.alltoallv(
                ctx, sendbuf, send_counts, send_displs,
                recvbuf, recv_counts, recv_displs,
            )
            return
        knem = self._knem
        core = ctx.proc.core
        me, size = ctx.rank, ctx.size
        # Armed-ness is machine-global and fixed for the job, so every rank
        # takes the same branch at the recovery gates below.
        plan_armed = knem.fault_plan is not None
        cookie = yield from self._register_or_degrade(
            core, sendbuf, 0, sendbuf.size, PROT_READ)
        try:
            # Cookie exchange through the pre-allocated shared-memory array
            # (an out-of-band AllGather over shared memory, not KNEM).  A
            # degraded owner posts None: every peer sees it and posts a
            # matching receive, so the owner can serve its blocks directly.
            yield from ctx.board_post((cookie, tuple(send_counts),
                                       tuple(send_displs)))
            yield from ctx.dissemination_barrier(_PH_BARRIER_A)
            direct_reqs = []
            if cookie is None:
                direct_reqs = [
                    ctx.isend(peer, sendbuf, send_displs[peer],
                              send_counts[peer], phase=_PH_A2A_RESEND)
                    for peer in range(size)
                    if peer != me and send_counts[peer]
                ]
            yield from self._local_copy(ctx, sendbuf, send_displs[me],
                                        recvbuf, recv_displs[me],
                                        recv_counts[me])
            order = (range(1, size) if self.tuning.rotate_alltoall
                     else [p for p in range(size) if p != me])
            peers = [((me + step) % size if self.tuning.rotate_alltoall
                      else step) for step in order]
            failed_reads = []
            for peer in peers:
                peer_cookie, peer_counts, peer_displs = ctx.board_get(peer)
                if peer_counts[me] != recv_counts[peer]:
                    raise CollectiveError(
                        f"alltoallv count mismatch: rank {peer} sends "
                        f"{peer_counts[me]}B, rank {me} expects "
                        f"{recv_counts[peer]}B"
                    )
                nbytes = recv_counts[peer]
                if peer_cookie is None:
                    if nbytes:
                        yield from ctx.recv(peer, recvbuf, recv_displs[peer],
                                            nbytes, phase=_PH_A2A_RESEND)
                    continue
                ok = yield from self._copy_or_degrade(
                    core, peer_cookie, peer_displs[me], recvbuf,
                    recv_displs[peer], nbytes, write=False)
                if not ok:
                    failed_reads.append(peer)
            if plan_armed:
                # Pairwise verdict exchange between readers and owners whose
                # regions were live; owners then retransmit failed blocks.
                # All data sends are isends: two mutually-degraded ranks
                # must not face each other with blocking rendezvous sends.
                status_reqs = []
                for peer in peers:
                    peer_cookie, _c, _d = ctx.board_get(peer)
                    if peer_cookie is not None:
                        verdict = _RESEND if peer in failed_reads else _OK
                        status_reqs.append(
                            ctx.isend_obj(peer, verdict,
                                          phase=_PH_A2A_STATUS))
                resend_reqs = []
                if cookie is not None:
                    resend_to = []
                    for peer in range(size):
                        if peer == me:
                            continue
                        verdict, _st = yield from ctx.recv_obj(
                            peer, phase=_PH_A2A_STATUS)
                        if verdict == _RESEND:
                            resend_to.append(peer)
                    resend_reqs = [
                        ctx.isend(peer, sendbuf, send_displs[peer],
                                  send_counts[peer], phase=_PH_A2A_RESEND)
                        for peer in resend_to
                    ]
                for peer in failed_reads:
                    yield from ctx.recv(peer, recvbuf, recv_displs[peer],
                                        recv_counts[peer],
                                        phase=_PH_A2A_RESEND)
                for req in status_reqs + resend_reqs:
                    yield req.event
            for req in direct_reqs:
                yield req.event
            yield from ctx.dissemination_barrier(_PH_BARRIER_B)
            yield from self._release(core, cookie)
        finally:
            if cookie is not None:
                knem.reclaim(core, cookie)


export_schedule(
    "knem", "bcast", direction="read", concurrent=True,
    description="receiver-reading single-copy broadcast (flat / hierarchical)",
    variants={"multilevel": {"hierarchy_levels": 3},
              "flat": {"hierarchical": False}})
export_schedule(
    "knem", "scatter", direction="read", concurrent=True,
    description="receivers read their slice of the root region")
export_schedule(
    "knem", "gather", direction="write", concurrent=True,
    description="sender-writing gather into the root's writable region",
    variants={"root-reads": {"gather_direction_write": False}})
export_schedule(
    "knem", "allgather", direction="mixed", concurrent=True,
    description="gather to rank 0 followed by broadcast")
export_schedule(
    "knem", "alltoallv", direction="read", concurrent=True,
    description="rotated receiver-reading exchange over boarded cookies",
    variants={"unrotated": {"rotate_alltoall": False}})
export_schedule(
    "knem", "barrier", direction="mixed",
    description="dissemination barrier over out-of-band messages")
