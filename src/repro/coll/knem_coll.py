"""KNEM-Coll: the paper's collective component (Section V).

Data movement never goes through point-to-point primitives; the component
calls the KNEM driver directly, using shared memory "only as an out of band
channel for synchronization or delivering cookies":

- **Broadcast** — root registers its buffer once (persistent region), the
  cookie is distributed out-of-band, every receiver's core performs its own
  in-kernel copy *in parallel* (receiver-reading).  On NUMA machines a
  two-level topology-aware tree with segment pipelining is used (Figure 1).
- **Scatter** — like Broadcast, but each receiver reads only its slice
  (partial region access; offsets computed from rank and counts).
- **Gather** — direction control: the root registers its *receive* buffer
  as writable and every sender's core writes its slice concurrently
  (sender-writing), removing the root-core serialization.
- **AllGather** — a Gather to rank 0 followed by a Broadcast: deliberately
  the paper's simple concatenation, which Section VI-D shows losing up to
  25% to Tuned-KNEM's ring on large NUMA machines.
- **Alltoall(v)** — every rank registers its send buffer, cookies are
  exchanged through a pre-allocated shared-memory array, then each rank
  fetches its blocks receiver-reading with a *rotated* start offset so each
  sender's memory is accessed by exactly one reader at a time (Figure 3).

Messages below 16 KB and unimplemented operations are delegated to the
regular (tuned) component, as in the real implementation.
"""

from __future__ import annotations

from typing import Optional

from repro.coll.algorithms import segments
from repro.coll.base import BaseColl, register_component
from repro.coll.hierarchy import build_board_tree, build_tree, hierarchy_worthwhile
from repro.coll.tuned import TunedColl
from repro.errors import CollectiveError
from repro.hardware.memory import SimBuffer
from repro.kernel.knem import FLAG_DMA, PROT_READ, PROT_WRITE
from repro.mpi.communicator import CollCtx

__all__ = ["KnemColl"]

# Phase namespace layout (offsets into the per-call tag space).
_PH_COOKIE = 0      # root/leader -> peers: region cookie
_PH_SYNC = 1        # peers -> root/leader: copy-complete notification
_PH_LEADER_COOKIE = 2
_PH_LEADER_SYNC = 3
_PH_SEG_READY = 4   # leader -> leaves: pipelined segment availability
_PH_BARRIER_A = 900
_PH_BARRIER_B = 950


@register_component("knem")
class KnemColl(BaseColl):
    """The KNEM collective component."""

    def __init__(self, world):
        super().__init__(world)
        self._fallback = TunedColl(world)

    # -- helpers --------------------------------------------------------------
    @property
    def _knem(self):
        return self.world.machine.knem

    def _delegate(self, nbytes: int) -> bool:
        return nbytes < self.tuning.knem_min

    def _hierarchical(self, ctx: CollCtx) -> bool:
        forced = self.tuning.hierarchical
        if forced is not None:
            return forced and ctx.size > 1
        return hierarchy_worthwhile(ctx)

    def _segsize(self, nbytes: int) -> int:
        if not self.tuning.pipeline:
            return nbytes
        if nbytes >= self.tuning.pipeline_large_at:
            return self.tuning.pipeline_seg_large
        return self.tuning.pipeline_seg_intermediate

    # ------------------------------------------------------------- broadcast
    def bcast(self, ctx: CollCtx, buf: SimBuffer, offset: int, nbytes: int,
              root: int):
        if ctx.size == 1:
            return
        if self._delegate(nbytes):
            yield from self._fallback.bcast(ctx, buf, offset, nbytes, root)
            return
        if not self._hierarchical(ctx):
            yield from self._bcast_linear(ctx, buf, offset, nbytes, root)
        elif (self.tuning.hierarchy_levels >= 3
                and ctx.machine.spec.n_boards > 1):
            yield from self._bcast_multilevel(ctx, buf, offset, nbytes, root)
        else:
            yield from self._bcast_hierarchical(ctx, buf, offset, nbytes, root)

    def _bcast_linear(self, ctx: CollCtx, buf: SimBuffer, offset: int,
                      nbytes: int, root: int):
        """One region, one cookie broadcast, P-1 parallel receiver reads."""
        knem = self._knem
        core = ctx.proc.core
        if ctx.rank == root:
            cookie = yield from knem.create_region(core, buf, offset, nbytes,
                                                   PROT_READ)
            reqs = [ctx.isend_obj(peer, cookie, phase=_PH_COOKIE)
                    for peer in range(ctx.size) if peer != root]
            for req in reqs:
                yield req.event
            for peer in range(ctx.size):
                if peer != root:
                    yield from ctx.recv_obj(peer, phase=_PH_SYNC)
            yield from knem.destroy_region(core, cookie)
        else:
            cookie, _st = yield from ctx.recv_obj(root, phase=_PH_COOKIE)
            flags = FLAG_DMA if self.tuning.dma_offload else 0
            yield from knem.copy(core, cookie, 0, buf, offset, nbytes,
                                 write=False, flags=flags)
            yield from ctx.send_obj(root, None, phase=_PH_SYNC)

    def _bcast_hierarchical(self, ctx: CollCtx, buf: SimBuffer, offset: int,
                            nbytes: int, root: int):
        """Two-level tree with segment pipelining (Figure 1).

        The root registers once; leaders pull segments from the root region
        and re-export their own buffer to their leaves, which pull each
        segment as soon as the leader announces it — overlapping the
        inter-domain and intra-domain copies.
        """
        knem = self._knem
        core = ctx.proc.core
        tree = build_tree(ctx, root, topology_aware=self.tuning.topology_aware)
        segsize = self._segsize(nbytes)
        segs = segments(nbytes, segsize)
        role = tree.role(ctx.rank)

        if role == "root":
            cookie = yield from knem.create_region(core, buf, offset, nbytes,
                                                   PROT_READ)
            peers = tree.non_root_leaders + tree.leaves_of(root)
            reqs = [ctx.isend_obj(peer, cookie, phase=_PH_COOKIE)
                    for peer in peers]
            for req in reqs:
                yield req.event
            for peer in peers:
                yield from ctx.recv_obj(peer, phase=_PH_SYNC)
            yield from knem.destroy_region(core, cookie)

        elif role == "leader":
            root_cookie, _ = yield from ctx.recv_obj(root, phase=_PH_COOKIE)
            my_cookie = yield from knem.create_region(core, buf, offset,
                                                      nbytes, PROT_READ)
            leaves = tree.leaves_of(ctx.rank)
            reqs = [ctx.isend_obj(leaf, my_cookie, phase=_PH_LEADER_COOKIE)
                    for leaf in leaves]
            for seg_index, (seg_off, seg_len) in enumerate(segs):
                yield from knem.copy(core, root_cookie, seg_off, buf,
                                     offset + seg_off, seg_len, write=False)
                # Per-segment availability flags are cheap shared-memory
                # stores, but they execute on the leader's critical path —
                # the synchronization cost that makes too-small pipeline
                # segments lose (Section VI-B).
                for leaf in leaves:
                    yield from ctx.send_obj(leaf, seg_index,
                                            phase=_PH_SEG_READY)
            for req in reqs:
                yield req.event
            for leaf in leaves:
                yield from ctx.recv_obj(leaf, phase=_PH_LEADER_SYNC)
            yield from ctx.send_obj(root, None, phase=_PH_SYNC)
            yield from knem.destroy_region(core, my_cookie)

        else:  # leaf
            leader = tree.leader_of(ctx.rank)
            if leader == root:
                # Root-set leaves read the whole message straight from the
                # root region (the data is fully available from the start).
                cookie, _ = yield from ctx.recv_obj(root, phase=_PH_COOKIE)
                yield from knem.copy(core, cookie, 0, buf, offset, nbytes,
                                     write=False)
                yield from ctx.send_obj(root, None, phase=_PH_SYNC)
            else:
                cookie, _ = yield from ctx.recv_obj(leader,
                                                    phase=_PH_LEADER_COOKIE)
                for seg_off, seg_len in segs:
                    yield from ctx.recv_obj(leader, phase=_PH_SEG_READY)
                    yield from knem.copy(core, cookie, seg_off, buf,
                                         offset + seg_off, seg_len,
                                         write=False)
                yield from ctx.send_obj(leader, None, phase=_PH_LEADER_SYNC)

    def _bcast_multilevel(self, ctx: CollCtx, buf: SimBuffer, offset: int,
                          nbytes: int, root: int):
        """Generic relay-tree pipelined broadcast (board > domain > core).

        Every relay registers its buffer once; each rank pulls segment *s*
        from its parent's region as soon as the parent announces it (root
        segments are available immediately), and re-announces to its own
        children — one inter-board transfer per board instead of one per
        far-board domain.
        """
        knem = self._knem
        core = ctx.proc.core
        tree = build_board_tree(ctx, root)
        me = ctx.rank
        par = tree.parent[me]
        kids = tree.children[me]
        segs = segments(nbytes, self._segsize(nbytes))

        my_cookie = None
        if kids:
            my_cookie = yield from knem.create_region(core, buf, offset,
                                                      nbytes, PROT_READ)
        if par is None:  # root: everything is available from the start
            reqs = [ctx.isend_obj(kid, my_cookie, phase=_PH_COOKIE)
                    for kid in kids]
            for req in reqs:
                yield req.event
        else:
            parent_cookie, _ = yield from ctx.recv_obj(par, phase=_PH_COOKIE)
            reqs = [ctx.isend_obj(kid, my_cookie, phase=_PH_COOKIE)
                    for kid in kids]
            for req in reqs:
                yield req.event
            for seg_index, (seg_off, seg_len) in enumerate(segs):
                if par != tree.root:
                    yield from ctx.recv_obj(par, phase=_PH_SEG_READY)
                yield from knem.copy(core, parent_cookie, seg_off, buf,
                                     offset + seg_off, seg_len, write=False)
                for kid in kids:
                    yield from ctx.send_obj(kid, seg_index,
                                            phase=_PH_SEG_READY)
        for kid in kids:
            yield from ctx.recv_obj(kid, phase=_PH_SYNC)
        if par is not None:
            yield from ctx.send_obj(par, None, phase=_PH_SYNC)
        if my_cookie is not None:
            yield from knem.destroy_region(core, my_cookie)

    # ------------------------------------------------------------------- scatter
    def scatterv(self, ctx: CollCtx, sendbuf: Optional[SimBuffer],
                 counts: list[int], displs: list[int], recvbuf: SimBuffer,
                 root: int):
        if self._delegate(max(counts, default=0)):
            yield from self._fallback.scatterv(ctx, sendbuf, counts, displs,
                                               recvbuf, root)
            return
        knem = self._knem
        core = ctx.proc.core
        if ctx.rank == root:
            if sendbuf is None:
                raise CollectiveError("scatter root requires a send buffer")
            cookie = yield from knem.create_region(core, sendbuf, 0,
                                                   sendbuf.size, PROT_READ)
            reqs = [ctx.isend_obj(peer, cookie, phase=_PH_COOKIE)
                    for peer in range(ctx.size) if peer != root]
            yield from self._local_copy(ctx, sendbuf, displs[root], recvbuf,
                                        0, counts[root])
            for req in reqs:
                yield req.event
            for peer in range(ctx.size):
                if peer != root:
                    yield from ctx.recv_obj(peer, phase=_PH_SYNC)
            yield from knem.destroy_region(core, cookie)
        else:
            cookie, _ = yield from ctx.recv_obj(root, phase=_PH_COOKIE)
            # Receiver-reading: this rank's core pulls only its slice
            # (partial region access at the slice offset).
            yield from knem.copy(core, cookie, displs[ctx.rank], recvbuf, 0,
                                 counts[ctx.rank], write=False)
            yield from ctx.send_obj(root, None, phase=_PH_SYNC)

    # -------------------------------------------------------------------- gather
    def gatherv(self, ctx: CollCtx, sendbuf: SimBuffer,
                recvbuf: Optional[SimBuffer], counts: list[int],
                displs: list[int], root: int):
        if self._delegate(max(counts, default=0)):
            yield from self._fallback.gatherv(ctx, sendbuf, recvbuf, counts,
                                              displs, root)
            return
        if self.tuning.gather_direction_write:
            yield from self._gather_write(ctx, sendbuf, recvbuf, counts,
                                          displs, root)
        else:
            yield from self._gather_root_reads(ctx, sendbuf, recvbuf, counts,
                                               displs, root)

    def _gather_write(self, ctx, sendbuf, recvbuf, counts, displs, root):
        """Direction control: all senders write the root region in parallel."""
        knem = self._knem
        core = ctx.proc.core
        if ctx.rank == root:
            if recvbuf is None:
                raise CollectiveError("gather root requires a receive buffer")
            cookie = yield from knem.create_region(core, recvbuf, 0,
                                                   recvbuf.size, PROT_WRITE)
            reqs = [ctx.isend_obj(peer, cookie, phase=_PH_COOKIE)
                    for peer in range(ctx.size) if peer != root]
            yield from self._local_copy(ctx, sendbuf, 0, recvbuf,
                                        displs[root], counts[root])
            for req in reqs:
                yield req.event
            for peer in range(ctx.size):
                if peer != root:
                    yield from ctx.recv_obj(peer, phase=_PH_SYNC)
            yield from knem.destroy_region(core, cookie)
        else:
            cookie, _ = yield from ctx.recv_obj(root, phase=_PH_COOKIE)
            # Sender-writing: this core pushes its block into the root
            # buffer at its displacement, concurrently with every peer.
            yield from knem.copy(core, cookie, displs[ctx.rank], sendbuf, 0,
                                 counts[ctx.rank], write=True)
            yield from ctx.send_obj(root, None, phase=_PH_SYNC)

    def _gather_root_reads(self, ctx, sendbuf, recvbuf, counts, displs, root):
        """Ablation: no direction control — the root's core does every copy."""
        knem = self._knem
        core = ctx.proc.core
        if ctx.rank == root:
            if recvbuf is None:
                raise CollectiveError("gather root requires a receive buffer")
            cookies = {}
            for peer in range(ctx.size):
                if peer == root:
                    continue
                cookie, _ = yield from ctx.recv_obj(peer, phase=_PH_COOKIE)
                cookies[peer] = cookie
            yield from self._local_copy(ctx, sendbuf, 0, recvbuf,
                                        displs[root], counts[root])
            for peer, cookie in cookies.items():
                yield from knem.copy(core, cookie, 0, recvbuf, displs[peer],
                                     counts[peer], write=False)
            reqs = [ctx.isend_obj(peer, None, phase=_PH_SYNC)
                    for peer in cookies]
            for req in reqs:
                yield req.event
        else:
            cookie = yield from knem.create_region(core, sendbuf, 0,
                                                   counts[ctx.rank], PROT_READ)
            yield from ctx.send_obj(root, cookie, phase=_PH_COOKIE)
            yield from ctx.recv_obj(root, phase=_PH_SYNC)
            yield from knem.destroy_region(core, cookie)

    # ------------------------------------------------------------------- allgather
    def allgatherv(self, ctx: CollCtx, sendbuf: SimBuffer, recvbuf: SimBuffer,
                   counts: list[int], displs: list[int]):
        if self._delegate(max(counts, default=0)):
            yield from self._fallback.allgatherv(ctx, sendbuf, recvbuf,
                                                 counts, displs)
            return
        # The paper's simple assembly: Gather to rank 0, then Broadcast of
        # the assembled buffer (Section V-C) — knowingly root-bottlenecked.
        total = max((d + c for d, c in zip(displs, counts)), default=0)
        yield from self.gatherv(ctx.sub(0), sendbuf, recvbuf, counts, displs,
                                root=0)
        yield from self.bcast(ctx.sub(100), recvbuf, 0, total, root=0)

    # --------------------------------------------------------------------- alltoall
    def alltoallv(self, ctx: CollCtx, sendbuf: SimBuffer,
                  send_counts: list[int], send_displs: list[int],
                  recvbuf: SimBuffer, recv_counts: list[int],
                  recv_displs: list[int]):
        if self._delegate(max(send_counts, default=0)):
            yield from self._fallback.alltoallv(
                ctx, sendbuf, send_counts, send_displs,
                recvbuf, recv_counts, recv_displs,
            )
            return
        knem = self._knem
        core = ctx.proc.core
        me, size = ctx.rank, ctx.size
        cookie = yield from knem.create_region(core, sendbuf, 0, sendbuf.size,
                                               PROT_READ)
        # Cookie exchange through the pre-allocated shared-memory array
        # (an out-of-band AllGather over shared memory, not KNEM).
        yield from ctx.board_post((cookie, tuple(send_counts),
                                   tuple(send_displs)))
        yield from ctx.dissemination_barrier(_PH_BARRIER_A)
        yield from self._local_copy(ctx, sendbuf, send_displs[me], recvbuf,
                                    recv_displs[me], recv_counts[me])
        order = (range(1, size) if self.tuning.rotate_alltoall
                 else [p for p in range(size) if p != me])
        for step in order:
            peer = (me + step) % size if self.tuning.rotate_alltoall else step
            peer_cookie, peer_counts, peer_displs = ctx.board_get(peer)
            if peer_counts[me] != recv_counts[peer]:
                raise CollectiveError(
                    f"alltoallv count mismatch: rank {peer} sends "
                    f"{peer_counts[me]}B, rank {me} expects {recv_counts[peer]}B"
                )
            yield from knem.copy(core, peer_cookie, peer_displs[me], recvbuf,
                                 recv_displs[peer], recv_counts[peer],
                                 write=False)
        yield from ctx.dissemination_barrier(_PH_BARRIER_B)
        yield from knem.destroy_region(core, cookie)
