"""Tuning knobs for the collective components.

The values mirror the paper's Section VI-B conclusions for KNEM-Coll (16 KB
pipeline fragments for intermediate messages, 512 KB for large ones on IG)
and the published switch-points of the Open MPI *tuned* and MPICH2 decision
functions for the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import KiB, MiB

__all__ = ["Tuning", "DEFAULT_TUNING"]


@dataclass(frozen=True)
class Tuning:
    """All collective switch-points and segment sizes (bytes).

    KNEM-Coll (the paper's component):

    - ``knem_min`` — below this the component delegates to the basic
      point-to-point algorithms (kernel-trap overhead dominates; the paper
      only engages KNEM beyond 16 KB).
    - ``pipeline_seg_intermediate`` / ``pipeline_seg_large`` — segment sizes
      of the hierarchical pipelined broadcast, with the crossover at
      ``pipeline_large_at`` (Figure 4's tuning: 16 KB below 2 MB, 512 KB
      above).
    - ``hierarchical`` — ``None`` selects automatically (hierarchy on
      machines with more than one memory domain); ``True``/``False`` force.
    - ``pipeline`` — disable to get the unpipelined hierarchical variant
      (the Figure 4 baseline).
    - ``rotate_alltoall`` — disable the round-robin start-offset schedule
      (ablation; Figure 3 shows the rotation).
    - ``gather_direction_write`` — disable sender-writing direction control
      in Gather (ablation; falls back to root-driven reads).

    Open MPI *tuned*:

    - bcast: binomial below ``tuned_bcast_binomial_max``, split-binary to
      ``tuned_bcast_splitbin_max``, chain pipeline above (segment
      ``tuned_bcast_segsize``).
    - gather/scatter: binomial below ``tuned_gather_binomial_max``, linear
      above.
    - allgather: recursive doubling / ring crossover at
      ``tuned_allgather_ring_min``.

    MPICH2: binomial bcast below ``mpich_bcast_binomial_max``, then
    scatter+ring-allgather (van de Geijn); allgather recursive-doubling for
    power-of-two sizes below ``mpich_allgather_ring_min``, ring above.
    """

    # --- KNEM-Coll -----------------------------------------------------
    knem_min: int = 16 * KiB
    pipeline_seg_intermediate: int = 16 * KiB
    pipeline_seg_large: int = 512 * KiB
    pipeline_large_at: int = 2 * MiB
    hierarchical: bool | None = None
    pipeline: bool = True
    rotate_alltoall: bool = True
    gather_direction_write: bool = True
    topology_aware: bool = True
    #: Offload broadcast copies to the I/OAT DMA engine instead of receiver
    #: cores (KNEM's hardware-offload feature, Section III).  Frees the
    #: receiving cores but serializes on the single DMA engine — an
    #: instructive ablation, off by default like in the paper's runs.
    dma_offload: bool = False
    #: Consecutive KNEM ioctl failures (each already retried once) tolerated
    #: before the device is disqualified for the rest of the job and every
    #: rank stops attempting KNEM calls (see :mod:`repro.faults`).
    knem_fail_limit: int = 8
    #: Depth of the NUMA-aware broadcast tree: 2 = the paper's Figure 1
    #: (root -> domain leaders -> leaves); 3 adds a *board* level on
    #: multi-board machines (root -> board leaders -> domain leaders ->
    #: leaves), crossing the inter-board link once per board instead of
    #: once per far-board domain — the deeper hierarchy the paper's
    #: Section IV motivates and leaves as future work.
    hierarchy_levels: int = 2

    # --- Open MPI tuned ------------------------------------------------
    tuned_bcast_binomial_max: int = 16 * KiB
    tuned_bcast_splitbin_max: int = 128 * KiB
    tuned_bcast_segsize: int = 128 * KiB
    tuned_gather_binomial_max: int = 6 * KiB
    tuned_allgather_ring_min: int = 64 * KiB
    tuned_alltoall_pairwise_min: int = 4 * KiB

    # --- MPICH2 -----------------------------------------------------------
    mpich_bcast_binomial_max: int = 12 * KiB
    mpich_allgather_ring_min: int = 512 * KiB
    mpich_gather_binomial_max: int = 8 * KiB

    # --- SM tree (Graham fan-in/fan-out) -----------------------------------
    sm_tree_degree: int = 4
    sm_tree_segsize: int = 32 * KiB


DEFAULT_TUNING = Tuning()
