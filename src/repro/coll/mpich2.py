"""The MPICH2 collective algorithm set (baseline [4], as of MPICH2 1.3).

Distinctive choices versus Open MPI *tuned* (these differences are visible
in the paper's normalized curves):

- **Broadcast**: binomial below ~12 KB, then the van de Geijn algorithm —
  a binomial *scatter* of the message followed by a *ring allgather* —
  which trades latency for contention-friendly bandwidth;
- **Gather/Scatter**: binomial at every size (MPICH2 has no linear
  switch-over for contiguous data), so large gathers forward big
  aggregates up the tree;
- **Allgather**: recursive doubling for power-of-two communicators below
  512 KB per block, ring otherwise;
- **Alltoall**: pairwise exchange for large messages.
"""

from __future__ import annotations

from typing import Optional

from repro.coll.algorithms import (
    binomial_children,
    export_schedule,
    binomial_parent,
    binomial_subtree_size,
    rank_of,
    vrank_of,
)
from repro.coll.base import BaseColl, register_component
from repro.coll.tuned import TunedColl, _is_pow2
from repro.errors import CollectiveError
from repro.hardware.memory import SimBuffer
from repro.mpi.communicator import CollCtx

__all__ = ["Mpich2Coll"]


@register_component("mpich2")
class Mpich2Coll(TunedColl):
    """MPICH2's decision rules; reuses the shared algorithm pool."""

    # ------------------------------------------------------------- broadcast
    def bcast(self, ctx: CollCtx, buf: SimBuffer, offset: int, nbytes: int,
              root: int):
        """MPICH2's decision function (MPIR_Bcast, MPICH2 1.3):

        - short messages (or tiny communicators): binomial tree;
        - medium messages: scatter + recursive-doubling allgather for
          power-of-two communicators, **binomial for non-power-of-two**
          (this is why MPICH2 struggles at medium sizes on IG's 48 ranks);
        - long messages (>= 512 KB): scatter + ring allgather (van de
          Geijn), regardless of communicator size.
        """
        if ctx.size == 1:
            return
        long_msg = self.tuning.mpich_allgather_ring_min  # 512 KB, as MPICH2
        if nbytes <= self.tuning.mpich_bcast_binomial_max or ctx.size < 8:
            yield from self._bcast_tree(ctx, buf, offset, nbytes, root,
                                        shape="binomial", segsize=0)
        elif nbytes < long_msg and not _is_pow2(ctx.size):
            yield from self._bcast_tree(ctx, buf, offset, nbytes, root,
                                        shape="binomial", segsize=0)
        elif nbytes < long_msg:
            yield from self._bcast_van_de_geijn(ctx, buf, offset, nbytes, root,
                                                allgather="recdbl")
        else:
            yield from self._bcast_van_de_geijn(ctx, buf, offset, nbytes, root,
                                                allgather="ring")

    def _bcast_van_de_geijn(self, ctx: CollCtx, buf: SimBuffer, offset: int,
                            nbytes: int, root: int, allgather: str = "ring"):
        """Binomial scatter of the message, then an allgather of the pieces.

        Pieces live *in place* inside ``buf``: rank ``r`` (in vrank space)
        owns the slice ``[r * piece, ...)``; the scatter walks the binomial
        tree sending each child its subtree's span of slices, then the ring
        allgather circulates every slice to every rank.
        """
        size = ctx.size
        v = vrank_of(ctx.rank, root, size)
        piece = nbytes // size
        remainder = nbytes - piece * size
        # Slice r: [r*piece, +piece), with the remainder on the last slice.
        def span(vr_lo: int, vr_n: int) -> tuple[int, int]:
            lo = vr_lo * piece
            hi = (vr_lo + vr_n) * piece
            if vr_lo + vr_n == size:
                hi += remainder
            return lo, hi - lo

        parent = binomial_parent(v)
        children = binomial_children(v, size)
        sub = binomial_subtree_size(v, size)
        if parent is not None:
            lo, ln = span(v, sub)
            if ln:
                yield from ctx.recv(rank_of(parent, root, size), buf,
                                    offset + lo, ln, phase=0)
        pending = []
        for child in children:
            child_sub = binomial_subtree_size(child, size)
            lo, ln = span(child, child_sub)
            if ln:
                pending.append(ctx.isend(rank_of(child, root, size), buf,
                                         offset + lo, ln, phase=0))
        for req in pending:
            yield req.event
        if allgather == "recdbl":
            # Recursive-doubling allgather of the slices (pow2 sizes only).
            dist, k = 1, 0
            while dist < size:
                partner = v ^ dist
                my_lo, my_ln = span((v // dist) * dist, dist)
                pa_lo, pa_ln = span((partner // dist) * dist, dist)
                yield from ctx.sendrecv(
                    rank_of(partner, root, size), buf, offset + my_lo, my_ln,
                    rank_of(partner, root, size), buf, offset + pa_lo, pa_ln,
                    phase=1 + k,
                )
                dist <<= 1
                k += 1
            return
        # Ring allgather of the slices (vrank ring, in place).
        left = rank_of((v - 1) % size, root, size)
        right = rank_of((v + 1) % size, root, size)
        for step in range(size - 1):
            s_lo, s_ln = span((v - step) % size, 1)
            r_lo, r_ln = span((v - step - 1) % size, 1)
            yield from ctx.sendrecv(
                right, buf, offset + s_lo, s_ln,
                left, buf, offset + r_lo, r_ln, phase=1 + step,
            )

    # ------------------------------------------------------------------ rooted
    def gather(self, ctx: CollCtx, sendbuf: SimBuffer,
               recvbuf: Optional[SimBuffer], count: int, root: int):
        if ctx.size == 1:
            if recvbuf is None:
                raise CollectiveError("gather root requires a receive buffer")
            yield from self._local_copy(ctx, sendbuf, 0, recvbuf, 0, count)
            return
        yield from self._gather_binomial(ctx, sendbuf, recvbuf, count, root)

    def scatter(self, ctx: CollCtx, sendbuf: Optional[SimBuffer],
                recvbuf: SimBuffer, count: int, root: int):
        if ctx.size == 1:
            if sendbuf is None:
                raise CollectiveError("scatter root requires a send buffer")
            yield from self._local_copy(ctx, sendbuf, 0, recvbuf, 0, count)
            return
        yield from self._scatter_binomial(ctx, sendbuf, recvbuf, count, root)

    # ------------------------------------------------------------------- allgather
    def allgather(self, ctx: CollCtx, sendbuf: SimBuffer, recvbuf: SimBuffer,
                  count: int):
        if ctx.size == 1:
            yield from self._local_copy(ctx, sendbuf, 0, recvbuf, 0, count)
            return
        if count < self.tuning.mpich_allgather_ring_min and _is_pow2(ctx.size):
            yield from self._allgather_recursive_doubling(ctx, sendbuf,
                                                          recvbuf, count)
        else:
            yield from self._allgather_ring(ctx, sendbuf, recvbuf, count)

    # --------------------------------------------------------------------- alltoall
    def alltoall(self, ctx: CollCtx, sendbuf: SimBuffer, recvbuf: SimBuffer,
                 count: int):
        if ctx.size == 1 or count < 256:
            yield from BaseColl.alltoall(self, ctx, sendbuf, recvbuf, count)
            return
        yield from self._alltoall_pairwise(ctx, sendbuf, recvbuf, count)


export_schedule("mpich2", "bcast",
                description="binomial, then van de Geijn scatter+allgather")
export_schedule("mpich2", "scatter", description="binomial at every size")
export_schedule("mpich2", "gather", description="binomial at every size")
export_schedule("mpich2", "allgather",
                description="recursive doubling below 512 KiB (pow2) or ring")
export_schedule("mpich2", "alltoall",
                description="pairwise exchange above 256-byte blocks")
