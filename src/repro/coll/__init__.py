"""Collective communication components (the COLL framework of Figure 2).

Five components are registered, selected by
:class:`~repro.mpi.stacks.Stack`:

- ``basic`` — linear reference algorithms over point-to-point;
- ``tuned`` — Open MPI's *tuned* component: binomial / split-binary /
  chain-pipeline broadcast, binomial/linear rooted ops, recursive-doubling
  and ring allgather, pairwise alltoall, with size-based decision rules;
- ``mpich2`` — the MPICH2 algorithm set (binomial, van de Geijn broadcast,
  recursive doubling, ring, pairwise);
- ``smtree`` — Graham-style shared-memory fan-in/fan-out trees (related
  work [9]);
- ``knem`` — the paper's contribution: collectives driving the KNEM driver
  directly with persistent regions, direction control, NUMA-aware
  hierarchy, and pipelining.
"""

from repro.coll.base import BaseColl, make_component, register_component
from repro.coll.tuning import DEFAULT_TUNING, Tuning

# Importing the component modules registers them.
from repro.coll import basic as _basic  # noqa: E402,F401
from repro.coll import tuned as _tuned  # noqa: E402,F401
from repro.coll import mpich2 as _mpich2  # noqa: E402,F401
from repro.coll import sm_tree as _sm_tree  # noqa: E402,F401
from repro.coll import knem_coll as _knem_coll  # noqa: E402,F401

__all__ = [
    "BaseColl",
    "make_component",
    "register_component",
    "Tuning",
    "DEFAULT_TUNING",
]
