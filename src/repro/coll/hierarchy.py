"""NUMA-aware two-level communication trees (Section IV, Figure 1).

Ranks are split into *sets* by NUMA locality (all ranks whose cores share a
memory domain form one set).  The first tree level holds one **leader** per
set (the operation root doubles as its own set's leader); every other rank
is a **leaf** under its set's leader.  A single inter-domain transfer feeds
each set, minimizing inter-socket traffic, and intra-set transfers hit the
shared cache.

The ablation tree (``topology_aware=False``) groups ranks by *logical rank
order* into same-sized chunks — the paper's critique of fixed logical trees
— so the benefit of topology awareness can be measured in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.topology.distance import leader_order

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.communicator import CollCtx

__all__ = ["HierTree", "build_tree", "hierarchy_worthwhile"]


@dataclass(frozen=True)
class HierTree:
    """A two-level tree over communicator ranks."""

    root: int
    #: group id -> ordered member ranks (leader first)
    groups: tuple[tuple[int, ...], ...]

    @property
    def leaders(self) -> list[int]:
        return [g[0] for g in self.groups]

    @property
    def non_root_leaders(self) -> list[int]:
        return [g[0] for g in self.groups if g[0] != self.root]

    def group_of(self, rank: int) -> tuple[int, ...]:
        for g in self.groups:
            if rank in g:
                return g
        raise ValueError(f"rank {rank} not in tree")  # pragma: no cover

    def leader_of(self, rank: int) -> int:
        return self.group_of(rank)[0]

    def leaves_of(self, leader: int) -> list[int]:
        return [r for r in self.group_of(leader)[1:]]

    def role(self, rank: int) -> str:
        if rank == self.root:
            return "root"
        if rank in self.leaders:
            return "leader"
        return "leaf"


def build_tree(ctx: "CollCtx", root: int, topology_aware: bool = True) -> HierTree:
    """Build (and cache) the two-level tree for this communicator and root."""
    key = ("hier", ctx.comm.cid, root, topology_aware)
    tree = ctx.cache.get(key)
    if tree is not None:
        return tree
    size = ctx.size
    spec = ctx.machine.spec
    if topology_aware:
        by_domain: dict[int, list[int]] = {}
        for rank in range(size):
            dom = spec.core_domain(ctx.comm.core_of(rank))
            by_domain.setdefault(dom, []).append(rank)
        root_dom = spec.core_domain(ctx.comm.core_of(root))
        order = leader_order(spec, ctx.comm.core_of(root), sorted(by_domain))
        groups = []
        for dom in order:
            members = sorted(by_domain[dom])
            lead = root if dom == root_dom else members[0]
            rest = [r for r in members if r != lead]
            groups.append(tuple([lead] + rest))
        tree = HierTree(root=root, groups=tuple(groups))
    else:
        # Rank-order chunks of the same cardinality as the NUMA grouping
        # would produce — the "logical ranks layout" tree of [9].
        n_groups = max(
            len({spec.core_domain(ctx.comm.core_of(r)) for r in range(size)}), 1
        )
        base = size // n_groups
        extra = size % n_groups
        groups = []
        start = 0
        for g in range(n_groups):
            n = base + (1 if g < extra else 0)
            chunk = list(range(start, start + n))
            start += n
            if root in chunk:
                chunk.remove(root)
                chunk.insert(0, root)
            groups.append(tuple(chunk))
        tree = HierTree(root=root, groups=tuple(g for g in groups if g))
    ctx.cache[key] = tree
    return tree


def hierarchy_worthwhile(ctx: "CollCtx") -> bool:
    """Auto decision: hierarchy pays off when ranks span > 1 memory domain."""
    spec = ctx.machine.spec
    domains = {spec.core_domain(ctx.comm.core_of(r)) for r in range(ctx.size)}
    return len(domains) > 1


@dataclass(frozen=True)
class RelayTree:
    """A generic relay tree: every rank pulls from its parent's region.

    Used by the multi-level (board > domain > core) pipelined broadcast —
    the "significantly more complex than two-level" hierarchy the paper
    motivates for machines like IG, where the two-level tree sends one
    inter-board transfer *per far-board domain* while a board level relays
    the message across the interlink once.
    """

    root: int
    parent: tuple  # parent[rank] (None for root), indexed by rank
    children: tuple  # tuple of tuples, indexed by rank

    def role(self, rank: int) -> str:
        if rank == self.root:
            return "root"
        return "relay" if self.children[rank] else "leaf"


def build_board_tree(ctx: "CollCtx", root: int) -> RelayTree:
    """Three-level tree: root -> board leaders -> domain leaders -> leaves."""
    key = ("hier3", ctx.comm.cid, root)
    tree = ctx.cache.get(key)
    if tree is not None:
        return tree
    size = ctx.size
    spec = ctx.machine.spec
    by_board: dict[int, list[int]] = {}
    by_domain: dict[int, list[int]] = {}
    for rank in range(size):
        core = ctx.comm.core_of(rank)
        by_board.setdefault(spec.core_board(core), []).append(rank)
        by_domain.setdefault(spec.core_domain(core), []).append(rank)
    root_core = ctx.comm.core_of(root)
    root_board = spec.core_board(root_core)
    root_domain = spec.core_domain(root_core)

    def board_leader(board: int) -> int:
        return root if board == root_board else min(by_board[board])

    def domain_leader(domain: int) -> int:
        members = by_domain[domain]
        if domain == root_domain:
            return root
        # a board leader doubles as leader of its own domain
        for b in sorted(by_board):
            bl = board_leader(b)
            if bl in members:
                return bl
        return min(members)

    parent: list = [None] * size
    for domain in sorted(by_domain):
        dl = domain_leader(domain)
        for rank in by_domain[domain]:
            if rank != dl:
                parent[rank] = dl
        if dl == root:
            continue
        dl_board = spec.core_board(ctx.comm.core_of(dl))
        bl = board_leader(dl_board)
        parent[dl] = root if (bl == dl or bl == root) else bl
    for board in sorted(by_board):
        bl = board_leader(board)
        if bl != root and parent[bl] in (None, bl):
            parent[bl] = root
    children: list[list[int]] = [[] for _ in range(size)]
    for rank, par in enumerate(parent):
        if par is not None:
            children[par].append(rank)
    tree = RelayTree(root=root, parent=tuple(parent),
                     children=tuple(tuple(c) for c in children))
    ctx.cache[key] = tree
    return tree
