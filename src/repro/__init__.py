"""repro — reproduction of "Kernel Assisted Collective Intra-node MPI
Communication among Multi-Core and Many-Core CPUs" (Ma et al., ICPP 2011).

The package simulates an intra-node memory system (NUMA domains, links,
caches, per-core copy engines) with a discrete-event engine, implements the
KNEM kernel module and both shared-memory transports on top of it, runs an
MPI-like runtime with the five library configurations the paper compares,
and regenerates every figure and table of the paper's evaluation.

Quick start::

    from repro import Machine, Job
    from repro.mpi import stacks

    machine = Machine.build("dancer")          # one of zoot/dancer/saturn/ig
    job = Job(machine, nprocs=8, stack=stacks.KNEM_COLL)

    def program(proc):
        buf = proc.alloc_array(1 << 20, dtype="u1")
        if proc.rank == 0:
            buf.array[:] = 42
        yield from proc.comm.bcast(buf.sim, 0, buf.sim.size, root=0)
        return proc.now

    result = job.run(program)
    print(result.elapsed)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.errors import ReproError
from repro.hardware.machines import MACHINES, get_machine
from repro.hardware.spec import CacheSpec, CoreSpec, LinkSpec, MachineSpec
from repro.mpi.runtime import ArrayBuffer, Job, JobResult, Machine, Proc
from repro.mpi.status import Request, Status
from repro.mpi import stacks

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "Job",
    "JobResult",
    "Proc",
    "ArrayBuffer",
    "Status",
    "Request",
    "stacks",
    "get_machine",
    "MACHINES",
    "MachineSpec",
    "CoreSpec",
    "CacheSpec",
    "LinkSpec",
    "ReproError",
    "__version__",
]
