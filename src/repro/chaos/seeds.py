"""Per-dimension seed derivation for chaos campaigns.

One campaign seed fans out into independent streams, one per fault
dimension, the same way :mod:`repro.faults.plan` derives per-call-site
draws: hash the ``(seed, dimension, index)`` token with blake2b and read
the digest as a number.  Two campaigns with the same seed make identical
choices in every dimension; changing the seed decorrelates all of them at
once (a CRC-style mix would leave adjacent seeds' draws nearly equal,
making "30% of campaigns enable crashes" fire all-or-nothing across a CI
seed matrix).
"""

from __future__ import annotations

import hashlib
from typing import Sequence, TypeVar

__all__ = ["derive", "uniform", "coin", "pick"]

T = TypeVar("T")


def derive(seed: int, dimension: str, index: int = 0) -> int:
    """A 64-bit sub-seed for one dimension of one campaign."""
    token = f"{seed}|{dimension}|{index}".encode()
    return int.from_bytes(
        hashlib.blake2b(token, digest_size=8).digest(), "big")


def uniform(seed: int, dimension: str, index: int = 0) -> float:
    """Deterministic uniform draw in [0, 1) for one dimension."""
    return derive(seed, dimension, index) / 2**64


def coin(seed: int, dimension: str, probability: float) -> bool:
    """True with ``probability`` (deterministic per (seed, dimension))."""
    return uniform(seed, dimension) < probability


def pick(seed: int, dimension: str, options: Sequence[T],
         index: int = 0) -> T:
    """One deterministic choice from a non-empty sequence."""
    if not options:
        raise ValueError(f"nothing to pick for dimension {dimension!r}")
    return options[derive(seed, dimension, index) % len(options)]
