"""Derive a campaign's fault dimensions and build its injectors.

Every choice here is a pure function of the campaign seed (via
:mod:`repro.chaos.seeds`), so a campaign is fully described by its spec —
re-running the same spec replays the same faults, which is what makes a
failing campaign a *repro* rather than an anecdote.

The dimensions and where they inject:

==================  ====================================================
dimension           injection point
==================  ====================================================
``knem``            :class:`~repro.faults.plan.FaultPlan` random rules
                    over the KNEM/shm driver ops (simulated faults; the
                    recovery ladder must absorb them byte-identically)
``stall``           a ``rank.stall`` rule (shifts simulated timings
                    deterministically — present in the reference run too)
``crash``           a ``rank.crash`` rule (the whole sweep ends in a
                    typed ``RankFailed``; the *typed abort* oracle arm)
``deaths``          warm-pool workers ``os._exit`` once on chosen cells
                    (transient: the retry survives)
``poison``          one cell kills *every* worker that runs it (must
                    quarantine as a typed ``CellAborted``)
``fsfault``         one journal append fails (EIO/ENOSPC/short write)
``corrupt``         one interior journal record is bit-flipped after the
                    run (resume must skip-and-recompute it)
``restart``         the sweep service is stopped between two served runs
                    of the grid; the second run against a fresh server
                    on the same cache journal must answer every cell
                    from cache, byte-identical to the reference
==================  ====================================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.chaos import seeds
from repro.chaos.fsfaults import FS_FAULT_MODES, FsFaultRule
from repro.faults.plan import KNEM_OPS, FaultPlan, FaultRule

__all__ = ["Dimensions", "derive_dimensions", "build_fault_plan",
           "make_cell_hook", "corrupt_journal", "WORKER_DEATH_EXIT"]

#: exit status of a chaos-killed worker (distinct from Python tracebacks)
WORKER_DEATH_EXIT = 3

#: enable probability per dimension when the spec leaves it to the seed
_DIM_PROBABILITY = {
    "knem": 0.8,
    "stall": 0.3,
    "crash": 0.15,
    "deaths": 0.7,
    "poison": 0.4,
    "fsfault": 0.5,
    "corrupt": 0.6,
    "restart": 0.35,
}


@dataclass(frozen=True)
class Dimensions:
    """The fully resolved fault content of one campaign."""

    seed: int
    #: random simulated-fault rate over KNEM/shm ops (0.0 = dimension off)
    knem_rate: float
    knem_sticky: bool
    #: rank.stall delay in simulated seconds (0.0 = off)
    stall_delay: float
    #: rank.crash armed (the sweep is expected to abort typed)
    crash: bool
    #: cell keys whose first execution kills the worker (die-once)
    death_keys: tuple[str, ...]
    #: cell key that kills every worker that touches it (None = off)
    poison_key: Optional[str]
    #: journal append fault (None = off)
    fs_rule: Optional[FsFaultRule]
    #: flip one interior journal record after the chaos run
    corrupt: bool
    #: serve the grid twice across a sweep-server restart; the second
    #: serving must be all cache hits and byte-identical
    restart: bool = False

    def describe(self) -> dict:
        """JSON-friendly summary for campaign reports."""
        return {
            "seed": self.seed,
            "knem_rate": round(self.knem_rate, 4),
            "knem_sticky": self.knem_sticky,
            "stall_delay": self.stall_delay,
            "crash": self.crash,
            "death_keys": list(self.death_keys),
            "poison_key": self.poison_key,
            "fs_fault": (None if self.fs_rule is None else
                         {"mode": self.fs_rule.mode,
                          "after_writes": self.fs_rule.after_writes}),
            "corrupt_journal": self.corrupt,
            "service_restart": self.restart,
        }


def _enabled(seed: int, dim: str, override: Optional[bool]) -> bool:
    if override is not None:
        return override
    return seeds.coin(seed, f"enable.{dim}", _DIM_PROBABILITY[dim])


def derive_dimensions(seed: int, keys: Sequence[str], *,
                      substrate: bool = True,
                      knem: Optional[bool] = None,
                      stall: Optional[bool] = None,
                      crash: Optional[bool] = None,
                      deaths: Optional[bool] = None,
                      poison: Optional[bool] = None,
                      fsfault: Optional[bool] = None,
                      corrupt: Optional[bool] = None,
                      restart: Optional[bool] = None) -> Dimensions:
    """Resolve one campaign's dimensions from its seed.

    ``keys`` are the sweep's cell keys in grid order (victim cells are
    chosen among them).  ``substrate=False`` masks the worker-death
    dimensions (a serial sweep has no workers to kill).  Each keyword
    overrides one dimension: ``True`` forces it on, ``False`` off,
    ``None`` (default) leaves it to the seeded coin.  Every dimension
    draws from its own seed token, so adding a dimension never shifts
    what existing seeds decide for the others.
    """
    keys = list(keys)
    poison_key: Optional[str] = None
    death_keys: tuple[str, ...] = ()
    if substrate and keys:
        if _enabled(seed, "poison", poison):
            poison_key = seeds.pick(seed, "poison.key", keys)
        if _enabled(seed, "deaths", deaths):
            victims = [k for k in keys if k != poison_key]
            if victims:
                death_keys = (seeds.pick(seed, "deaths.key", victims),)
    fs_rule: Optional[FsFaultRule] = None
    if _enabled(seed, "fsfault", fsfault):
        fs_rule = FsFaultRule(
            after_writes=seeds.derive(seed, "fsfault.after") % max(
                1, len(keys)),
            mode=seeds.pick(seed, "fsfault.mode", FS_FAULT_MODES),
        )
    return Dimensions(
        seed=seed,
        knem_rate=(0.05 + 0.25 * seeds.uniform(seed, "knem.rate")
                   if _enabled(seed, "knem", knem) else 0.0),
        knem_sticky=seeds.coin(seed, "knem.sticky", 0.3),
        stall_delay=(1e-5 * (1 + seeds.derive(seed, "stall.delay") % 10)
                     if _enabled(seed, "stall", stall) else 0.0),
        crash=_enabled(seed, "crash", crash),
        death_keys=death_keys,
        poison_key=poison_key,
        fs_rule=fs_rule,
        corrupt=_enabled(seed, "corrupt", corrupt),
        restart=_enabled(seed, "restart", restart),
    )


def build_fault_plan(dims: Dimensions, *,
                     include_crash: bool = True) -> Optional[FaultPlan]:
    """The simulated-fault plan of a campaign (None when empty).

    ``include_crash=False`` builds the *reference* variant: identical
    KNEM/stall content but no fail-stop rules, so a fault-free-substrate
    serial run under it is the byte-identity baseline for every cell the
    chaos run completes.  Stalls stay in both variants — they shift
    simulated timings, and identity is only meaningful when both runs see
    the same schedule.
    """
    rules: list[FaultRule] = []
    # KNEM ops only: the recovery ladder absorbs these byte-identically
    # (retry → copy-in/copy-out → disqualify).  shm.slot faults are left
    # out — they surface as typed aborts on the shared-memory stacks,
    # which would make the *reference* run abort too and leave nothing
    # for the identity oracle to compare.
    if dims.knem_rate > 0.0:
        rules.extend(
            FaultRule(op=op, probability=dims.knem_rate,
                      sticky=dims.knem_sticky)
            for op in KNEM_OPS)
    if dims.stall_delay > 0.0:
        rules.append(FaultRule(op="rank.stall", core=0, index=0,
                               delay=dims.stall_delay))
    if dims.crash and include_crash:
        rules.append(FaultRule(op="rank.crash", core=0, index=0))
    if not rules:
        return None
    return FaultPlan(rules, seed=seeds.derive(dims.seed, "plan") % 2**32)


def _flag_path(workdir: str, key: str) -> str:
    safe = "".join(c if c.isalnum() else "_" for c in key)
    return os.path.join(workdir, f"died_{safe}.flag")


def make_cell_hook(dims: Dimensions,
                   workdir: str) -> Optional[Callable[[str], None]]:
    """The per-cell chaos hook (install via ``install_cell_chaos``).

    Runs in warm-pool workers before each measurement.  Death-dimension
    cells kill their worker exactly once — a flag file in ``workdir``
    remembers the death across the respawn, because the worker's memory
    obviously does not survive it.  The poison cell kills every worker,
    every time: only the quarantine ladder can end it.  ``os._exit``
    (never ``sys.exit``) so the death is fail-stop — no ``finally``
    blocks, no pipe flush, exactly like a kill -9 or an OOM kill.
    """
    if not dims.death_keys and dims.poison_key is None:
        return None

    def hook(key: str) -> None:
        from repro.bench.executor import in_worker

        if not in_worker():
            return
        if key == dims.poison_key:
            os._exit(WORKER_DEATH_EXIT)
        if key in dims.death_keys:
            flag = _flag_path(workdir, key)
            if not os.path.exists(flag):
                with open(flag, "w") as fh:
                    fh.write(key + "\n")
                os._exit(WORKER_DEATH_EXIT)

    return hook


def corrupt_journal(path: str, seed: int) -> Optional[dict]:
    """Flip one byte of one *interior* journal record (never the header,
    never the final line — the torn-tail path is exercised by the fs-fault
    dimension instead).  Returns ``{"lineno", "column"}`` describing the
    damage, or None when the journal is too short to have an interior.
    """
    try:
        with open(path) as fh:
            raw = fh.read()
    except FileNotFoundError:
        return None
    lines = raw.splitlines(keepends=True)
    # Interior records: everything between the header and the last line.
    candidates = [i for i in range(1, len(lines) - 1) if lines[i].strip()]
    if not candidates:
        return None
    lineno = seeds.pick(seed, "corrupt.line", candidates)
    line = lines[lineno]
    body = line.rstrip("\n")
    col = seeds.derive(seed, "corrupt.col") % len(body)
    old = body[col]
    # Replace with a different alphanumeric so the line stays one line
    # (a newline would split the record and shift every later lineno).
    alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
    new = seeds.pick(seed, "corrupt.char",
                     [c for c in alphabet if c != old])
    lines[lineno] = body[:col] + new + body[col:][1:] + "\n"
    with open(path, "w") as fh:
        fh.writelines(lines)
    return {"lineno": lineno + 1, "column": col, "old": old, "new": new}
