"""Filesystem fault injection around checkpoint-journal appends.

The journal is the one place the sweep substrate touches durable state, so
it is the one place disk failure modes matter: ``EIO`` (a failing device),
``ENOSPC`` (a full volume), and the nastiest of the three, a **short
write** — part of one record reaches the file and then the write errors,
leaving a torn final line exactly like a crash mid-append.

A :class:`FaultyFile` wraps the append-mode journal handle (installed via
:func:`repro.bench.harness.set_journal_wrapper`) and injects one such
fault after a configured number of successful appends.  The contract the
campaigns verify: the sweep *degrades to no-journaling* (the run still
completes and stays correct; only resumability of later cells is lost),
and the journal on disk is still recoverable — at worst a torn tail.
"""

from __future__ import annotations

import errno
from dataclasses import dataclass
from typing import IO

from repro.errors import BenchmarkError

__all__ = ["FsFaultRule", "FaultyFile", "FS_FAULT_MODES"]

#: injectable failure modes for one journal append
FS_FAULT_MODES = ("eio", "enospc", "short")

_ERRNOS = {"eio": errno.EIO, "enospc": errno.ENOSPC, "short": errno.EIO}


@dataclass(frozen=True)
class FsFaultRule:
    """Fail the ``after_writes``-th append (0 = the very first).

    ``short`` writes half of the record's bytes before erroring, producing
    a torn final line; ``eio``/``enospc`` fail cleanly with the matching
    errno.  One rule fires once — after the failure the harness stops
    journaling, so there is nothing left to inject into.
    """

    after_writes: int
    mode: str = "eio"

    def __post_init__(self) -> None:
        if self.mode not in FS_FAULT_MODES:
            raise BenchmarkError(
                f"unknown fs fault mode {self.mode!r}; "
                f"known: {FS_FAULT_MODES}")
        if self.after_writes < 0:
            raise BenchmarkError("after_writes must be >= 0")


class FaultyFile:
    """File-object proxy that injects one :class:`FsFaultRule` on write."""

    def __init__(self, fh: IO[str], rule: FsFaultRule):
        self._fh = fh
        self._rule = rule
        self._writes = 0
        #: set once the fault fired (campaign reports read this)
        self.fired = False

    def write(self, data: str) -> int:
        if not self.fired and self._writes >= self._rule.after_writes:
            self.fired = True
            if self._rule.mode == "short":
                # Half the record lands, then the device gives up: the
                # torn-tail case the journal format must absorb.
                self._fh.write(data[: len(data) // 2])
                self._fh.flush()
            raise OSError(_ERRNOS[self._rule.mode],
                          f"injected fs fault ({self._rule.mode})")
        self._writes += 1
        return self._fh.write(data)

    def flush(self) -> None:
        self._fh.flush()

    def fileno(self) -> int:
        return self._fh.fileno()

    def close(self) -> None:
        self._fh.close()

    @property
    def closed(self) -> bool:  # pragma: no cover - debug convenience
        return self._fh.closed
