"""``python -m repro.chaos`` — run seeded chaos campaigns."""

import sys

from repro.chaos.cli import main

sys.exit(main())
