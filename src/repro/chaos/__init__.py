"""Seeded chaos campaigns over the sweep substrate.

A campaign composes every fault dimension the repo knows — simulated KNEM/
FIFO faults and rank crashes/stalls (:mod:`repro.faults.plan`), warm-pool
worker deaths (``os._exit`` mid-cell), poison cells that kill every worker
that touches them, filesystem faults around checkpoint appends
(:mod:`repro.chaos.fsfaults`), and post-hoc journal corruption — into one
randomized-but-reproducible run (every choice derives from the campaign
seed via blake2b, :mod:`repro.chaos.seeds`), then checks invariant oracles
(:mod:`repro.chaos.oracles`):

- the final, resumed CSV is **byte-identical** to a fault-free-substrate
  serial run under the same simulated fault plan, or the run ended in a
  **typed** abort;
- **KNEM-San** reports zero findings and zero leaked regions under the
  campaign's fault plan;
- the checkpoint **journal is always recoverable** (corrupt records skip
  and recompute, torn tails drop);
- the **pool never wedges**: poison cells quarantine after a bounded
  number of respawns instead of requeueing forever.

Campaigns are the soak traffic the future sweep service is qualified
against; ``python -m repro.chaos --seed N`` runs one from the command
line and writes a JSON report.
"""

from repro.chaos.campaign import CampaignSpec, run_campaign
from repro.chaos.injections import Dimensions, derive_dimensions
from repro.chaos.report import CampaignReport

__all__ = ["CampaignSpec", "run_campaign", "CampaignReport",
           "Dimensions", "derive_dimensions"]
