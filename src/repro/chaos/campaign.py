"""Run one seeded chaos campaign end-to-end and judge it with oracles.

A campaign is four phases over one sweep grid:

1. **reference** — a fault-free-substrate serial run under the campaign's
   simulated fault plan (minus fail-stop rules): the byte-identity
   baseline.  Simulated faults stay in — they deterministically change
   timings, and the claim under test is that *substrate* chaos (worker
   deaths, fs faults, parallelism, corruption) never changes results.
2. **chaos** — the same grid through the warm-pool executor with every
   armed dimension injecting: full fault plan, per-cell worker deaths,
   a poison cell, journal append faults.  May end in a typed abort.
3. **corrupt** — flip one byte in an interior journal record on disk
   (simulated bit rot between runs).
4. **resume** — re-run serially against the damaged journal with chaos
   disarmed: corrupt records must skip-and-recompute, quarantined cells
   must heal, and the final cell map must equal the reference exactly.
5. **service-restart** (only when the ``restart`` dimension is armed) —
   serve the grid from a sweep server, stop the server, serve it again
   from a fresh server sharing the durable result cache: the second
   serving must be all cache hits, byte-identical to the reference.

Then the oracles (:mod:`repro.chaos.oracles`) rule on the artifacts.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass
from typing import Optional

from repro.bench import executor, harness
from repro.bench.harness import ExperimentResult, run_sweep
from repro.bench.imb import ImbSettings
from repro.chaos.fsfaults import FaultyFile
from repro.chaos.injections import (
    Dimensions,
    build_fault_plan,
    corrupt_journal,
    derive_dimensions,
    make_cell_hook,
)
from repro.chaos.oracles import (
    TYPED_ERRORS,
    check_chaos_cells,
    check_identity,
    check_journal,
    check_pool_bounds,
    check_sanitizer,
    check_service_restart,
    check_typed_abort,
)
from repro.chaos.report import CampaignReport, OracleVerdict, PhaseOutcome
from repro.errors import BenchmarkError
from repro.mpi.stacks import ALL_STACKS, Stack

__all__ = ["CampaignSpec", "run_campaign"]


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign, fully described (the seed decides the dimensions).

    The dimension overrides (``knem`` … ``corrupt``) take ``None`` to let
    the seed decide, or ``True``/``False`` to force — fixed-seed CI and
    the acceptance tests force the dimensions they are about.
    """

    seed: int = 0
    machine: str = "dancer"
    operation: str = "bcast"
    nprocs: int = 4
    stacks: tuple[str, ...] = ("Tuned-SM", "KNEM-Coll")
    sizes: tuple[int, ...] = (32 * 1024, 128 * 1024)
    jobs: int = 2
    retry_limit: int = 2
    max_iterations: int = 2
    knem: Optional[bool] = None
    stall: Optional[bool] = None
    crash: Optional[bool] = None
    deaths: Optional[bool] = None
    poison: Optional[bool] = None
    fsfault: Optional[bool] = None
    corrupt: Optional[bool] = None
    restart: Optional[bool] = None

    def describe(self) -> dict:
        return {
            "seed": self.seed, "machine": self.machine,
            "operation": self.operation, "nprocs": self.nprocs,
            "stacks": list(self.stacks), "sizes": list(self.sizes),
            "jobs": self.jobs, "retry_limit": self.retry_limit,
        }


def _resolve_stacks(names: tuple[str, ...]) -> list[Stack]:
    by_name = {s.name: s for s in ALL_STACKS}
    missing = [n for n in names if n not in by_name]
    if missing:
        raise BenchmarkError(
            f"unknown stacks {missing}; known: {sorted(by_name)}")
    return [by_name[n] for n in names]


def _stats_summary(result: Optional[ExperimentResult]) -> dict:
    if result is None or result.stats is None:
        return {}
    s = result.stats
    return {
        "cells_run": s.cells_run, "cells_resumed": s.cells_resumed,
        "cells_aborted": s.cells_aborted,
        "chunks_quarantined": s.chunks_quarantined,
        "pool_respawns": s.pool_respawns,
        "pool_requeued": s.pool_requeued,
        "journal_skipped": s.journal_skipped,
        "journal_errors": s.journal_errors,
    }


def run_campaign(spec: CampaignSpec, workdir: str) -> CampaignReport:
    """Execute one campaign in ``workdir`` (journal + death flags live
    there) and return its judged report.  Global chaos hooks are always
    uninstalled on exit, even when a phase dies unexpectedly."""
    os.makedirs(workdir, exist_ok=True)
    stacks = _resolve_stacks(spec.stacks)
    sizes = list(spec.sizes)
    keys = [f"{stack.name}|{size}" for stack in stacks for size in sizes]
    substrate = spec.jobs != 1
    dims = derive_dimensions(
        spec.seed, keys, substrate=substrate,
        knem=spec.knem, stall=spec.stall, crash=spec.crash,
        deaths=spec.deaths, poison=spec.poison, fsfault=spec.fsfault,
        corrupt=spec.corrupt, restart=spec.restart)
    full_plan = build_fault_plan(dims, include_crash=True)
    ref_plan = build_fault_plan(dims, include_crash=False)
    settings = ImbSettings(max_iterations=spec.max_iterations)
    checkpoint = os.path.join(workdir,
                              f"chaos_{spec.seed}.checkpoint.json")
    report = CampaignReport(seed=spec.seed, spec=spec.describe(),
                            dimensions=dims.describe())
    sweep_args = dict(
        experiment=f"chaos{spec.seed}", machine=spec.machine,
        operation=spec.operation, nprocs=spec.nprocs, stacks=stacks,
        sizes=sizes, settings=settings)

    # Phase 1: reference (serial, no substrate chaos, crash-free plan).
    reference = run_sweep(fault_plan=ref_plan, **sweep_args)
    report.phases.append(PhaseOutcome(
        "reference", True,
        detail={"cells": sum(len(s.times) for s in reference.series)}))

    # Phase 2: chaos.
    chaos_result: Optional[ExperimentResult] = None
    chaos_error: Optional[BaseException] = None
    hook = make_cell_hook(dims, workdir)
    with contextlib.ExitStack() as hooks:
        if hook is not None:
            executor.install_cell_chaos(hook)
            hooks.callback(executor.install_cell_chaos, None)
        if dims.fs_rule is not None:
            rule = dims.fs_rule
            # Context-scoped (not set/reset by hand): the wrapper is
            # restored even when the sweep dies, so a crashed chaos run
            # can never leave fs faults armed for the next phase.
            hooks.enter_context(harness.journal_wrapper(
                lambda fh: FaultyFile(fh, rule)))
        try:
            chaos_result = run_sweep(
                fault_plan=full_plan, checkpoint=checkpoint,
                parallel=spec.jobs, retry_limit=spec.retry_limit,
                **sweep_args)
        except TYPED_ERRORS as err:
            chaos_error = err
    report.phases.append(PhaseOutcome(
        "chaos", chaos_error is None,
        error=None if chaos_error is None else
        f"{type(chaos_error).__name__}: {chaos_error}",
        detail=_stats_summary(chaos_result)))

    # Phase 3: corrupt an interior journal record (simulated bit rot).
    damage: Optional[dict] = None
    if dims.corrupt:
        damage = corrupt_journal(checkpoint, spec.seed)
    report.phases.append(PhaseOutcome(
        "corrupt", True,
        detail=damage or {"skipped": "journal too short to corrupt"}))

    # Phase 4: resume with chaos disarmed; must heal everything.
    resumed: Optional[ExperimentResult] = None
    resume_error: Optional[BaseException] = None
    try:
        resumed = run_sweep(fault_plan=ref_plan, checkpoint=checkpoint,
                            parallel=1, **sweep_args)
    except TYPED_ERRORS as err:  # pragma: no cover - an oracle will fail
        resume_error = err
    report.phases.append(PhaseOutcome(
        "resume", resume_error is None,
        error=None if resume_error is None else
        f"{type(resume_error).__name__}: {resume_error}",
        detail=_stats_summary(resumed)))

    # Phase 5: serve the grid twice across a sweep-server restart.  Both
    # servers share one durable cache journal in the workdir, so every
    # cell of the second serving must be a cache hit — losing the server
    # process must never lose results.
    served: Optional[ExperimentResult] = None
    reserved: Optional[ExperimentResult] = None
    service_counters: Optional[dict] = None
    if dims.restart:
        from repro.service.server import start_in_thread
        from repro.simtime.trace import TraceRecord

        cache = os.path.join(workdir,
                             f"service_{spec.seed}.cache.checkpoint.json")
        service_error: Optional[BaseException] = None
        try:
            first = start_in_thread("127.0.0.1:0", jobs=1, cache_path=cache)
            try:
                served = run_sweep(fault_plan=ref_plan,
                                   service=first.address, **sweep_args)
            finally:
                first.stop()  # the injected restart: server process dies
            with start_in_thread("127.0.0.1:0", jobs=1,
                                 cache_path=cache) as second:
                reserved = run_sweep(fault_plan=ref_plan,
                                     service=second.address, **sweep_args)
                service_counters = second.counters()
            if reserved.stats is not None:
                reserved.stats.events.append(TraceRecord(
                    0.0, "service.restart",
                    {"cache": os.path.basename(cache),
                     "counters": service_counters}))
        except TYPED_ERRORS as err:  # pragma: no cover - oracle will fail
            service_error = err
        report.phases.append(PhaseOutcome(
            "service-restart", service_error is None,
            error=None if service_error is None else
            f"{type(service_error).__name__}: {service_error}",
            detail=service_counters or {}))

    # Oracles.
    report.oracles.append(check_identity(reference, resumed))
    report.oracles.append(
        check_chaos_cells(reference, chaos_result, dims, substrate))
    report.oracles.append(check_typed_abort(chaos_error, dims))
    report.oracles.append(
        check_journal(checkpoint, after_resume=resume_error is None))
    knem_stack = next((s for s in stacks if "KNEM" in s.name), stacks[-1])
    report.oracles.append(check_sanitizer(
        spec.machine, spec.operation, spec.nprocs, knem_stack,
        max(sizes), ref_plan))
    report.oracles.append(check_pool_bounds(
        chaos_result, dims, len(keys), spec.retry_limit))
    if dims.restart:
        report.oracles.append(check_service_restart(
            reference, served, reserved, service_counters))
    if damage is not None:
        detected = resumed is not None and resumed.stats is not None and (
            resumed.stats.journal_skipped >= 1)
        report.oracles.append(OracleVerdict(
            "corrupt-recovery", detected,
            "corrupt record skipped and recomputed on resume" if detected
            else "resume did not report the corrupted record"))
    report.stats = {
        "chaos": _stats_summary(chaos_result),
        "resume": _stats_summary(resumed),
    }
    return report
