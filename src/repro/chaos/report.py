"""Campaign reports: what ran, what was injected, what the oracles said."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["OracleVerdict", "PhaseOutcome", "CampaignReport"]


@dataclass
class OracleVerdict:
    """One invariant check over a finished campaign."""

    name: str
    ok: bool
    detail: str = ""

    def as_dict(self) -> dict:
        return {"name": self.name, "ok": self.ok, "detail": self.detail}


@dataclass
class PhaseOutcome:
    """One campaign phase (reference / chaos / corrupt / resume)."""

    name: str
    ok: bool
    #: typed error string when the phase aborted (``None`` = completed)
    error: Optional[str] = None
    detail: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"name": self.name, "ok": self.ok, "error": self.error,
                "detail": self.detail}


@dataclass
class CampaignReport:
    """Everything one campaign produced, JSON-serializable for CI."""

    seed: int
    spec: dict
    dimensions: dict
    phases: list[PhaseOutcome] = field(default_factory=list)
    oracles: list[OracleVerdict] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every oracle held (phases may abort *typed* and the
        campaign still passes — that is the point of typed aborts)."""
        return all(o.ok for o in self.oracles)

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "spec": self.spec,
            "dimensions": self.dimensions,
            "phases": [p.as_dict() for p in self.phases],
            "oracles": [o.as_dict() for o in self.oracles],
            "stats": self.stats,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def write(self, path: str) -> str:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")
        return path

    def render(self) -> str:
        """Human-readable one-screen summary."""
        lines = [f"chaos campaign seed={self.seed}: "
                 f"{'PASS' if self.ok else 'FAIL'}"]
        lines.append(f"  dimensions: {json.dumps(self.dimensions)}")
        for p in self.phases:
            what = "ok" if p.ok else f"aborted: {p.error}"
            lines.append(f"  phase {p.name}: {what}")
        for o in self.oracles:
            mark = "PASS" if o.ok else "FAIL"
            detail = f" — {o.detail}" if o.detail else ""
            lines.append(f"  oracle {o.name}: {mark}{detail}")
        if self.stats:
            lines.append(f"  stats: {json.dumps(self.stats)}")
        return "\n".join(lines)


def merge_ok(reports: "list[CampaignReport]") -> bool:
    """True when every campaign in a matrix passed."""
    return all(r.ok for r in reports)
