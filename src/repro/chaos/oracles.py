"""Invariant oracles checked after every chaos campaign.

Each oracle is a pure predicate over campaign artifacts (results, the
journal on disk, a sanitized re-run) returning an
:class:`~repro.chaos.report.OracleVerdict`.  The campaign passes only if
every oracle holds; a phase that *aborted with a typed error* can still
pass — converting chaos into typed, attributable outcomes is exactly the
robustness property under test.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.static.shadowmem import SingleCopySanitizer
from repro.bench.harness import ExperimentResult, verify_journal
from repro.bench.imb import OPS, ImbSettings
from repro.chaos.injections import Dimensions
from repro.chaos.report import OracleVerdict
from repro.errors import BenchmarkError, MpiError, ReproError, SimulationError
from repro.faults.plan import FaultPlan
from repro.mpi.runtime import Job, Machine
from repro.mpi.stacks import Stack

__all__ = ["TYPED_ERRORS", "check_identity", "check_chaos_cells",
           "check_typed_abort", "check_journal", "check_sanitizer",
           "check_pool_bounds", "check_service_restart"]

#: error types a chaos phase may legitimately end with — anything else
#: (KeyError, a hang, a segfault) is a substrate bug, not an abort.
TYPED_ERRORS = (MpiError, SimulationError, BenchmarkError, ReproError)


def _times(result: ExperimentResult) -> dict[str, dict[int, float]]:
    return {s.name: dict(s.times) for s in result.series}


def check_identity(reference: ExperimentResult,
                   resumed: Optional[ExperimentResult]) -> OracleVerdict:
    """The healed (resumed, chaos-free) sweep is *exactly* the reference.

    Exact float equality, not approximate: every cell is a deterministic
    simulation, the journal round-trips floats bit-for-bit, and the CSVs
    derive from these dicts — so equality here is CSV byte-identity.
    """
    if resumed is None:
        return OracleVerdict("identity", False, "resume phase never ran")
    want, got = _times(reference), _times(resumed)
    if want == got:
        return OracleVerdict(
            "identity", True, f"{sum(len(v) for v in want.values())} cells "
            f"byte-identical after resume")
    diffs = []
    for name in want:
        for size, t in want[name].items():
            if got.get(name, {}).get(size) != t:
                diffs.append(f"{name}|{size}")
    return OracleVerdict("identity", False,
                         f"cells diverged or missing: {sorted(diffs)[:8]}")


def check_chaos_cells(reference: ExperimentResult,
                      chaos: Optional[ExperimentResult],
                      dims: Dimensions,
                      parallel: bool) -> OracleVerdict:
    """Every cell the chaos run *did* complete matches the reference, and
    quarantined cells are exactly the expected poison set."""
    if chaos is None:
        # The run aborted typed before producing a result; the typed-abort
        # oracle owns that case.
        return OracleVerdict("chaos-cells", True,
                             "run aborted typed; nothing to compare")
    ref = _times(reference)
    for s in chaos.series:
        for size, t in s.times.items():
            if ref.get(s.name, {}).get(size) != t:
                return OracleVerdict(
                    "chaos-cells", False,
                    f"cell {s.name}|{size} diverged under chaos")
    expected = ({dims.poison_key}
                if parallel and dims.poison_key is not None else set())
    got = set(chaos.aborted)
    if got != expected:
        return OracleVerdict(
            "chaos-cells", False,
            f"aborted cells {sorted(got)} != expected {sorted(expected)}")
    detail = (f"{sum(len(s.times) for s in chaos.series)} completed cells "
              f"match; aborted == {sorted(expected)}")
    return OracleVerdict("chaos-cells", True, detail)


def check_typed_abort(error: Optional[BaseException],
                      dims: Dimensions) -> OracleVerdict:
    """A chaos run may only fail with a *typed* error, and only when the
    crash dimension armed a fail-stop rank."""
    if error is None:
        if dims.crash:
            return OracleVerdict("typed-abort", False,
                                 "crash armed but the sweep completed")
        return OracleVerdict("typed-abort", True, "no abort, none expected")
    if not isinstance(error, TYPED_ERRORS):
        return OracleVerdict(
            "typed-abort", False,
            f"untyped failure {type(error).__name__}: {error}")
    if not dims.crash:
        return OracleVerdict(
            "typed-abort", False,
            f"typed {type(error).__name__} without a crash dimension: "
            f"{error}")
    return OracleVerdict("typed-abort", True,
                         f"typed {type(error).__name__} as expected")


def check_journal(checkpoint: Optional[str],
                  after_resume: bool) -> OracleVerdict:
    """The journal on disk is recoverable; fully intact after a resume."""
    if checkpoint is None:
        return OracleVerdict("journal", True, "campaign ran journal-less")
    try:
        report = verify_journal(checkpoint)
    except BenchmarkError as err:
        return OracleVerdict("journal", False, f"unrecoverable: {err}")
    if after_resume and not report.ok:
        return OracleVerdict(
            "journal", False,
            f"damage survived resume: {len(report.skipped)} skipped, "
            f"torn_tail={report.torn_tail}")
    return OracleVerdict(
        "journal", True,
        f"recoverable ({len(report.cells)} cells intact)")


def check_sanitizer(machine_name: str, operation: str, nprocs: int,
                    stack: Stack, msg_size: int,
                    plan: Optional[FaultPlan]) -> OracleVerdict:
    """KNEM-San over one collective under the campaign's fault plan: zero
    findings, zero live regions — even on typed abort paths."""
    machine = Machine.build(machine_name)
    sanitizer = machine.arm_sanitizer(SingleCopySanitizer())
    if plan is not None:
        machine.arm_faults(plan.fork())
    settings = ImbSettings()

    def program(proc):
        call, _buffers = OPS[operation](proc, msg_size, settings)
        yield from call()

    aborted = ""
    try:
        Job(machine, nprocs=nprocs, stack=stack).run(program)
    except TYPED_ERRORS as err:
        aborted = f" (typed abort: {type(err).__name__})"
    findings = sanitizer.findings
    leaks = machine.knem.live_regions
    if findings or leaks:
        cats = sorted({f.category for f in findings})
        return OracleVerdict(
            "knem-san", False,
            f"{len(findings)} finding(s) {cats}, {leaks} live region(s)")
    return OracleVerdict("knem-san", True,
                         f"zero findings, zero live regions{aborted}")


def check_pool_bounds(result: Optional[ExperimentResult], dims: Dimensions,
                      n_cells: int, retry_limit: int) -> OracleVerdict:
    """The pool never wedged: respawns stay within the quarantine budget.

    An unbounded requeue loop shows up here as respawns far beyond what
    the retry budget can explain (the pre-quarantine executor would spin
    forever on a poison cell and never even reach this check).
    """
    if result is None or result.stats is None:
        return OracleVerdict("pool", True, "no pool ran (typed abort)")
    stats = result.stats
    bound = retry_limit * n_cells + len(dims.death_keys) + 2
    if stats.pool_respawns > bound:
        return OracleVerdict(
            "pool", False,
            f"{stats.pool_respawns} respawns exceeds budget {bound}")
    if dims.poison_key is not None and stats.pool_workers and (
            not result.aborted):
        return OracleVerdict(
            "pool", False, "poison cell armed but nothing quarantined")
    return OracleVerdict(
        "pool", True,
        f"{stats.pool_respawns} respawn(s) within budget {bound}")


def check_service_restart(reference: ExperimentResult,
                          served: Optional[ExperimentResult],
                          reserved: Optional[ExperimentResult],
                          counters: Optional[dict]) -> OracleVerdict:
    """A server restart loses no results: the re-served grid is answered
    entirely from the durable cache, byte-identical to the reference, and
    the restarted server's pool computed nothing.

    Also drives the served sweeps' ``service.*`` trace events through the
    analysis :class:`~repro.analysis.model.TraceModel`, so the model's
    service ingestion is exercised under chaos, not just in unit tests.
    """
    if served is None or reserved is None:
        return OracleVerdict("service-cache", False,
                             "service phase never completed")
    want = _times(reference)
    for label, result in (("served", served), ("re-served", reserved)):
        got = _times(result)
        if want != got:
            return OracleVerdict(
                "service-cache", False,
                f"{label} sweep diverged from the reference")
    n_cells = sum(len(s.times) for s in reference.series)
    stats = reserved.stats
    if stats is None or stats.service_cache_hits != n_cells:
        hits = stats.service_cache_hits if stats else "?"
        return OracleVerdict(
            "service-cache", False,
            f"restarted server answered {hits}/{n_cells} cells from cache")
    if counters is not None and counters.get("cells_computed", 0) != 0:
        return OracleVerdict(
            "service-cache", False,
            f"restarted server recomputed "
            f"{counters['cells_computed']} cell(s) despite a warm cache")
    from repro.analysis.model import TraceModel

    model = TraceModel(nprocs=1).ingest(
        list(served.stats.events) + list(stats.events)
        if served.stats else list(stats.events))
    kinds = [ev.kind for ev in model.service_events]
    if "restart" not in kinds or kinds.count("cache_hit") < n_cells:
        return OracleVerdict(
            "service-cache", False,
            f"trace model ingested {kinds.count('cache_hit')} cache hits "
            f"and {kinds.count('restart')} restart event(s)")
    return OracleVerdict(
        "service-cache", True,
        f"{n_cells} cells re-served from cache across a restart, "
        f"byte-identical")
