"""Command-line chaos campaigns: ``python -m repro.chaos``.

Examples::

    python -m repro.chaos --seed 7
    python -m repro.chaos --seed 1 --seed 2 --seed 3 --jobs 2 \\
        --out campaign_report.json
    python -m repro.chaos --seed 5 --force poison --force corrupt --verbose

Exit code 0 when every campaign's oracles all hold, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile

from repro.bench.imb import OPS
from repro.chaos.campaign import CampaignSpec, run_campaign

__all__ = ["main"]

_DIMENSIONS = ("knem", "stall", "crash", "deaths", "poison", "fsfault",
               "corrupt", "restart")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description="Run seeded chaos campaigns against the sweep "
                    "substrate and check the invariant oracles.",
    )
    parser.add_argument("--seed", type=int, action="append", default=None,
                        help="campaign seed (repeatable; default: 0)")
    parser.add_argument("--machine", default="dancer",
                        help="simulated machine (default: dancer)")
    parser.add_argument("--operation", default="bcast",
                        choices=sorted(OPS),
                        help="collective under test (default: bcast)")
    parser.add_argument("--nprocs", type=int, default=4,
                        help="ranks per cell (default: 4)")
    parser.add_argument("--jobs", type=int, default=2, metavar="N",
                        help="warm-pool workers for the chaos phase "
                             "(1 = serial substrate, no worker-death "
                             "dimensions; default: 2)")
    parser.add_argument("--retry-limit", type=int, default=2,
                        help="per-cell worker-death budget (default: 2)")
    parser.add_argument("--workdir", default=None,
                        help="where journals and death flags live "
                             "(default: a fresh temp dir per campaign)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the campaign report(s) as JSON")
    parser.add_argument("--force", action="append", default=[],
                        choices=_DIMENSIONS, metavar="DIM",
                        help="force one fault dimension on (repeatable)")
    parser.add_argument("--disable", action="append", default=[],
                        choices=_DIMENSIONS, metavar="DIM",
                        help="force one fault dimension off (repeatable)")
    parser.add_argument("--verbose", action="store_true",
                        help="print the full report per campaign")
    args = parser.parse_args(argv)
    overlap = set(args.force) & set(args.disable)
    if overlap:
        parser.error(f"cannot both force and disable {sorted(overlap)}")
    overrides = {dim: True for dim in args.force}
    overrides.update({dim: False for dim in args.disable})

    reports = []
    for seed in (args.seed if args.seed is not None else [0]):
        spec = CampaignSpec(
            seed=seed, machine=args.machine, operation=args.operation,
            nprocs=args.nprocs, jobs=args.jobs,
            retry_limit=args.retry_limit, **overrides)
        workdir = args.workdir or tempfile.mkdtemp(
            prefix=f"repro-chaos-{seed}-")
        report = run_campaign(spec, workdir)
        reports.append(report)
        if args.verbose:
            print(report.render())
        else:
            print(f"chaos campaign seed={seed}: "
                  f"{'PASS' if report.ok else 'FAIL'}")
        if not report.ok:
            for oracle in report.oracles:
                if not oracle.ok:
                    print(f"  FAILED oracle {oracle.name}: "
                          f"{oracle.detail}", file=sys.stderr)

    if args.out:
        payload = ([r.as_dict() for r in reports] if len(reports) > 1
                   else reports[0].as_dict())
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0 if all(r.ok for r in reports) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
