"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch simulation-level failures without masking programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "DeadlockError",
    "HardwareConfigError",
    "RoutingError",
    "KernelError",
    "KnemError",
    "KnemInvalidCookie",
    "KnemPermissionError",
    "KnemBoundsError",
    "FaultInjected",
    "KnemFaultInjected",
    "ShmFaultInjected",
    "ShmError",
    "MpiError",
    "TruncationError",
    "CommunicatorError",
    "CollectiveError",
    "BenchmarkError",
]


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event engine (misuse or inconsistency)."""


class DeadlockError(SimulationError):
    """The event queue drained while simulated processes were still blocked.

    ``blocked`` lists the non-daemon process names (sorted by the simulator
    for determinism); ``waiting`` optionally maps each blocked process name
    to the name of the event it was waiting on; ``pending_events`` counts
    the distinct untriggered events the blocked processes wait on.
    """

    def __init__(self, blocked: list[str],
                 waiting: "dict[str, str] | None" = None,
                 pending_events: int = 0):
        self.blocked = list(blocked)
        self.waiting = dict(waiting) if waiting else {}
        self.pending_events = pending_events
        if self.waiting:
            detail = ", ".join(
                f"{name} (waiting on {self.waiting.get(name) or '<unknown event>'})"
                for name in self.blocked
            )
            msg = (
                f"simulation deadlock: {len(self.blocked)} blocked "
                f"process(es): {detail}; {pending_events} distinct pending "
                f"event(s)"
            )
        else:
            detail = ", ".join(self.blocked) if self.blocked else "<unknown>"
            msg = f"simulation deadlock; blocked processes: {detail}"
        super().__init__(msg)


class HardwareConfigError(ReproError):
    """A machine specification is internally inconsistent."""


class RoutingError(HardwareConfigError):
    """No link path exists between two memory domains."""


class KernelError(ReproError):
    """Base class for simulated-kernel failures."""


class KnemError(KernelError):
    """Base class for KNEM driver failures (maps to ioctl() errors)."""


class KnemInvalidCookie(KnemError):
    """The cookie does not name a live region (EINVAL in the real driver)."""


class KnemPermissionError(KnemError):
    """Access direction not permitted by the region's protection flags."""


class KnemBoundsError(KnemError):
    """A copy request falls outside the registered region."""


class FaultInjected(ReproError):
    """Marker base for failures injected by an armed :class:`FaultPlan`.

    Concrete injected faults multiply inherit from this class and from the
    subsystem error they imitate, so recovery code catching the subsystem
    class (``except KnemError``) handles injected faults transparently while
    tests can still single them out with ``except FaultInjected``.
    """


class KnemFaultInjected(FaultInjected, KnemError):
    """An injected KNEM ioctl failure (register/copy/destroy)."""


class ShmError(KernelError):
    """Shared-memory segment misuse (overflow, double attach, ...)."""


class ShmFaultInjected(FaultInjected, ShmError):
    """An injected shared-memory failure (FIFO slot acquisition)."""


class MpiError(ReproError):
    """Base class for MPI-layer failures."""


class TruncationError(MpiError):
    """An incoming message is longer than the posted receive buffer."""


class CommunicatorError(MpiError):
    """Invalid rank/root/communicator argument."""


class CollectiveError(MpiError):
    """A collective component hit an unsupported or inconsistent request."""


class BenchmarkError(ReproError):
    """The benchmarking harness was misconfigured."""
