"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch simulation-level failures without masking programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "DeadlockError",
    "HardwareConfigError",
    "RoutingError",
    "KernelError",
    "KnemError",
    "KnemInvalidCookie",
    "KnemPermissionError",
    "KnemBoundsError",
    "FaultInjected",
    "KnemFaultInjected",
    "ShmFaultInjected",
    "ShmError",
    "ProcessKilled",
    "ProgressTimeout",
    "MpiError",
    "TruncationError",
    "CommunicatorError",
    "CollectiveError",
    "RankCrashed",
    "RankFailed",
    "BenchmarkError",
]


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event engine (misuse or inconsistency)."""


class DeadlockError(SimulationError):
    """The event queue drained while simulated processes were still blocked.

    ``blocked`` lists the non-daemon process names (sorted by the simulator
    for determinism); ``waiting`` optionally maps each blocked process name
    to the name of the event it was waiting on; ``pending_events`` counts
    the distinct untriggered events the blocked processes wait on.
    """

    def __init__(self, blocked: list[str],
                 waiting: "dict[str, str] | None" = None,
                 pending_events: int = 0):
        self.blocked = list(blocked)
        self.waiting = dict(waiting) if waiting else {}
        self.pending_events = pending_events
        if self.waiting:
            detail = ", ".join(
                f"{name} (waiting on {self.waiting.get(name) or '<unknown event>'})"
                for name in self.blocked
            )
            msg = (
                f"simulation deadlock: {len(self.blocked)} blocked "
                f"process(es): {detail}; {pending_events} distinct pending "
                f"event(s)"
            )
        else:
            detail = ", ".join(self.blocked) if self.blocked else "<unknown>"
            msg = f"simulation deadlock; blocked processes: {detail}"
        super().__init__(msg)


class ProcessKilled(SimulationError):
    """Recorded as the failure value of a :meth:`Process.kill`-ed process."""

    def __init__(self, reason: str = ""):
        super().__init__(reason or "process killed")
        self.reason = reason


class ProgressTimeout(SimulationError):
    """The watchdog deadline expired while rank programs were unfinished.

    ``blocked`` lists the stuck non-daemon process names, ``waiting`` maps
    each to the event it was parked on, and ``diagnosis`` carries the
    deadlock checker's wait-cycle findings (empty when tracing was off).
    """

    def __init__(self, deadline: float, blocked: "list[str]",
                 waiting: "dict[str, str] | None" = None,
                 diagnosis: "list | None" = None):
        self.deadline = deadline
        self.blocked = list(blocked)
        self.waiting = dict(waiting) if waiting else {}
        self.diagnosis = list(diagnosis) if diagnosis else []
        detail = ", ".join(
            f"{name} (waiting on {self.waiting.get(name) or '<unknown event>'})"
            for name in self.blocked
        ) or "<none blocked; queue still busy>"
        msg = (f"watchdog: no completion within deadline {deadline}; "
               f"stuck: {detail}")
        if self.diagnosis:
            msg += "; diagnosis: " + "; ".join(
                str(getattr(f, "message", f)) for f in self.diagnosis)
        super().__init__(msg)

    def report(self) -> str:
        """Multi-line diagnosis report (CI artifact / log attachment)."""
        lines = [f"ProgressTimeout after simulated deadline {self.deadline}"]
        for name in self.blocked:
            lines.append(f"  blocked: {name} waiting on "
                         f"{self.waiting.get(name) or '<unknown event>'}")
        for finding in self.diagnosis:
            lines.append(f"  finding: {getattr(finding, 'message', finding)}")
        return "\n".join(lines)


class HardwareConfigError(ReproError):
    """A machine specification is internally inconsistent."""


class RoutingError(HardwareConfigError):
    """No link path exists between two memory domains."""


class KernelError(ReproError):
    """Base class for simulated-kernel failures."""


class KnemError(KernelError):
    """Base class for KNEM driver failures (maps to ioctl() errors)."""


class KnemInvalidCookie(KnemError):
    """The cookie does not name a live region (EINVAL in the real driver)."""


class KnemPermissionError(KnemError):
    """Access direction not permitted by the region's protection flags."""


class KnemBoundsError(KnemError):
    """A copy request falls outside the registered region."""


class FaultInjected(ReproError):
    """Marker base for failures injected by an armed :class:`FaultPlan`.

    Concrete injected faults multiply inherit from this class and from the
    subsystem error they imitate, so recovery code catching the subsystem
    class (``except KnemError``) handles injected faults transparently while
    tests can still single them out with ``except FaultInjected``.
    """


class KnemFaultInjected(FaultInjected, KnemError):
    """An injected KNEM ioctl failure (register/copy/destroy)."""


class ShmError(KernelError):
    """Shared-memory segment misuse (overflow, double attach, ...)."""


class ShmFaultInjected(FaultInjected, ShmError):
    """An injected shared-memory failure (FIFO slot acquisition)."""


class MpiError(ReproError):
    """Base class for MPI-layer failures."""


class TruncationError(MpiError):
    """An incoming message is longer than the posted receive buffer."""


class CommunicatorError(MpiError):
    """Invalid rank/root/communicator argument."""


class CollectiveError(MpiError):
    """A collective component hit an unsupported or inconsistent request."""


class RankCrashed(SimulationError):
    """Thrown inside a crashing rank's program to unwind it (fail-stop).

    The rank itself dies with this exception; surviving peers observe the
    death as :class:`RankFailed` instead.
    """

    def __init__(self, rank: int, reason: str = "injected crash"):
        self.rank = rank
        self.reason = reason
        super().__init__(f"rank {rank} crashed: {reason}")


class RankFailed(MpiError):
    """A peer rank died while this rank was inside a collective (ULFM-style).

    Raised at every *surviving* rank whose in-flight operation can no longer
    complete.  ``rank`` is the world rank of the dead peer; ``op`` names the
    operation the observer was in when the failure was delivered (best
    effort — empty when the survivor was between operations).
    """

    def __init__(self, rank: int, op: str = ""):
        self.rank = rank
        self.op = op
        where = f" during {op}" if op else ""
        super().__init__(f"peer rank {rank} failed{where}")


class BenchmarkError(ReproError):
    """The benchmarking harness was misconfigured."""
