"""Byte-size and time unit helpers used throughout the package.

All simulated times are in **seconds** (floats) and all sizes in **bytes**
(ints).  The helpers here exist so that machine specifications, experiment
definitions, and test cases can be written in the same notation the paper
uses (``"64K"``, ``"8M"``, GB/s bandwidths, nanosecond overheads).
"""

from __future__ import annotations

import re

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "KB",
    "MB",
    "GB",
    "NS",
    "US",
    "MS",
    "parse_size",
    "fmt_size",
    "fmt_time",
    "fmt_bandwidth",
    "gbps",
]

#: Binary byte units (IMB message sizes are powers of two).
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

# The paper (like IMB) writes "64K"/"8M" for binary sizes; keep the short
# aliases for spec files even though they are binary multiples.
KB = KiB
MB = MiB
GB = GiB

#: Time units expressed in seconds.
NS = 1e-9
US = 1e-6
MS = 1e-3

_SIZE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([KMGT]?)(i?B)?\s*$", re.IGNORECASE)

_SUFFIX = {"": 1, "K": KiB, "M": MiB, "G": GiB, "T": 1024 * GiB}


def parse_size(text: str | int) -> int:
    """Parse a human byte size (``"64K"``, ``"1M"``, ``4096``) into bytes.

    Sizes use binary multiples, matching IMB's message-size notation.

    >>> parse_size("64K")
    65536
    >>> parse_size(512)
    512
    """
    if isinstance(text, int):
        return text
    m = _SIZE_RE.match(text)
    if not m:
        raise ValueError(f"unparseable size: {text!r}")
    value, suffix = float(m.group(1)), m.group(2).upper()
    return int(value * _SUFFIX[suffix])


def fmt_size(nbytes: int) -> str:
    """Format a byte count the way the paper's x-axes do (``64K``, ``8M``)."""
    if nbytes >= GiB and nbytes % GiB == 0:
        return f"{nbytes // GiB}G"
    if nbytes >= MiB and nbytes % MiB == 0:
        return f"{nbytes // MiB}M"
    if nbytes >= KiB and nbytes % KiB == 0:
        return f"{nbytes // KiB}K"
    return str(nbytes)


def fmt_time(seconds: float) -> str:
    """Format a duration with an adaptive unit (ns/us/ms/s)."""
    if seconds == 0:
        return "0s"
    a = abs(seconds)
    if a < US:
        return f"{seconds / NS:.1f}ns"
    if a < MS:
        return f"{seconds / US:.2f}us"
    if a < 1.0:
        return f"{seconds / MS:.3f}ms"
    return f"{seconds:.3f}s"


def fmt_bandwidth(bytes_per_s: float) -> str:
    """Format a bandwidth in GB/s (decimal, as hardware specs are quoted)."""
    return f"{bytes_per_s / 1e9:.2f}GB/s"


def gbps(value: float) -> float:
    """Convert a bandwidth quoted in GB/s (decimal) to bytes/second."""
    return value * 1e9
