"""Process-wide switch for the vectorized event-cohort fast path.

Two engine layers consult this flag:

- :class:`repro.simtime.core.Simulator` — cohort dispatch: events that are
  ready at the same simulated instant are drained from the heap as one
  batch instead of one heap transaction per event;
- :class:`repro.hardware.flows.FlowNetwork` — numpy-vectorized
  flow-capacity updates (byte accounting, completion horizon, and the
  weighted max-min waterfilling) instead of one-Python-object-per-event.

The scalar paths remain the oracle: both implementations are locked
byte-identical by the differential test battery (tests/hardware/
test_vector_flows.py, tests/bench/test_vector_oracle.py), so flipping the
flag may change wall-clock speed but never a simulated result.

The default comes from the ``REPRO_VECTOR`` environment variable (``1``,
``true``, ``yes``, ``on`` enable it) so whole sweeps — including forked
warm-pool workers, which inherit the parent's flag — can be switched
without threading a parameter through every constructor.  Constructors
accept an explicit override for targeted tests.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["enabled", "set_enabled", "forced"]

_TRUE = frozenset({"1", "true", "yes", "on"})


def _from_env() -> bool:
    return os.environ.get("REPRO_VECTOR", "").strip().lower() in _TRUE


#: process-wide default; ``None`` means "re-read the environment".
_override: Optional[bool] = None


def enabled() -> bool:
    """Current process-wide default for the vectorized fast path."""
    if _override is not None:
        return _override
    return _from_env()


def set_enabled(value: Optional[bool]) -> None:
    """Set the process-wide default (``None`` restores the env lookup)."""
    global _override
    _override = value


@contextmanager
def forced(value: bool) -> Iterator[None]:
    """Temporarily force the flag (tests; restores the prior override)."""
    global _override
    prior = _override
    _override = value
    try:
        yield
    finally:
        _override = prior
