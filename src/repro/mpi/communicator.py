"""Communicators: rank translation, point-to-point API, collective dispatch.

Each simulated process holds its own :class:`Comm` view of a communicator;
per-communicator state shared between ranks (context id, rank table, the
shared-memory bulletin board, cached collective topologies) lives in one
:class:`CommShared` per communicator.

Collective calls are dispatched to the active collective component (chosen
by the :class:`~repro.mpi.stacks.Stack`).  Every call increments a local
sequence number — identical across ranks because MPI requires collectives
to be invoked in the same order on every rank — which isolates the
point-to-point traffic of concurrent collectives via internal tags.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from repro.errors import (
    CommunicatorError,
    ProcessKilled,
    RankCrashed,
    RankFailed,
)
from repro.hardware.memory import SimBuffer
from repro.mpi.matching import ANY_SOURCE, ANY_TAG
from repro.mpi.status import Request, Status

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.runtime import Proc, World

__all__ = ["ANY_SOURCE", "ANY_TAG", "CommShared", "Comm", "CollCtx"]


class CommShared:
    """State shared by every rank's view of one communicator."""

    def __init__(self, world: "World", cid: int, world_ranks: list[int]):
        if len(set(world_ranks)) != len(world_ranks):
            raise CommunicatorError("duplicate world ranks in communicator group")
        self.world = world
        self.cid = cid
        self.world_ranks = list(world_ranks)
        #: shared-memory bulletin board: (seq, rank) -> value (cookie arrays &c.)
        self.board: dict[tuple[int, int], Any] = {}
        #: per-communicator cache for collective topologies / FIFO sets
        self.coll_cache: dict[Any, Any] = {}

    @property
    def size(self) -> int:
        return len(self.world_ranks)


class Comm:
    """One rank's handle on a communicator."""

    def __init__(self, shared: CommShared, proc: "Proc", rank: int):
        self.shared = shared
        self.proc = proc
        self.rank = rank
        self._coll_seq = 0

    # -- basic facts -----------------------------------------------------
    @property
    def size(self) -> int:
        return self.shared.size

    @property
    def cid(self) -> int:
        return self.shared.cid

    @property
    def world(self) -> "World":
        return self.shared.world

    def world_rank(self, rank: int) -> int:
        if not 0 <= rank < self.size:
            raise CommunicatorError(f"rank {rank} out of range for size {self.size}")
        return self.shared.world_ranks[rank]

    def core_of(self, rank: int) -> int:
        """The physical core rank ``rank`` is bound to (topology queries)."""
        return self.world.proc(self.world_rank(rank)).core

    # -- point-to-point ------------------------------------------------------
    def send(self, dest: int, buf: SimBuffer, offset: int = 0,
             nbytes: Optional[int] = None, tag: Any = 0):
        """Blocking buffer send (generator)."""
        nbytes = buf.size - offset if nbytes is None else nbytes
        yield from self.proc.pml.send(self.cid, self.rank, self.world_rank(dest),
                                      tag, buf, offset, nbytes)

    def recv(self, source: int, buf: SimBuffer, offset: int = 0,
             nbytes: Optional[int] = None, tag: Any = ANY_TAG):
        """Blocking buffer receive (generator); returns :class:`Status`."""
        nbytes = buf.size - offset if nbytes is None else nbytes
        src = source if source == ANY_SOURCE else self._check_rank(source)
        status = yield from self.proc.pml.recv(self.cid, src, tag, buf,
                                               offset, nbytes)
        return status

    def send_obj(self, dest: int, obj: Any, tag: Any = 0):
        """Send a small Python object (control message) — generator."""
        yield from self.proc.pml.send(self.cid, self.rank, self.world_rank(dest),
                                      tag, obj=obj)

    def recv_obj(self, source: int = ANY_SOURCE, tag: Any = ANY_TAG):
        """Receive an object message (generator); returns ``(obj, status)``."""
        src = source if source == ANY_SOURCE else self._check_rank(source)
        status = yield from self.proc.pml.recv(self.cid, src, tag,
                                               want_object=True)
        return status.payload, status

    def isend(self, dest: int, buf: SimBuffer, offset: int = 0,
              nbytes: Optional[int] = None, tag: Any = 0) -> Request:
        nbytes = buf.size - offset if nbytes is None else nbytes
        return self.proc.pml.isend(self.cid, self.rank, self.world_rank(dest),
                                   tag, buf, offset, nbytes)

    def isend_obj(self, dest: int, obj: Any, tag: Any = 0) -> Request:
        return self.proc.pml.isend(self.cid, self.rank, self.world_rank(dest),
                                   tag, obj=obj)

    def irecv(self, source: int, buf: SimBuffer, offset: int = 0,
              nbytes: Optional[int] = None, tag: Any = ANY_TAG) -> Request:
        nbytes = buf.size - offset if nbytes is None else nbytes
        src = source if source == ANY_SOURCE else self._check_rank(source)
        return self.proc.pml.post_recv(self.cid, src, tag, buf, offset, nbytes)

    def sendrecv(self, dest: int, sendbuf: SimBuffer, send_off: int,
                 send_nbytes: int, source: int, recvbuf: SimBuffer,
                 recv_off: int, recv_nbytes: int, tag: Any = 0):
        """Simultaneous send+recv (generator); returns the receive status."""
        rreq = self.irecv(source, recvbuf, recv_off, recv_nbytes, tag)
        sreq = self.isend(dest, sendbuf, send_off, send_nbytes, tag)
        yield sreq.event
        status = yield rreq.event
        return status

    def _check_rank(self, rank: int) -> int:
        if not 0 <= rank < self.size:
            raise CommunicatorError(f"rank {rank} out of range for size {self.size}")
        return rank

    # -- collectives ---------------------------------------------------------
    def _ctx(self) -> "CollCtx":
        self._coll_seq += 1
        return CollCtx(self, self._coll_seq)

    def _coll(self, op: str, gen, nbytes: int = 0):
        """Guard one collective call with the rank-failure machinery.

        Entry order: (1) ULFM semantics — a collective over a communicator
        with a known-dead member fails immediately with
        :class:`~repro.errors.RankFailed` (shrink and retry to make
        progress); (2) armed ``rank.stall``/``rank.crash`` rules fire, the
        per-(op, core) call index counting this rank's collective entries;
        (3) the call registers in the world's active-collective table so a
        peer dying mid-operation can deliver ``RankFailed`` here instead of
        leaving this rank hung.  ``nbytes`` is the op's primary payload size
        (what size-windowed rules match against).
        """
        world = self.world
        proc = self.proc
        wrank = proc.rank
        dead = world.dead_in(self.shared.world_ranks)
        if dead is not None:
            gen.close()
            raise RankFailed(dead, op)
        plan = world.machine.fault_plan
        if plan is not None:
            rule = plan.fire_rule("rank.stall", proc.core, nbytes)
            if rule is not None and rule.delay:
                tr = world.machine.tracer
                if tr.enabled:
                    tr.emit("rank.stall", rank=wrank, core=proc.core,
                            op=op, delay=rule.delay)
                else:
                    tr.tick("rank.stall")
                yield world.machine.sim.timeout(rule.delay)
            if plan.fire_rule("rank.crash", proc.core, nbytes) is not None:
                world.note_crash(wrank, op)
                gen.close()
                raise RankCrashed(wrank)
        world.enter_coll(wrank, op, self)
        try:
            result = yield from gen
            return result
        except RankFailed:
            # A peer died mid-operation: this rank's protocol children for
            # the aborted collective must not outlive it (they would pin
            # FIFO locks and slots forever, deadlocking the shrink-retry).
            world.abort_local(wrank, op)
            raise
        finally:
            world.exit_coll(wrank)

    def barrier(self):
        yield from self._coll("barrier", self.world.coll.barrier(self._ctx()))

    def bcast(self, buf: SimBuffer, offset: int, nbytes: int, root: int):
        self._check_rank(root)
        yield from self._coll(
            "bcast",
            self.world.coll.bcast(self._ctx(), buf, offset, nbytes, root),
            nbytes)

    def scatter(self, sendbuf: Optional[SimBuffer], recvbuf: SimBuffer,
                count: int, root: int):
        """Root's ``sendbuf`` holds ``size * count`` bytes; all receive ``count``."""
        self._check_rank(root)
        yield from self._coll(
            "scatter",
            self.world.coll.scatter(self._ctx(), sendbuf, recvbuf, count, root),
            count)

    def scatterv(self, sendbuf: Optional[SimBuffer], counts: list[int],
                 displs: list[int], recvbuf: SimBuffer, root: int):
        self._check_rank(root)
        self._check_v(counts, displs)
        yield from self._coll(
            "scatterv",
            self.world.coll.scatterv(self._ctx(), sendbuf, counts, displs,
                                     recvbuf, root),
            sum(counts))

    def gather(self, sendbuf: SimBuffer, recvbuf: Optional[SimBuffer],
               count: int, root: int):
        self._check_rank(root)
        yield from self._coll(
            "gather",
            self.world.coll.gather(self._ctx(), sendbuf, recvbuf, count, root),
            count)

    def gatherv(self, sendbuf: SimBuffer, recvbuf: Optional[SimBuffer],
                counts: list[int], displs: list[int], root: int):
        self._check_rank(root)
        self._check_v(counts, displs)
        yield from self._coll(
            "gatherv",
            self.world.coll.gatherv(self._ctx(), sendbuf, recvbuf, counts,
                                    displs, root),
            sum(counts))

    def allgather(self, sendbuf: SimBuffer, recvbuf: SimBuffer, count: int):
        yield from self._coll(
            "allgather",
            self.world.coll.allgather(self._ctx(), sendbuf, recvbuf, count),
            count)

    def allgatherv(self, sendbuf: SimBuffer, recvbuf: SimBuffer,
                   counts: list[int], displs: list[int]):
        self._check_v(counts, displs)
        yield from self._coll(
            "allgatherv",
            self.world.coll.allgatherv(self._ctx(), sendbuf, recvbuf, counts,
                                       displs),
            sum(counts))

    def alltoall(self, sendbuf: SimBuffer, recvbuf: SimBuffer, count: int):
        yield from self._coll(
            "alltoall",
            self.world.coll.alltoall(self._ctx(), sendbuf, recvbuf, count),
            count)

    def reduce(self, sendbuf: SimBuffer, recvbuf: Optional[SimBuffer],
               count: int, root: int, dtype: str = "u1", op: str = "sum"):
        """Element-wise reduction of ``count`` bytes viewed as ``dtype``."""
        self._check_rank(root)
        yield from self._coll(
            "reduce",
            self.world.coll.reduce(self._ctx(), sendbuf, recvbuf, count, root,
                                   dtype=dtype, op=op),
            count)

    def allreduce(self, sendbuf: SimBuffer, recvbuf: SimBuffer, count: int,
                  dtype: str = "u1", op: str = "sum"):
        yield from self._coll(
            "allreduce",
            self.world.coll.allreduce(self._ctx(), sendbuf, recvbuf, count,
                                      dtype=dtype, op=op),
            count)

    def alltoallv(self, sendbuf: SimBuffer, send_counts: list[int],
                  send_displs: list[int], recvbuf: SimBuffer,
                  recv_counts: list[int], recv_displs: list[int]):
        self._check_v(send_counts, send_displs)
        self._check_v(recv_counts, recv_displs)
        yield from self._coll(
            "alltoallv",
            self.world.coll.alltoallv(
                self._ctx(), sendbuf, send_counts, send_displs,
                recvbuf, recv_counts, recv_displs),
            sum(send_counts))

    # -- non-blocking collectives (MPI-3-style extension) ---------------------
    def _spawn_coll(self, gen, kind: str) -> Request:
        """Run a collective generator as a child process; returns a Request.

        Sequence numbers are taken at call time, so overlapped non-blocking
        collectives keep distinct internal tags as long as every rank issues
        them in the same order (the MPI requirement).
        """
        # ULFM check at call time only: a non-blocking collective over a
        # communicator with a dead member errors immediately.  Crash/stall
        # rules and mid-flight failure delivery apply to blocking
        # collectives (the _coll guard); the child still carries the owner
        # tag so a crash of *this* rank takes it down.
        dead = self.world.dead_in(self.shared.world_ranks)
        if dead is not None:
            gen.close()
            raise RankFailed(dead, kind)
        sim = self.proc.machine.sim
        req = Request(sim, kind)
        child = sim.process(gen, name=f"{kind}[{self.rank}]",
                            owner=self.proc.rank)

        def finish(ev):
            if ev.ok:
                req._finish(None)
            else:
                req.event.fail(ev.value)
                if isinstance(ev.value, (RankCrashed, RankFailed,
                                         ProcessKilled)):
                    # A crash-path failure may go unobserved (the waiting
                    # program itself died): don't let it abort the whole
                    # simulation when the event is processed.
                    req.event._defused = True

        child.add_callback(finish)
        return req

    def ibcast(self, buf: SimBuffer, offset: int, nbytes: int,
               root: int) -> Request:
        self._check_rank(root)
        return self._spawn_coll(
            self.world.coll.bcast(self._ctx(), buf, offset, nbytes, root),
            "ibcast")

    def igather(self, sendbuf: SimBuffer, recvbuf: Optional[SimBuffer],
                count: int, root: int) -> Request:
        self._check_rank(root)
        return self._spawn_coll(
            self.world.coll.gather(self._ctx(), sendbuf, recvbuf, count, root),
            "igather")

    def iallgather(self, sendbuf: SimBuffer, recvbuf: SimBuffer,
                   count: int) -> Request:
        return self._spawn_coll(
            self.world.coll.allgather(self._ctx(), sendbuf, recvbuf, count),
            "iallgather")

    def ialltoall(self, sendbuf: SimBuffer, recvbuf: SimBuffer,
                  count: int) -> Request:
        return self._spawn_coll(
            self.world.coll.alltoall(self._ctx(), sendbuf, recvbuf, count),
            "ialltoall")

    def ibarrier(self) -> Request:
        return self._spawn_coll(self.world.coll.barrier(self._ctx()),
                                "ibarrier")

    def _check_v(self, counts: list[int], displs: list[int]) -> None:
        if len(counts) != self.size or len(displs) != self.size:
            raise CommunicatorError(
                f"v-variant counts/displs must have {self.size} entries"
            )
        if any(c < 0 for c in counts):
            raise CommunicatorError("negative count in v-variant")

    # -- communicator management ------------------------------------------------
    def split(self, color: int, key: Optional[int] = None):
        """Collective split (generator); returns this rank's new :class:`Comm`.

        Ranks passing the same ``color`` land in the same new communicator,
        ordered by ``(key, old rank)``.  A ``color`` of ``None`` returns
        ``None`` for that rank (MPI_UNDEFINED).
        """
        ctx = self._ctx()
        key = self.rank if key is None else key
        mine = (color, key, self.rank)
        if self.rank == 0:
            entries = [mine]
            for r in range(1, self.size):
                obj, _st = yield from ctx.recv_obj(r, phase=0)
                entries.append(obj)
            groups: dict[int, list[tuple[int, int]]] = {}
            for c, k, r in entries:
                if c is not None:
                    groups.setdefault(c, []).append((k, r))
            plan: dict[int, tuple[int, list[int]]] = {}
            for c in sorted(groups):
                members = [r for _k, r in sorted(groups[c])]
                cid = self.world.next_cid()
                plan[c] = (cid, members)
            for r in range(1, self.size):
                yield from ctx.send_obj(r, plan, phase=1)
        else:
            yield from ctx.send_obj(0, mine, phase=0)
            plan, _st = yield from ctx.recv_obj(0, phase=1)
        if color is None:
            return None
        cid, members = plan[color]
        world_ranks = [self.world_rank(r) for r in members]
        shared = self.world.get_or_create_comm(cid, world_ranks)
        return Comm(shared, self.proc, members.index(self.rank))

    def dup(self):
        """Collective duplicate (generator); returns the new :class:`Comm`."""
        new = yield from self.split(color=0, key=self.rank)
        return new

    def shrink(self) -> "Comm":
        """This rank's view of the communicator rebuilt over survivors.

        ULFM ``MPI_Comm_shrink``: after catching
        :class:`~repro.errors.RankFailed`, call ``shrink()`` and retry the
        collective on the returned communicator.  Local and cost-free in
        the simulation (the world has global knowledge of the dead set);
        every survivor resolves to the same context id.
        """
        shared = self.world.shrink(self.shared)
        my_world = self.shared.world_ranks[self.rank]
        if my_world not in shared.world_ranks:
            raise CommunicatorError(
                f"rank {self.rank} (world {my_world}) is dead; "
                "cannot shrink from a failed rank")
        return Comm(shared, self.proc, shared.world_ranks.index(my_world))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Comm cid={self.cid} rank={self.rank}/{self.size}>"


class CollCtx:
    """Per-collective-call context handed to component implementations.

    Provides tag-isolated point-to-point helpers (``phase`` separates
    internal rounds), access to the machine substrate, and the shared-memory
    bulletin board used by KNEM collectives for cookie exchange.
    """

    __slots__ = ("comm", "seq", "phase_offset")

    def __init__(self, comm: Comm, seq: int, phase_offset: int = 0):
        self.comm = comm
        self.seq = seq
        self.phase_offset = phase_offset

    def sub(self, phase_offset: int) -> "CollCtx":
        """A view of this context with a phase namespace offset, so composed
        collectives (e.g. AllGather = Gather + Bcast) cannot collide tags."""
        return CollCtx(self.comm, self.seq, self.phase_offset + phase_offset)

    # -- shorthands ----------------------------------------------------------
    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def proc(self) -> "Proc":
        return self.comm.proc

    @property
    def machine(self):
        return self.comm.world.machine

    @property
    def stack(self):
        return self.comm.world.stack

    @property
    def cache(self) -> dict:
        return self.comm.shared.coll_cache

    def tag(self, phase: int = 0) -> tuple:
        return ("coll", self.seq, self.phase_offset + phase)

    # -- tag-scoped p2p --------------------------------------------------------
    def send(self, dest, buf, offset, nbytes, phase: int = 0):
        yield from self.comm.send(dest, buf, offset, nbytes, tag=self.tag(phase))

    def recv(self, source, buf, offset, nbytes, phase: int = 0):
        status = yield from self.comm.recv(source, buf, offset, nbytes,
                                           tag=self.tag(phase))
        return status

    def isend(self, dest, buf, offset, nbytes, phase: int = 0) -> Request:
        return self.comm.isend(dest, buf, offset, nbytes, tag=self.tag(phase))

    def irecv(self, source, buf, offset, nbytes, phase: int = 0) -> Request:
        return self.comm.irecv(source, buf, offset, nbytes, tag=self.tag(phase))

    def send_obj(self, dest, obj, phase: int = 0):
        yield from self.comm.send_obj(dest, obj, tag=self.tag(phase))

    def isend_obj(self, dest, obj, phase: int = 0) -> Request:
        return self.comm.isend_obj(dest, obj, tag=self.tag(phase))

    def recv_obj(self, source, phase: int = 0):
        result = yield from self.comm.recv_obj(source, tag=self.tag(phase))
        return result

    def sendrecv(self, dest, sendbuf, send_off, send_n, source, recvbuf,
                 recv_off, recv_n, phase: int = 0):
        status = yield from self.comm.sendrecv(
            dest, sendbuf, send_off, send_n, source, recvbuf, recv_off, recv_n,
            tag=self.tag(phase),
        )
        return status

    # -- shared-memory board + barrier helpers -------------------------------------
    def board_post(self, value: Any):
        """Publish a value on the communicator's shared board (one shm store)."""
        self.comm.shared.board[(self.seq, self.rank)] = value
        yield self.machine.sim.timeout(self.machine.shm.costs.mailbox_write)

    def board_get(self, rank: int) -> Any:
        """Read another rank's board entry (call only after a barrier)."""
        try:
            return self.comm.shared.board[(self.seq, rank)]
        except KeyError:
            raise CommunicatorError(
                f"board entry for rank {rank} (seq {self.seq}) not posted; "
                "synchronize with a barrier before board_get()"
            ) from None

    def dissemination_barrier(self, phase_base: int = 900):
        """Log2-round dissemination barrier over control messages."""
        n = self.size
        if n == 1:
            return
        round_no = 0
        dist = 1
        while dist < n:
            dest = (self.rank + dist) % n
            src = (self.rank - dist) % n
            sreq = self.comm.isend_obj(dest, None, tag=self.tag(phase_base + round_no))
            _obj, _st = yield from self.recv_obj(src, phase=phase_base + round_no)
            yield sreq.event
            dist <<= 1
            round_no += 1
