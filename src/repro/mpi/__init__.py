"""MPI-like runtime on the simulated machine.

This package provides the message-passing substrate the collective
components (``repro.coll``) are built on, mirroring the layering of Open MPI
that the paper describes in Figure 2:

- :mod:`repro.mpi.pml` — point-to-point messaging (eager / shared-memory
  rendezvous / KNEM rendezvous protocols) with MPI matching semantics;
- :mod:`repro.mpi.communicator` — :class:`Comm` (rank/size/split, p2p API,
  collective dispatch to the active component);
- :mod:`repro.mpi.runtime` — :class:`Machine` assembly and the :class:`Job`
  launcher that runs one simulated process per rank;
- :mod:`repro.mpi.stacks` — the five library configurations compared in the
  paper's evaluation (Tuned-SM, Tuned-KNEM, MPICH2-SM, MPICH2-KNEM,
  KNEM-Coll).

Typical use::

    from repro import Machine, Job, stacks

    machine = Machine.build("dancer")
    job = Job(machine, nprocs=8, stack=stacks.KNEM_COLL)

    def program(proc):
        buf = proc.alloc_array(1 << 20, dtype="u1")
        yield from proc.comm.bcast(buf.sim, 0, buf.sim.size, root=0)

    result = job.run(program)
"""

from repro.mpi.communicator import ANY_SOURCE, ANY_TAG, Comm
from repro.mpi.runtime import Job, JobResult, Machine, Proc
from repro.mpi.stacks import (
    ALL_STACKS,
    KNEM_COLL,
    MPICH2_KNEM,
    MPICH2_SM,
    TUNED_KNEM,
    TUNED_SM,
    Stack,
)
from repro.mpi.status import Request, Status

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "Machine",
    "Job",
    "JobResult",
    "Proc",
    "Status",
    "Request",
    "Stack",
    "TUNED_SM",
    "TUNED_KNEM",
    "MPICH2_SM",
    "MPICH2_KNEM",
    "KNEM_COLL",
    "ALL_STACKS",
]
