"""Point-to-point messaging layer (PML).

Protocol selection per message, mirroring the transports the paper compares:

========================  =====================================================
size / kind               protocol
========================  =====================================================
object or <= inline       **inline eager** — payload rides in the envelope
                          (a cache-line write into the peer's mailbox);
<= eager_limit            **eager** — sender copies into a shared temp buffer
                          homed on the receiver's domain, receiver copies out
                          on match (the classic double copy);
>  eager_limit, SM BTL    **SM rendezvous** — pipelined double copy through
                          the per-pair FIFO (fragment-sized slots, slot
                          backpressure, sender+receiver overlap);
>= knem_threshold and     **KNEM rendezvous** — sender registers the buffer,
   the stack has the          passes the cookie out-of-band, the *receiver*
   SM/KNEM BTL                performs one in-kernel copy, FIN, deregister.
========================  =====================================================

Note the KNEM point-to-point protocol registers the send buffer *per
message* — sending the same buffer to N peers costs N registrations and N
cookie exchanges.  That is precisely the overhead the paper's collective
component eliminates with persistent regions (Section III-A), and our
KNEM-Coll bypasses this layer for data movement exactly like the real one.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, TYPE_CHECKING

import numpy as np

from repro.errors import (
    FaultInjected,
    MpiError,
    ProcessKilled,
    RankCrashed,
    RankFailed,
    TruncationError,
)
from repro.hardware.memory import SimBuffer
from repro.kernel.knem import PROT_READ
from repro.mpi.envelope import EAGER, FIN, RETX, RTS_KNEM, RTS_SM, Envelope, make_fin
from repro.mpi.matching import ANY_SOURCE, ANY_TAG, MatchEngine, PostedRecv
from repro.mpi.status import Request, Status

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.runtime import Proc, World

__all__ = ["PmlEndpoint"]

_NO_OBJECT = object()

#: Nominal wire size charged for an object-mode (control) message.
OBJECT_NBYTES = 8

#: Happens-before tokens pairing ``mpi.send``/``mpi.recv`` trace records
#: (one per point-to-point message, machine-wide).
_hb_seq = itertools.count(1)


class PmlEndpoint:
    """One per process: owns the mailbox, matching state, and progress loop."""

    def __init__(self, proc: "Proc", world: "World"):
        self.proc = proc
        self.world = world
        self.machine = world.machine
        self.sim = world.machine.sim
        self.stack = world.stack
        self.mailbox = world.machine.shm.mailbox(("pml", proc.rank), proc.core)
        self.engines: dict[int, MatchEngine] = {}
        self._fin_waiters: dict[int, Any] = {}
        # Receives parked on a NACKed KNEM rendezvous, keyed by the sender's
        # envelope seq; resumed when the RETX retransmission arrives.
        self._retx_waiters: dict[int, Any] = {}
        # Per-destination injection ordering: MPI forbids messages between
        # one (sender, receiver, communicator) pair from overtaking, but
        # concurrent isend protocol engines could otherwise post envelopes
        # out of program order (e.g. a small segment finishing registration
        # before a large one).  Tickets are taken synchronously in program
        # order and chained.
        self._send_order: dict[int, Any] = {}
        # A single-threaded MPI process performs one memcpy/ioctl at a time:
        # concurrent protocol engines (isends, matched deliveries) interleave
        # their copies on this per-process CPU lock rather than running as
        # genuinely parallel streams.
        from repro.simtime.primitives import Semaphore

        self.cpu = Semaphore(world.machine.sim, 1, name=f"cpu[{proc.rank}]")
        self.sent_messages = 0
        self.received_messages = 0
        self.sim.process(self._progress(), name=f"pml[{proc.rank}]",
                         daemon=True, owner=proc.rank)

    def _cpu_copy(self, event_factory):
        """Run one copy (given as a zero-arg factory returning the completion
        event) while holding this process's CPU."""
        yield self.cpu.acquire()
        try:
            yield event_factory()
        finally:
            self.cpu.release()

    def _take_ticket(self, dest_world: int):
        prev = self._send_order.get(dest_world)
        mine = self.sim.event(name=f"sendorder[{self.proc.rank}->{dest_world}]")
        self._send_order[dest_world] = mine
        return prev, mine

    # ------------------------------------------------------------------ send
    def send(
        self,
        cid: int,
        src_rank: int,
        dest_world: int,
        tag: Any,
        buf: Optional[SimBuffer] = None,
        offset: int = 0,
        nbytes: int = 0,
        obj: Any = _NO_OBJECT,
    ):
        """Build the send protocol generator.

        The per-destination ordering ticket is taken *here*, synchronously,
        so calls made in program order inject envelopes in program order
        even when the protocols themselves run concurrently (isend).  The
        ``mpi.send`` happens-before trace record is emitted here too, so it
        lands at the *call site* in the sender's program order (isend
        protocols run later, as child processes).
        """
        ticket = self._take_ticket(dest_world)
        hb = next(_hb_seq)
        tr = self.machine.tracer
        if tr.enabled:
            tr.emit("mpi.send", src=self.proc.rank, dst=dest_world, hb=hb)
        else:
            tr.tick("mpi.send")
        return self._send_impl(ticket, cid, src_rank, dest_world, tag, buf,
                               offset, nbytes, obj, hb)

    def _retire_ticket(self, ticket) -> None:
        """Vacate an ordering slot whose send died before posting.

        A killed send (rank crash, collective abort) that never reached
        :meth:`_post_ordered` would otherwise gate every later send to the
        same peer forever.  The slot is released only once the predecessor
        has posted, so live sends can never overtake each other through a
        dead one.
        """
        prev, mine = ticket
        if mine.triggered:
            return
        if prev is None or prev.processed:
            mine.succeed(None)
        else:
            prev.add_callback(
                lambda _ev: None if mine.triggered else mine.succeed(None))

    def _send_impl(self, ticket, cid, src_rank, dest_world, tag, buf, offset,
                   nbytes, obj, hb):
        """Blocking send (generator).  Object mode when ``obj`` is given."""
        self.sent_messages += 1
        try:
            yield from self._send_body(ticket, cid, src_rank, dest_world, tag,
                                       buf, offset, nbytes, obj, hb)
        finally:
            # Normal completion already posted (ticket triggered, no-op);
            # an unwound send vacates its ordering slot instead.
            self._retire_ticket(ticket)

    def _send_body(self, ticket, cid, src_rank, dest_world, tag, buf, offset,
                   nbytes, obj, hb):
        if obj is not _NO_OBJECT:
            yield self.sim.timeout(self.stack.sw_send_eager)
            yield from self._send_inline(ticket, cid, src_rank, dest_world,
                                         tag, OBJECT_NBYTES, obj,
                                         is_object=True, hb=hb)
            self._emit_send_done(hb)
            return
        if buf is None:
            raise MpiError("buffer send requires a SimBuffer")
        buf.check_range(offset, nbytes)
        if nbytes <= self.stack.eager_limit:
            yield self.sim.timeout(self.stack.sw_send_eager)
        else:
            yield self.sim.timeout(self.stack.sw_send_rndv)
        if nbytes <= self.stack.inline_limit:
            payload = None
            if buf.backed:
                payload = bytes(buf.data[offset: offset + nbytes])
            yield from self._send_inline(ticket, cid, src_rank, dest_world,
                                         tag, nbytes, payload, is_object=False,
                                         hb=hb)
        elif nbytes <= self.stack.eager_limit:
            yield from self._send_eager(ticket, cid, src_rank, dest_world,
                                        tag, buf, offset, nbytes, hb)
        elif self.stack.use_knem_btl and nbytes >= self.stack.knem_threshold:
            yield from self._send_knem(ticket, cid, src_rank, dest_world,
                                       tag, buf, offset, nbytes, hb)
        else:
            yield from self._send_sm(ticket, cid, src_rank, dest_world, tag,
                                     buf, offset, nbytes, hb)
        self._emit_send_done(hb)

    def _emit_send_done(self, hb: int) -> None:
        tr = self.machine.tracer
        if tr.enabled:
            tr.emit("mpi.send_done", src=self.proc.rank, hb=hb)
        else:
            tr.tick("mpi.send_done")

    def _post_ordered(self, ticket, peer: "PmlEndpoint", env: Envelope):
        """Post the envelope once every earlier send to this peer posted."""
        prev, mine = ticket
        if prev is not None and not prev.processed:
            yield prev
        # HB edge payload: the envelope carries the sender's history up to
        # this instant — notably a KNEM region registered by the protocol
        # *after* the call-site ``mpi.send`` record (the cookie rides in this
        # very envelope, so it is visible to the matching receiver).
        tr = self.machine.tracer
        if tr.enabled:
            tr.emit("mpi.inject", src=self.proc.rank, hb=env.hb)
        else:
            tr.tick("mpi.inject")
        yield from peer.mailbox.post(self.proc.core, env)
        mine.succeed(None)

    def _send_inline(self, ticket, cid, src_rank, dest_world, tag, nbytes,
                     payload, is_object, hb=-1):
        env = Envelope(kind=EAGER, cid=cid, src=src_rank, tag=tag,
                       nbytes=nbytes, payload=payload, reply_to=self.proc.rank,
                       is_object=is_object, hb=hb)
        peer = self.world.endpoint(dest_world)
        yield from self._post_ordered(ticket, peer, env)

    def _send_eager(self, ticket, cid, src_rank, dest_world, tag, buf,
                    offset, nbytes, hb=-1):
        peer = self.world.endpoint(dest_world)
        temp = self.machine.mem.alloc(
            nbytes,
            self.machine.spec.core_domain(peer.proc.core),
            label=f"eager[{self.proc.rank}->{dest_world}]",
            backed=buf.backed,
        )
        yield from self._cpu_copy(lambda: self.machine.mem.copy(
            self.proc.core, buf, offset, temp, 0, nbytes, label="eager-in"))
        env = Envelope(kind=EAGER, cid=cid, src=src_rank, tag=tag,
                       nbytes=nbytes, carrier=temp, reply_to=self.proc.rank,
                       hb=hb)
        yield from self._post_ordered(ticket, peer, env)

    def _send_sm(self, ticket, cid, src_rank, dest_world, tag, buf, offset,
                 nbytes, hb=-1):
        peer = self.world.endpoint(dest_world)
        fifo = self.machine.shm.fifo(
            self.proc.core, peer.proc.core,
            fragment_size=self.stack.fifo_fragment,
            n_slots=self.stack.fifo_slots,
        )
        # One message at a time per pair: fragments of interleaved messages
        # would be indistinguishable in the slot stream.
        yield fifo.tx_lock.acquire()
        epoch = fifo.tx_lock.epoch
        try:
            env = Envelope(kind=RTS_SM, cid=cid, src=src_rank, tag=tag,
                           nbytes=nbytes, carrier=fifo, reply_to=self.proc.rank,
                           hb=hb)
            fin = self.sim.event(name=f"fin:{env.seq}")
            self._fin_waiters[env.seq] = fin
            yield from self._post_ordered(ticket, peer, env)
            done = 0
            while done < nbytes:
                frag = min(self.stack.fifo_fragment, nbytes - done)
                slot = yield fifo.acquire_slot()
                if fifo.sanitizer is not None:
                    fifo.sanitizer.note_acquire(fifo, slot)
                yield from self._cpu_copy(lambda done=done, slot=slot, frag=frag:
                                          self.machine.mem.copy(
                    self.proc.core, buf, offset + done,
                    fifo.buffer, fifo.slot_offset(slot), frag, label="fifo-in",
                ))
                fifo.publish(slot, frag)
                done += frag
            # Completion when the receiver drained the last fragment, so the
            # FIFO is reusable by the next sender immediately afterwards.
            yield fin
        finally:
            # A rank failure may have force-reclaimed this FIFO while we
            # held the lock; the unit was already returned by reset() then,
            # and releasing it again would over-fill the semaphore.
            if fifo.tx_lock.epoch == epoch:
                fifo.tx_lock.release()

    def _send_knem(self, ticket, cid, src_rank, dest_world, tag, buf, offset,
                   nbytes, hb=-1):
        knem = self.machine.knem
        if knem.health.disqualified:
            yield from self._send_sm(ticket, cid, src_rank, dest_world, tag,
                                     buf, offset, nbytes, hb)
            return
        cookie = None
        for _attempt in (0, 1):
            try:
                cookie = yield from knem.create_region(
                    self.proc.core, buf, offset, nbytes, PROT_READ)
                break
            except FaultInjected:
                continue
        if cookie is None:
            # Registration failed twice: degrade this message to the
            # copy-in/copy-out path.  The same ordering ticket is reused,
            # so the fallback cannot overtake earlier sends to this peer.
            knem.health.note_failure("p2p-register", self.proc.core)
            yield from self._send_sm(ticket, cid, src_rank, dest_world, tag,
                                     buf, offset, nbytes, hb)
            return
        knem.health.note_success()
        try:
            env = Envelope(kind=RTS_KNEM, cid=cid, src=src_rank, tag=tag,
                           nbytes=nbytes, payload=cookie,
                           reply_to=self.proc.rank, hb=hb)
            fin = self.sim.event(name=f"fin:{env.seq}")
            self._fin_waiters[env.seq] = fin
            peer = self.world.endpoint(dest_world)
            yield from self._post_ordered(ticket, peer, env)
            nacked = yield fin
            yield from knem.destroy_region_safe(self.proc.core, cookie)
        finally:
            # No-op after the destroy above; reclaims the region when the
            # job aborts while this send is in flight (generator closed).
            knem.reclaim(self.proc.core, cookie)
        if nacked:
            # The receiver's in-kernel copy failed: retransmit eager-style
            # through a shared temp buffer.  The RETX bypasses matching (the
            # receiver holds its posted recv open, keyed by our seq), so the
            # FIFO tx ordering invariant is untouched.
            temp = self.machine.mem.alloc(
                nbytes,
                self.machine.spec.core_domain(peer.proc.core),
                label=f"retx[{self.proc.rank}->{dest_world}]",
                backed=buf.backed,
            )
            yield from self._cpu_copy(lambda: self.machine.mem.copy(
                self.proc.core, buf, offset, temp, 0, nbytes,
                label="retx-in"))
            retx = Envelope(kind=RETX, cid=cid, src=src_rank, tag=tag,
                            nbytes=nbytes, payload=env.seq, carrier=temp,
                            reply_to=self.proc.rank, hb=hb)
            yield from peer.mailbox.post(self.proc.core, retx)

    # ------------------------------------------------------------------ recv
    def recv(
        self,
        cid: int,
        source: int,
        tag: Any,
        buf: Optional[SimBuffer] = None,
        offset: int = 0,
        nbytes: int = 0,
        want_object: bool = False,
    ):
        """Blocking receive (generator); returns :class:`Status`."""
        req = self.post_recv(cid, source, tag, buf, offset, nbytes, want_object)
        status = yield req.event
        return status

    def post_recv(self, cid, source, tag, buf=None, offset=0, nbytes=0,
                  want_object=False) -> Request:
        """Non-blocking receive post; returns the request."""
        req = Request(self.sim, "recv")
        src_world = (None if source == ANY_SOURCE
                     else self.world.comm_world_rank(cid, source))
        tr = self.machine.tracer
        if tr.enabled:
            tr.emit("mpi.recv_post", rank=self.proc.rank,
                    src=src_world, req=req.id)
        else:
            tr.tick("mpi.recv_post")
        posted = PostedRecv(source, tag, buf, offset, nbytes, req, want_object)
        engine = self.engines.setdefault(cid, MatchEngine())
        env = engine.post(posted)
        if env is not None:
            self.sim.process(self._deliver(env, posted),
                             name=f"deliver[{self.proc.rank}]",
                             owner=self.proc.rank)
        return req

    def isend(self, cid, src_rank, dest_world, tag, buf=None, offset=0,
              nbytes=0, obj: Any = _NO_OBJECT) -> Request:
        """Non-blocking send: runs the send protocol as a child process."""
        req = Request(self.sim, "send")
        proc = self.sim.process(
            self.send(cid, src_rank, dest_world, tag, buf, offset, nbytes, obj),
            name=f"isend[{self.proc.rank}->{dest_world}]",
            owner=self.proc.rank,
        )

        def finish(ev):
            if ev.ok:
                req._finish(None)
            else:
                req.event.fail(ev.value)
                if isinstance(ev.value, (RankCrashed, RankFailed,
                                         ProcessKilled)):
                    # Crash-path failure: the program waiting on this
                    # request may itself be dead or aborted, so nobody is
                    # guaranteed to observe the event — defuse it.
                    req.event._defused = True

        proc.add_callback(finish)
        return req

    # ---------------------------------------------------------------- engine
    def _progress(self):
        """The progress daemon: routes envelopes arriving in the mailbox."""
        while True:
            env: Envelope = yield self.mailbox.recv()
            if env.kind == FIN:
                waiter = self._fin_waiters.pop(env.payload, None)
                if waiter is None:
                    raise MpiError(f"unmatched FIN for send seq {env.payload}")
                # HB edge: the receiver's copy completion happens-before
                # anything the sender does after its blocking send returns.
                tr = self.machine.tracer
                if tr.enabled:
                    tr.emit("mpi.fin_recv", rank=self.proc.rank,
                            seq=env.payload)
                else:
                    tr.tick("mpi.fin_recv")
                waiter.succeed(env.nack)
                continue
            if env.kind == RETX:
                waiter = self._retx_waiters.pop(env.payload, None)
                if waiter is None:
                    raise MpiError(f"unmatched RETX for send seq {env.payload}")
                waiter.succeed(env)
                continue
            engine = self.engines.setdefault(env.cid, MatchEngine())
            posted = engine.incoming(env)
            if posted is not None:
                self.sim.process(self._deliver(env, posted),
                                 name=f"deliver[{self.proc.rank}]")

    def _deliver(self, env: Envelope, posted: PostedRecv):
        """Receiver-side data movement for one matched message."""
        self.received_messages += 1
        # The HB join is recorded at *match* time: the envelope (and with it
        # any out-of-band cookie) has reached this rank, so everything the
        # sender did before `mpi.send` is now visible here — including to
        # the in-kernel copy this delivery may be about to perform.
        tr = self.machine.tracer
        if tr.enabled:
            tr.emit("mpi.recv", rank=self.proc.rank,
                    src_comm=env.src, hb=env.hb,
                    req=posted.request.id)
        else:
            tr.tick("mpi.recv")
        if not env.is_object and posted.buf is not None and env.nbytes > posted.nbytes:
            exc = TruncationError(
                f"rank {self.proc.rank}: incoming {env.nbytes}B message "
                f"(src={env.src}, tag={env.tag!r}) exceeds posted {posted.nbytes}B"
            )
            posted.request.event.fail(exc)
            return
        status = Status(source=env.src, tag=env.tag, nbytes=env.nbytes,
                        payload=env.payload if env.is_object else None)
        yield self.sim.timeout(self.stack.sw_recv_eager if env.kind == EAGER
                               else self.stack.sw_recv_rndv)
        if env.kind == EAGER:
            if env.is_object:
                pass  # control message: payload delivered via status
            elif env.carrier is None:
                if (posted.buf is not None and posted.buf.backed
                        and env.payload is not None):
                    posted.buf.data[posted.offset: posted.offset + env.nbytes] = \
                        np.frombuffer(env.payload, dtype=np.uint8)
            else:
                yield from self._cpu_copy(lambda: self.machine.mem.copy(
                    self.proc.core, env.carrier, 0, posted.buf, posted.offset,
                    env.nbytes, label="eager-out",
                ))
        elif env.kind == RTS_SM:
            fifo = env.carrier
            done = 0
            while done < env.nbytes:
                slot, frag, _meta = yield fifo.next_full()
                yield from self._cpu_copy(lambda done=done, slot=slot, frag=frag:
                                          self.machine.mem.copy(
                    self.proc.core, fifo.buffer, fifo.slot_offset(slot),
                    posted.buf, posted.offset + done, frag, label="fifo-out",
                ))
                fifo.release_slot(slot)
                done += frag
            self._send_fin(env)
        elif env.kind == RTS_KNEM:
            knem = self.machine.knem
            copied = False
            yield self.cpu.acquire()
            try:
                for _attempt in (0, 1):
                    try:
                        yield from knem.copy(
                            self.proc.core, env.payload, 0, posted.buf,
                            posted.offset, env.nbytes, write=False,
                        )
                        copied = True
                        break
                    except FaultInjected:
                        continue
            finally:
                self.cpu.release()
            if copied:
                knem.health.note_success()
                self._send_fin(env)
            else:
                # The in-kernel copy failed twice: NACK the FIN so the
                # sender deregisters and retransmits through shared memory,
                # then park until that RETX arrives.
                knem.health.note_failure("p2p-copy", self.proc.core)
                waiter = self.sim.event(name=f"retx:{env.seq}")
                self._retx_waiters[env.seq] = waiter
                self._send_fin(env, nack=True)
                retx = yield waiter
                yield from self._cpu_copy(lambda: self.machine.mem.copy(
                    self.proc.core, retx.carrier, 0, posted.buf,
                    posted.offset, env.nbytes, label="retx-out",
                ))
        else:  # pragma: no cover - defensive
            raise MpiError(f"unknown envelope kind {env.kind!r}")
        posted.request._finish(status)

    def _send_fin(self, env: Envelope, nack: bool = False) -> None:
        tr = self.machine.tracer
        if tr.enabled:
            tr.emit("mpi.fin_send", rank=self.proc.rank, seq=env.seq)
        else:
            tr.tick("mpi.fin_send")
        fin = make_fin(env.cid, env.src, env.seq, nack=nack)
        sender = self.world.endpoint(env.reply_to)
        sender.mailbox.post_nowait(self.proc.core, fin)
