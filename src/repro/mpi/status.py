"""Receive status and request objects."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional

from repro.simtime.core import Event, Simulator

__all__ = ["Status", "Request"]


@dataclass(frozen=True)
class Status:
    """Completion information of a receive (MPI_Status).

    ``payload`` carries the Python object of an object-mode message
    (:meth:`~repro.mpi.communicator.Comm.send_obj`), ``None`` for buffer
    messages.
    """

    source: int
    tag: Any
    nbytes: int
    payload: Any = None


class Request:
    """Handle for a pending point-to-point operation (MPI_Request).

    ``event`` fires with the :class:`Status` (receives) or ``None`` (sends).
    ``wait()`` from process context::

        status = yield req.event
    """

    _ids = itertools.count(1)

    __slots__ = ("id", "event", "kind", "_status")

    def __init__(self, sim: Simulator, kind: str):
        self.id = next(Request._ids)
        self.event: Event = Event(sim, name=f"req{self.id}:{kind}")
        self.kind = kind
        self._status: Optional[Status] = None

    @property
    def complete(self) -> bool:
        return self.event.triggered

    @property
    def status(self) -> Optional[Status]:
        return self._status

    def _finish(self, status: Optional[Status] = None) -> None:
        self._status = status
        self.event.succeed(status)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.complete else "pending"
        return f"<Request#{self.id} {self.kind} {state}>"
