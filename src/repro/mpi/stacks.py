"""Library configurations ("stacks") — the five setups of Section VI-A.

A :class:`Stack` bundles a point-to-point transport configuration with a
collective component name and tuning:

==============  ==========================  =================================
stack           collectives                 large-message transport
==============  ==========================  =================================
Tuned-SM        Open MPI *tuned*            copy-in/copy-out FIFO (SM BTL)
Tuned-KNEM      Open MPI *tuned*            KNEM point-to-point (SM/KNEM BTL)
MPICH2-SM       MPICH2 algorithm set        Nemesis double copy
MPICH2-KNEM     MPICH2 algorithm set        KNEM LMT (>= 64 KB)
KNEM-Coll       the paper's component       direct KNEM region calls
==============  ==========================  =================================

KNEM-Coll delegates messages below 16 KB and unimplemented operations to the
regular point-to-point algorithms, like the real component (Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.coll.tuning import DEFAULT_TUNING, Tuning
from repro.errors import MpiError
from repro.units import KiB

__all__ = [
    "Stack",
    "TUNED_SM",
    "TUNED_KNEM",
    "MPICH2_SM",
    "MPICH2_KNEM",
    "KNEM_COLL",
    "KNEM_COLL_STRICT",
    "BASIC_SM",
    "SM_TREE",
    "ALL_STACKS",
    "PAPER_STACKS",
]


@dataclass(frozen=True)
class Stack:
    """One MPI library configuration (see module docstring)."""

    name: str
    coll: str
    use_knem_btl: bool
    inline_limit: int = 64
    eager_limit: int = 4 * KiB
    knem_threshold: int = 16 * KiB
    fifo_fragment: int = 32 * KiB
    fifo_slots: int = 8
    #: per-message MPI software costs (matching, protocol state machine,
    #: progression polling) — charged to the sender at injection and to the
    #: receiver at match/delivery.  Rendezvous-class messages carry the full
    #: protocol; eager/inline messages a slim fast path.
    sw_send_eager: float = 250e-9
    sw_recv_eager: float = 350e-9
    sw_send_rndv: float = 1.2e-6
    sw_recv_rndv: float = 1.5e-6
    tuning: Tuning = field(default_factory=lambda: DEFAULT_TUNING)

    def __post_init__(self) -> None:
        if self.inline_limit < 0 or self.eager_limit < self.inline_limit:
            raise MpiError("need 0 <= inline_limit <= eager_limit")
        if self.fifo_fragment <= 0 or self.fifo_slots <= 0:
            raise MpiError("FIFO fragment size and slot count must be positive")
        if self.use_knem_btl and self.knem_threshold <= self.eager_limit:
            raise MpiError("knem_threshold must exceed eager_limit")

    def with_tuning(self, name: str | None = None, **changes) -> "Stack":
        """A copy of this stack with tuning fields replaced (ablations).

        Pass ``name`` when the variant appears next to the original in one
        sweep — series are keyed by stack name.
        """
        new = replace(self, tuning=replace(self.tuning, **changes))
        if name is not None:
            new = replace(new, name=name)
        return new


#: Open MPI tuned collectives over the copy-in/copy-out SM BTL (the default
#: Open MPI setup the paper calls Tuned-SM).
TUNED_SM = Stack(name="Tuned-SM", coll="tuned", use_knem_btl=False)

#: Open MPI tuned collectives over KNEM point-to-point (Tuned-KNEM).
TUNED_KNEM = Stack(name="Tuned-KNEM", coll="tuned", use_knem_btl=True,
                   knem_threshold=16 * KiB)

#: MPICH2 with Nemesis shared memory (MPICH2-SM).
MPICH2_SM = Stack(name="MPICH2-SM", coll="mpich2", use_knem_btl=False,
                  eager_limit=8 * KiB, fifo_fragment=32 * KiB)

#: MPICH2 with the KNEM LMT for large messages (MPICH2-KNEM).  MPICH2 1.3's
#: DMA LMT engages KNEM at 64 KB.
MPICH2_KNEM = Stack(name="MPICH2-KNEM", coll="mpich2", use_knem_btl=True,
                    eager_limit=8 * KiB, knem_threshold=64 * KiB)

#: The paper's contribution: the KNEM collective component (KNEM-Coll).
#: Point-to-point (used for delegation below 16 KB and for out-of-band
#: control) runs over the SM/KNEM BTL like Open MPI v1.5's.
KNEM_COLL = Stack(name="KNEM-Coll", coll="knem", use_knem_btl=True,
                  knem_threshold=16 * KiB)

#: KNEM-Coll with a hair-trigger health policy: the first double failure of
#: a KNEM ioctl disqualifies the device for the rest of the job.  Used by
#: the fault-injection tests to exercise job-wide degradation quickly.
KNEM_COLL_STRICT = KNEM_COLL.with_tuning(name="KNEM-Coll-strict",
                                         knem_fail_limit=1)

#: Reference linear algorithms over the SM BTL (correctness baseline).
BASIC_SM = Stack(name="Basic-SM", coll="basic", use_knem_btl=False)

#: Graham-style shared-memory fan-in/fan-out trees (related-work baseline).
SM_TREE = Stack(name="SM-Tree", coll="smtree", use_knem_btl=False)

#: The five configurations of every figure in Section VI.
PAPER_STACKS = (TUNED_SM, TUNED_KNEM, MPICH2_SM, MPICH2_KNEM, KNEM_COLL)

ALL_STACKS = PAPER_STACKS + (BASIC_SM, SM_TREE)
