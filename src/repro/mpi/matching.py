"""MPI message matching: posted-receive and unexpected-message queues.

Semantics follow the MPI standard:

- a posted receive names ``(source, tag)``, either of which may be the
  wildcard (:data:`ANY_SOURCE` / :data:`ANY_TAG`);
- an arriving envelope matches the **oldest** posted receive it satisfies;
- a receive posted later matches the **oldest** unexpected envelope it
  satisfies;
- per (sender, communicator), envelopes arrive in send order, so the pair
  of FIFO scans above yields MPI's non-overtaking guarantee.

One :class:`MatchEngine` exists per (process, communicator).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.mpi.envelope import Envelope
from repro.mpi.status import Request

__all__ = ["ANY_SOURCE", "ANY_TAG", "PostedRecv", "MatchEngine"]

ANY_SOURCE = -1
ANY_TAG: Any = object()  # sentinel; never equal to a user tag


class PostedRecv:
    """A receive waiting for its envelope."""

    __slots__ = ("source", "tag", "buf", "offset", "nbytes", "request", "want_object")

    def __init__(self, source: int, tag: Any, buf, offset: int, nbytes: int,
                 request: Request, want_object: bool = False):
        self.source = source
        self.tag = tag
        self.buf = buf
        self.offset = offset
        self.nbytes = nbytes
        self.request = request
        self.want_object = want_object

    def accepts(self, env: Envelope) -> bool:
        return env.matches(self.source, self.tag, ANY_SOURCE, ANY_TAG)


class MatchEngine:
    """Queues + matching for one communicator on one process."""

    def __init__(self) -> None:
        self._posted: Deque[PostedRecv] = deque()
        self._unexpected: Deque[Envelope] = deque()
        self.matched = 0

    # -- arrival path -------------------------------------------------------
    def incoming(self, env: Envelope) -> Optional[PostedRecv]:
        """Match an arriving envelope; queues it as unexpected otherwise."""
        for i, recv in enumerate(self._posted):
            if recv.accepts(env):
                del self._posted[i]
                self.matched += 1
                return recv
        self._unexpected.append(env)
        return None

    # -- post path -------------------------------------------------------------
    def post(self, recv: PostedRecv) -> Optional[Envelope]:
        """Post a receive; returns the unexpected envelope it matches, if any."""
        for i, env in enumerate(self._unexpected):
            if recv.accepts(env):
                del self._unexpected[i]
                self.matched += 1
                return env
        self._posted.append(recv)
        return None

    # -- introspection -----------------------------------------------------------
    @property
    def posted_count(self) -> int:
        return len(self._posted)

    @property
    def unexpected_count(self) -> int:
        return len(self._unexpected)

    def idle(self) -> bool:
        return not self._posted and not self._unexpected
