"""Machine assembly and the job launcher.

- :class:`Machine` wires a simulator, memory system, cache model, shared
  memory world, KNEM driver, topology tree, and distance matrix together.
- :class:`Job` launches one simulated MPI process per rank (bound to cores
  per the binding policy), runs a program generator on each, and reports
  per-rank results and timings.

A program is a function ``program(proc, *args)`` returning a generator::

    def program(proc):
        buf = proc.alloc_array(count, dtype="u4")
        buf.array[:] = proc.rank
        yield from proc.comm.allgather(out.sim, buf.sim, count * 4)
        return proc.now
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

import numpy as np

from repro.errors import MpiError
from repro.faults.plan import FaultPlan
from repro.hardware.machines import get_machine
from repro.hardware.memory import MemorySystem, SimBuffer
from repro.hardware.spec import MachineSpec
from repro.kernel.costs import KernelCosts
from repro.kernel.knem import KnemDriver
from repro.kernel.shm import ShmWorld
from repro.mpi.communicator import Comm, CommShared
from repro.mpi.pml import PmlEndpoint
from repro.mpi.stacks import Stack, TUNED_SM
from repro.simtime.core import Simulator
from repro.simtime.trace import Tracer
from repro.topology.binding import bind_ranks
from repro.topology.distance import DistanceMatrix
from repro.topology.objects import Topology

__all__ = ["Machine", "Proc", "World", "Job", "JobResult", "ArrayBuffer"]


class Machine:
    """A fully assembled simulated machine (hardware + kernel services)."""

    def __init__(self, spec: MachineSpec, costs: Optional[KernelCosts] = None,
                 trace: bool = False):
        self.spec = spec
        self.sim = Simulator()
        self.tracer = Tracer(clock=lambda: self.sim.now, enabled=trace)
        self.mem = MemorySystem(self.sim, spec, tracer=self.tracer)
        self.costs = costs or KernelCosts()
        self.shm = ShmWorld(self.sim, spec, self.mem, costs=self.costs)
        self.knem = KnemDriver(self.sim, self.mem, costs=self.costs,
                               tracer=self.tracer)
        self.topology = Topology(spec)
        self.distances = DistanceMatrix(self.topology)

    @classmethod
    def build(cls, spec_or_name: Union[str, MachineSpec],
              costs: Optional[KernelCosts] = None, trace: bool = False) -> "Machine":
        """Build from a paper machine name (``"ig"``) or a custom spec."""
        spec = (get_machine(spec_or_name)
                if isinstance(spec_or_name, str) else spec_or_name)
        return cls(spec, costs=costs, trace=trace)

    @property
    def now(self) -> float:
        return self.sim.now

    def arm_faults(self, plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
        """Arm a fault schedule on this machine's kernel services.

        Hooks the KNEM driver (register/copy/destroy) and the shared-memory
        FIFO slot path.  Pass ``None`` to disarm.  Returns the plan so call
        sites can keep the handle for its injection counters.
        """
        self.knem.fault_plan = plan
        self.shm.arm_faults(plan)
        return plan

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Machine {self.spec.name} t={self.sim.now:.6f}>"


class ArrayBuffer:
    """A numpy array paired with its :class:`SimBuffer` home."""

    __slots__ = ("array", "sim")

    def __init__(self, array: np.ndarray, sim_buffer: SimBuffer):
        self.array = array
        self.sim = sim_buffer

    @property
    def nbytes(self) -> int:
        return self.sim.size


class Proc:
    """One simulated MPI process: rank, core binding, allocation helpers."""

    def __init__(self, world: "World", rank: int, core: int):
        self.world = world
        self.rank = rank
        self.core = core
        self.machine = world.machine
        self.domain = world.machine.spec.core_domain(core)
        self.pml = PmlEndpoint(self, world)
        self.comm: Comm = None  # type: ignore[assignment]  # set by World

    # -- memory ---------------------------------------------------------
    def alloc(self, nbytes: int, label: str = "", backed: bool = True) -> SimBuffer:
        """Allocate ``nbytes`` on this process's NUMA domain (first touch)."""
        return self.machine.mem.alloc(
            nbytes, self.domain, label=label or f"r{self.rank}", backed=backed
        )

    def alloc_array(self, count: int, dtype: Any = "u1",
                    label: str = "") -> ArrayBuffer:
        """Allocate a typed numpy array homed on this process's domain."""
        array = np.zeros(count, dtype=dtype)
        buf = self.machine.mem.alloc(
            array.nbytes, self.domain, label=label or f"r{self.rank}", array=array
        )
        return ArrayBuffer(array, buf)

    def wrap(self, array: np.ndarray, label: str = "") -> ArrayBuffer:
        """Copy a numpy array into a buffer owned by this process.

        Always copies: a simulated process must own its memory — wrapping a
        view of caller data (e.g. overlapping slices handed to several
        ranks) would alias address spaces that are distinct on the real
        machine.
        """
        owned = np.array(array, order="C", copy=True)
        buf = self.machine.mem.alloc(
            owned.nbytes, self.domain, label=label or f"r{self.rank}",
            array=owned,
        )
        return ArrayBuffer(buf.array, buf)

    # -- time ----------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.machine.sim.now

    def compute(self, seconds: float):
        """Event representing local computation for ``seconds``."""
        return self.machine.sim.timeout(seconds)

    def elem_ops(self, n_ops: int):
        """Computation event for ``n_ops`` calibrated element updates."""
        return self.machine.sim.timeout(n_ops * self.machine.spec.core.elem_op_time)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Proc rank={self.rank} core={self.core} domain={self.domain}>"


class World:
    """Shared state of one job: processes, endpoints, communicators, coll."""

    def __init__(self, machine: Machine, stack: Stack, cores: list[int]):
        from repro.coll import make_component  # deferred: coll imports mpi

        self.machine = machine
        self.stack = stack
        self._cid_counter = 0
        self._comms: dict[int, CommShared] = {}
        self.procs: list[Proc] = [Proc(self, rank, core)
                                  for rank, core in enumerate(cores)]
        world_cid = self.next_cid()
        shared = self.get_or_create_comm(world_cid, list(range(len(cores))))
        for rank, proc in enumerate(self.procs):
            proc.comm = Comm(shared, proc, rank)
        self.coll = make_component(stack.coll, self)

    def proc(self, world_rank: int) -> Proc:
        return self.procs[world_rank]

    def endpoint(self, world_rank: int) -> PmlEndpoint:
        return self.procs[world_rank].pml

    def next_cid(self) -> int:
        self._cid_counter += 1
        return self._cid_counter

    def comm_world_rank(self, cid: int, rank: int) -> Optional[int]:
        """Translate a communicator rank to a world rank (trace/diagnostics).

        Returns ``None`` when the communicator or rank is unknown — callers
        use this for best-effort reporting, never for routing.
        """
        shared = self._comms.get(cid)
        if shared is None or not 0 <= rank < shared.size:
            return None
        return shared.world_ranks[rank]

    def get_or_create_comm(self, cid: int, world_ranks: list[int]) -> CommShared:
        shared = self._comms.get(cid)
        if shared is None:
            shared = CommShared(self, cid, world_ranks)
            self._comms[cid] = shared
        return shared

    @property
    def size(self) -> int:
        return len(self.procs)


class JobResult:
    """Per-rank return values and timing of one :meth:`Job.run`."""

    def __init__(self, values: list[Any], start: float, finish_times: list[float]):
        self.values = values
        self.start = start
        self.finish_times = finish_times

    @property
    def elapsed(self) -> float:
        """Wall time of the slowest rank (the collective completion time)."""
        return max(self.finish_times) - self.start

    @property
    def per_rank_elapsed(self) -> list[float]:
        return [t - self.start for t in self.finish_times]


class Job:
    """Launches programs over a fixed set of ranks on one machine.

    A Job may run several programs in sequence on the same ranks (the IMB
    harness does); simulation time keeps advancing across runs, and
    communicator/cache state persists, like a real MPI job.
    """

    def __init__(self, machine: Machine, nprocs: int,
                 stack: Stack = TUNED_SM, binding: str = "linear"):
        cores = bind_ranks(machine.spec, nprocs, policy=binding)
        self.machine = machine
        self.stack = stack
        self.world = World(machine, stack, cores)

    @property
    def procs(self) -> list[Proc]:
        return self.world.procs

    @property
    def nprocs(self) -> int:
        return self.world.size

    def run(self, program: Callable, *args: Any) -> JobResult:
        """Run ``program(proc, *args)`` on every rank to completion."""
        sim = self.machine.sim
        start = sim.now
        finish = [0.0] * self.nprocs
        values: list[Any] = [None] * self.nprocs

        def runner(proc: Proc):
            value = yield from program(proc, *args)
            finish[proc.rank] = sim.now
            values[proc.rank] = value
            return value

        handles = [sim.process(runner(p), name=f"rank{p.rank}") for p in self.procs]
        try:
            sim.run()
        except BaseException:
            # One rank raised (or the run deadlocked): close every surviving
            # process *now* so their finally blocks run — abort-path cleanup
            # (e.g. forced KNEM region reclaim) must happen deterministically,
            # not at garbage collection.  This includes children spawned for
            # non-blocking operations (isend bodies and in-flight p2p sends
            # hold KNEM cookies too), not just the rank programs.
            for p in list(sim._live_processes.values()):
                gen = getattr(p, "_gen", None)
                if p.is_alive and gen is not None:
                    try:
                        gen.close()
                    except Exception:
                        pass  # cleanup is best-effort; the original error wins
            raise
        for h in handles:
            if not h.ok:  # pragma: no cover - failures re-raise in run()
                raise MpiError(f"rank program failed: {h.value!r}")
        return JobResult(values, start, finish)
