"""Machine assembly and the job launcher.

- :class:`Machine` wires a simulator, memory system, cache model, shared
  memory world, KNEM driver, topology tree, and distance matrix together.
- :class:`Job` launches one simulated MPI process per rank (bound to cores
  per the binding policy), runs a program generator on each, and reports
  per-rank results and timings.

A program is a function ``program(proc, *args)`` returning a generator::

    def program(proc):
        buf = proc.alloc_array(count, dtype="u4")
        buf.array[:] = proc.rank
        yield from proc.comm.allgather(out.sim, buf.sim, count * 4)
        return proc.now
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

import numpy as np

from repro.errors import (
    DeadlockError,
    MpiError,
    ProcessKilled,
    ProgressTimeout,
    RankCrashed,
    RankFailed,
)
from repro.faults.plan import FaultPlan
from repro.hardware.machines import get_machine
from repro.hardware.memory import MemorySystem, SimBuffer
from repro.hardware.spec import MachineSpec
from repro.kernel.costs import KernelCosts
from repro.kernel.knem import KnemDriver
from repro.kernel.shm import ShmWorld
from repro.mpi.communicator import Comm, CommShared
from repro.mpi.pml import PmlEndpoint
from repro.mpi.stacks import Stack, TUNED_SM
from repro.simtime.core import Simulator
from repro.simtime.trace import Tracer
from repro.topology.binding import bind_ranks
from repro.topology.distance import DistanceMatrix
from repro.topology.objects import Topology

__all__ = ["Machine", "Proc", "World", "Job", "JobResult", "ArrayBuffer"]


class Machine:
    """A fully assembled simulated machine (hardware + kernel services)."""

    def __init__(self, spec: MachineSpec, costs: Optional[KernelCosts] = None,
                 trace: bool = False, vector: Optional[bool] = None):
        self.spec = spec
        # ``vector=None`` defers to the process-wide REPRO_VECTOR flag for
        # both fast paths (event-cohort dispatch + numpy flow updates); an
        # explicit bool pins this machine for differential tests.
        self.sim = Simulator(cohort=vector)
        self.tracer = Tracer(clock=lambda: self.sim.now, enabled=trace)
        self.mem = MemorySystem(self.sim, spec, tracer=self.tracer,
                                vectorized=vector)
        self.costs = costs or KernelCosts()
        self.shm = ShmWorld(self.sim, spec, self.mem, costs=self.costs)
        self.knem = KnemDriver(self.sim, self.mem, costs=self.costs,
                               tracer=self.tracer)
        # Memoized per-spec: the tree and matrix are immutable and their
        # construction (O(n_cores²) ancestor walks) would otherwise dominate
        # per-cell machine builds in a sweep.
        self.topology = Topology.for_spec(spec)
        self.distances = DistanceMatrix.for_spec(spec)
        #: armed :class:`FaultPlan` (shared handle; also hooked into the
        #: kernel services) — the MPI layer consults it for rank-level rules
        self.fault_plan: Optional[FaultPlan] = None
        #: armed KNEM-San sanitizer (shared handle; see ``arm_sanitizer``)
        self.sanitizer = None

    @classmethod
    def build(cls, spec_or_name: Union[str, MachineSpec],
              costs: Optional[KernelCosts] = None, trace: bool = False,
              vector: Optional[bool] = None) -> "Machine":
        """Build from a paper machine name (``"ig"``) or a custom spec."""
        spec = (get_machine(spec_or_name)
                if isinstance(spec_or_name, str) else spec_or_name)
        return cls(spec, costs=costs, trace=trace, vector=vector)

    @property
    def now(self) -> float:
        return self.sim.now

    def arm_faults(self, plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
        """Arm a fault schedule on this machine's kernel services.

        Hooks the KNEM driver (register/copy/destroy), the shared-memory
        FIFO slot path, and the MPI layer's rank-level rules
        (``rank.crash``/``rank.stall``).  Pass ``None`` to disarm.  Returns
        the plan so call sites can keep the handle for its injection
        counters.
        """
        self.fault_plan = plan
        self.knem.fault_plan = plan
        self.shm.arm_faults(plan)
        return plan

    def arm_sanitizer(self, sanitizer):
        """Arm a :class:`~repro.analysis.static.SingleCopySanitizer`.

        Hooks the KNEM driver's region/copy lifecycle and the FIFO slot
        protocol.  Pass ``None`` to disarm; the hooks then cost one
        attribute test per kernel call (same fast path as fault plans).
        Returns the sanitizer so call sites keep the findings handle.
        """
        self.sanitizer = sanitizer
        self.knem.sanitizer = None if sanitizer is None else sanitizer.knem
        self.shm.arm_sanitizer(None if sanitizer is None else sanitizer.fifo)
        return sanitizer

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Machine {self.spec.name} t={self.sim.now:.6f}>"


class ArrayBuffer:
    """A numpy array paired with its :class:`SimBuffer` home."""

    __slots__ = ("array", "sim")

    def __init__(self, array: np.ndarray, sim_buffer: SimBuffer):
        self.array = array
        self.sim = sim_buffer

    @property
    def nbytes(self) -> int:
        return self.sim.size


class Proc:
    """One simulated MPI process: rank, core binding, allocation helpers."""

    def __init__(self, world: "World", rank: int, core: int):
        self.world = world
        self.rank = rank
        self.core = core
        self.machine = world.machine
        self.domain = world.machine.spec.core_domain(core)
        self.pml = PmlEndpoint(self, world)
        self.comm: Comm = None  # type: ignore[assignment]  # set by World

    # -- memory ---------------------------------------------------------
    def alloc(self, nbytes: int, label: str = "", backed: bool = True) -> SimBuffer:
        """Allocate ``nbytes`` on this process's NUMA domain (first touch)."""
        return self.machine.mem.alloc(
            nbytes, self.domain, label=label or f"r{self.rank}", backed=backed
        )

    def alloc_array(self, count: int, dtype: Any = "u1",
                    label: str = "") -> ArrayBuffer:
        """Allocate a typed numpy array homed on this process's domain."""
        array = np.zeros(count, dtype=dtype)
        buf = self.machine.mem.alloc(
            array.nbytes, self.domain, label=label or f"r{self.rank}", array=array
        )
        return ArrayBuffer(array, buf)

    def wrap(self, array: np.ndarray, label: str = "") -> ArrayBuffer:
        """Copy a numpy array into a buffer owned by this process.

        Always copies: a simulated process must own its memory — wrapping a
        view of caller data (e.g. overlapping slices handed to several
        ranks) would alias address spaces that are distinct on the real
        machine.
        """
        owned = np.array(array, order="C", copy=True)
        buf = self.machine.mem.alloc(
            owned.nbytes, self.domain, label=label or f"r{self.rank}",
            array=owned,
        )
        return ArrayBuffer(buf.array, buf)

    # -- time ----------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.machine.sim.now

    def compute(self, seconds: float):
        """Event representing local computation for ``seconds``."""
        return self.machine.sim.timeout(seconds)

    def elem_ops(self, n_ops: int):
        """Computation event for ``n_ops`` calibrated element updates."""
        return self.machine.sim.timeout(n_ops * self.machine.spec.core.elem_op_time)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Proc rank={self.rank} core={self.core} domain={self.domain}>"


class World:
    """Shared state of one job: processes, endpoints, communicators, coll."""

    def __init__(self, machine: Machine, stack: Stack, cores: list[int]):
        from repro.coll import make_component  # deferred: coll imports mpi

        self.machine = machine
        self.stack = stack
        self._cid_counter = 0
        self._comms: dict[int, CommShared] = {}
        self.procs: list[Proc] = [Proc(self, rank, core)
                                  for rank, core in enumerate(cores)]
        world_cid = self.next_cid()
        shared = self.get_or_create_comm(world_cid, list(range(len(cores))))
        for rank, proc in enumerate(self.procs):
            proc.comm = Comm(shared, proc, rank)
        self.coll = make_component(stack.coll, self)
        # -- rank-failure bookkeeping (ULFM-style fail-stop model) --------
        #: world ranks still alive
        self.live: set[int] = set(range(len(cores)))
        #: dead world rank -> the op it died in ("" when between ops)
        self.dead: dict[int, str] = {}
        #: world rank -> (op, Comm) while that rank is inside a collective;
        #: the failure-delivery path consults this to find in-flight peers
        self._active_colls: dict[int, tuple[str, "Comm"]] = {}
        #: world rank -> its running program Process (set by Job.run)
        self.rank_handles: dict[int, Any] = {}
        #: (source cid, survivor tuple) -> shrunk cid, so every survivor's
        #: local shrink() resolves to the same communicator
        self._shrink_cids: dict[Any, int] = {}
        #: timed crash rules already armed as simulator timers
        self._armed_timers: set[tuple[int, int]] = set()

    def proc(self, world_rank: int) -> Proc:
        return self.procs[world_rank]

    def endpoint(self, world_rank: int) -> PmlEndpoint:
        return self.procs[world_rank].pml

    def next_cid(self) -> int:
        self._cid_counter += 1
        return self._cid_counter

    def comm_world_rank(self, cid: int, rank: int) -> Optional[int]:
        """Translate a communicator rank to a world rank (trace/diagnostics).

        Returns ``None`` when the communicator or rank is unknown — callers
        use this for best-effort reporting, never for routing.
        """
        shared = self._comms.get(cid)
        if shared is None or not 0 <= rank < shared.size:
            return None
        return shared.world_ranks[rank]

    def get_or_create_comm(self, cid: int, world_ranks: list[int]) -> CommShared:
        shared = self._comms.get(cid)
        if shared is None:
            shared = CommShared(self, cid, world_ranks)
            self._comms[cid] = shared
        return shared

    @property
    def size(self) -> int:
        return len(self.procs)

    # -- rank-failure model (ULFM-style) ----------------------------------
    def dead_in(self, world_ranks: list[int]) -> Optional[int]:
        """Lowest dead world rank in a communicator group (None = all live)."""
        dead = [r for r in world_ranks if r in self.dead]
        return min(dead) if dead else None

    def note_crash(self, rank: int, op: str = "") -> None:
        """Mark a rank dead and emit the ``rank.crash`` trace event."""
        if rank in self.dead:
            return
        self.dead[rank] = op
        self.live.discard(rank)
        tr = self.machine.tracer
        if tr.enabled:
            tr.emit("rank.crash", rank=rank,
                    core=self.procs[rank].core, op=op)
        else:
            tr.tick("rank.crash")

    def enter_coll(self, rank: int, op: str, comm: "Comm") -> None:
        self._active_colls[rank] = (op, comm)

    def exit_coll(self, rank: int) -> None:
        self._active_colls.pop(rank, None)

    def kill_rank(self, rank: int, op: str = "", reason: str = "killed") -> None:
        """Fail-stop a rank now (timed crash rules, tests, chaos tooling)."""
        if rank in self.dead:
            return
        self.note_crash(rank, op)
        handle = self.rank_handles.get(rank)
        if handle is not None and handle.is_alive:
            # kill() fails the handle; the on-death hook (installed by
            # Job.run) then reaps protocol state and notifies survivors.
            handle.kill(RankCrashed(rank, reason))
        else:
            self._reap_rank(rank)

    def _handle_rank_exit(self, handle: Any, rank: int) -> None:
        """On-death hook for rank programs: classify how the rank ended."""
        if handle._ok:
            if rank in self.dead:
                # The program swallowed its own RankCrashed — the rank is
                # still dead to the world; reap its protocol state anyway.
                self._reap_rank(rank)
            return
        exc = handle._value
        if isinstance(exc, (RankCrashed, ProcessKilled)):
            # Fail-stop death: nobody "observes" the handle failure (the
            # job reports survivors), so defuse it and reap the corpse.
            handle._defused = True
            self.note_crash(rank, self.dead.get(rank, ""))
            self._reap_rank(rank)
        elif isinstance(exc, RankFailed):
            # Survivor aborted by a peer's death: recorded, re-raised
            # deterministically by Job.run once every survivor has observed
            # its own outcome.
            handle._defused = True
            self.exit_coll(rank)

    def _reap_rank(self, rank: int) -> None:
        """Post-mortem cleanup for a dead rank.

        Kills its protocol children (in-flight isend engines, deliveries,
        the progress daemon), reclaims every KNEM region and FIFO slot its
        core owned, and delivers :class:`RankFailed` to each surviving peer
        currently inside a collective that includes the dead rank.
        """
        proc = self.procs[rank]
        sim = self.machine.sim
        self.exit_coll(rank)
        for p in list(sim._live_processes.values()):
            if p.owner == rank and p.is_alive:
                p.kill(RankCrashed(rank, "owner rank died"))
        cookies = self.machine.knem.reclaim_owned(proc.core)
        slots = self.machine.shm.reclaim_core(proc.core)
        if cookies or slots:
            tr = self.machine.tracer
            if tr.enabled:
                tr.emit("rank.reclaim", rank=rank, core=proc.core,
                        cookies=len(cookies), slots=slots)
            else:
                tr.tick("rank.reclaim")
        for srank in sorted(self._active_colls):
            if srank == rank or srank in self.dead:
                continue
            op, comm = self._active_colls[srank]
            if rank not in comm.shared.world_ranks:
                continue
            handle = self.rank_handles.get(srank)
            if handle is None or handle.triggered:
                continue

            def still_exposed(srank=srank, rank=rank):
                entry = self._active_colls.get(srank)
                return (srank not in self.dead and entry is not None
                        and rank in entry[1].shared.world_ranks)

            handle.throw(RankFailed(rank, op), only_if=still_exposed)

    def abort_local(self, rank: int, op: str = "") -> None:
        """Cancel a surviving rank's in-flight protocol state after a
        collective abort.

        When ``RankFailed`` unwinds a rank out of a collective, its isend
        engines and deliveries for that operation are orphans: their peers
        unwound too, so they would hold FIFO slots and tx locks forever.
        Kill them (their ``finally`` blocks release locks and KNEM cookies)
        and reset the FIFOs this rank's core touches — every in-flight
        fragment there belongs to the aborted operation.  ULFM semantics:
        after a failure, *all* of the rank's outstanding communication is
        uncertain and cancelled.
        """
        sim = self.machine.sim
        me = self.rank_handles.get(rank)
        for p in list(sim._live_processes.values()):
            if p.owner != rank or p.daemon or p is me or not p.is_alive:
                continue
            p.kill(ProcessKilled(f"{p.name} aborted by rank failure in {op}"))
        self.machine.shm.reclaim_core(self.procs[rank].core)

    def shrink(self, shared: Optional[CommShared] = None) -> CommShared:
        """Rebuild a communicator over the survivors (MPI_Comm_shrink).

        The shrunk communicator is cached per (source cid, survivor set) so
        every survivor's local call resolves to the same context id — the
        simulated world has global knowledge, so no message exchange is
        needed to agree on the group.
        """
        if shared is None:
            shared = self.procs[0].comm.shared
        survivors = [r for r in shared.world_ranks if r not in self.dead]
        if not survivors:
            raise MpiError(f"communicator {shared.cid} has no survivors")
        key = (shared.cid, tuple(survivors))
        cid = self._shrink_cids.get(key)
        if cid is None:
            cid = self.next_cid()
            self._shrink_cids[key] = cid
        return self.get_or_create_comm(cid, survivors)

    def arm_timed_rules(self) -> None:
        """Schedule ``at_time`` crash rules as simulator timers (idempotent)."""
        plan = self.machine.fault_plan
        if plan is None:
            return
        sim = self.machine.sim
        for idx, rule in enumerate(plan.rules):
            if rule.at_time is None or rule.op != "rank.crash":
                continue
            key = (id(plan), idx)
            if key in self._armed_timers:
                continue
            self._armed_timers.add(key)

            def fire(rule=rule, plan=plan):
                for proc in self.procs:
                    if rule.core is not None and proc.core != rule.core:
                        continue
                    if proc.rank in self.dead:
                        continue
                    if (rule.probability < 1.0
                            and plan.draw("rank.crash", proc.core)
                            >= rule.probability):
                        continue
                    plan.record("rank.crash")
                    self.kill_rank(proc.rank, reason="timed crash")

            sim.schedule(max(0.0, rule.at_time - sim.now), fire)


class JobResult:
    """Per-rank return values and timing of one :meth:`Job.run`.

    Ranks that never finished (crashed mid-run) carry ``None`` in
    ``finish_times`` and ``values``; the aggregate properties report
    survivor-only statistics instead of raising.
    """

    def __init__(self, values: list[Any], start: float,
                 finish_times: "list[Optional[float]]",
                 dead_ranks: "tuple[int, ...]" = ()):
        self.values = values
        self.start = start
        self.finish_times = finish_times
        self.dead_ranks = tuple(dead_ranks)

    @property
    def survivors(self) -> list[int]:
        """Ranks that ran to completion."""
        return [r for r, t in enumerate(self.finish_times) if t is not None]

    @property
    def elapsed(self) -> Optional[float]:
        """Wall time of the slowest *finishing* rank (None if none finished)."""
        done = [t for t in self.finish_times if t is not None]
        if not done:
            return None
        return max(done) - self.start

    @property
    def per_rank_elapsed(self) -> "list[Optional[float]]":
        return [None if t is None else t - self.start
                for t in self.finish_times]


class Job:
    """Launches programs over a fixed set of ranks on one machine.

    A Job may run several programs in sequence on the same ranks (the IMB
    harness does); simulation time keeps advancing across runs, and
    communicator/cache state persists, like a real MPI job.
    """

    def __init__(self, machine: Machine, nprocs: int,
                 stack: Stack = TUNED_SM, binding: str = "linear"):
        cores = bind_ranks(machine.spec, nprocs, policy=binding)
        self.machine = machine
        self.stack = stack
        self.world = World(machine, stack, cores)

    @property
    def procs(self) -> list[Proc]:
        return self.world.procs

    @property
    def nprocs(self) -> int:
        return self.world.size

    def run(self, program: Callable, *args: Any,
            deadline: Optional[float] = None) -> JobResult:
        """Run ``program(proc, *args)`` on every *live* rank to completion.

        ``deadline`` arms a simulated-time watchdog: if any rank program is
        still unfinished ``deadline`` seconds after the run started, the run
        aborts with :class:`~repro.errors.ProgressTimeout` carrying the
        analyzer's wait-cycle diagnosis (when tracing is enabled) — a silent
        hang always becomes a report.

        Rank-failure semantics: ranks killed by crash rules end with
        ``None`` results; surviving ranks whose collectives could not
        complete observe :class:`~repro.errors.RankFailed` inside their
        program (catch it to shrink and retry).  An uncaught ``RankFailed``
        is re-raised here — deterministically, from the lowest such rank —
        after every survivor has run to its own outcome.
        """
        sim = self.machine.sim
        world = self.world
        start = sim.now
        finish: list[Optional[float]] = [None] * self.nprocs
        values: list[Any] = [None] * self.nprocs

        def runner(proc: Proc):
            value = yield from program(proc, *args)
            finish[proc.rank] = sim.now
            values[proc.rank] = value
            return value

        live = [p for p in self.procs if p.rank in world.live]
        if not live:
            raise MpiError("no live ranks to run on (all crashed)")
        handles = []
        for p in live:
            h = sim.process(runner(p), name=f"rank{p.rank}", owner=p.rank)
            world.rank_handles[p.rank] = h
            h.on_death(lambda hh, rank=p.rank: world._handle_rank_exit(hh, rank))
            handles.append(h)
        world.arm_timed_rules()
        try:
            if deadline is not None:
                # Watchdog: process events up to the deadline without
                # jumping ``now`` forward when the run completes early.
                # run_horizon drains whole cohorts in vector mode, so a
                # deadline-armed run keeps the batched dispatch rate.
                sim.run_horizon(start + deadline)
                stuck = [h for h in handles if h.is_alive]
                if stuck:
                    raise self._watchdog_timeout(deadline, stuck)
                self._close_orphans(sim)
            else:
                while True:
                    try:
                        sim.run()
                        break
                    except DeadlockError:
                        # Queue drained with blocked processes.  If every
                        # rank program already ended, the stragglers are
                        # protocol orphans of a failed collective (e.g. a
                        # survivor's isend engine waiting on a FIN the dead
                        # peer will never post): close them and move on.
                        # A blocked *rank program* is a genuine deadlock.
                        if any(h.is_alive for h in handles):
                            raise
                        if not self._close_orphans(sim):
                            raise
        except BaseException:
            # The run aborted (a rank raised, deadlocked, or timed out):
            # close every surviving process *now* so their finally blocks
            # run — abort-path cleanup (e.g. forced KNEM region reclaim)
            # must happen deterministically, not at garbage collection.
            # This includes children spawned for non-blocking operations
            # (isend bodies and in-flight p2p sends hold KNEM cookies too),
            # not just the rank programs.
            self._abort_cleanup(sim)
            raise
        if world.dead:
            # Quiescent post-failure sweep: every fragment still parked in a
            # FIFO belongs to an aborted transfer (the queue has drained),
            # so reset the pools — no slot may leak across rank failures.
            self.machine.shm.reclaim_all()
        failed: list[tuple[int, BaseException]] = []
        for p, h in zip(live, handles):
            if h.ok:
                continue
            exc = h.value
            if isinstance(exc, (RankCrashed, ProcessKilled)):
                continue  # fail-stop death: reported via None results
            failed.append((p.rank, exc))
        for _rank, exc in failed:
            if not isinstance(exc, RankFailed):
                raise MpiError(f"rank program failed: {exc!r}")
        if failed:
            # Every failure is a RankFailed; surface the lowest rank's.
            raise failed[0][1]
        return JobResult(values, start, finish,
                         dead_ranks=tuple(sorted(world.dead)))

    def _close_orphans(self, sim: Simulator) -> int:
        """Kill blocked non-daemon protocol children; returns how many."""
        orphans = [p for p in sim._live_processes.values()
                   if p.is_alive and not p.daemon]
        for p in orphans:
            p.kill(ProcessKilled(f"{p.name} orphaned by rank failure"))
        return len(orphans)

    def _abort_cleanup(self, sim: Simulator) -> None:
        for p in list(sim._live_processes.values()):
            gen = getattr(p, "_gen", None)
            if p.is_alive and gen is not None:
                try:
                    gen.close()
                except Exception:
                    pass  # cleanup is best-effort; the original error wins
        # In-flight fragments died with their senders; reset the slot pools
        # so an aborted run cannot leak FIFO capacity.
        self.machine.shm.reclaim_all()

    def _watchdog_timeout(self, deadline: float, stuck) -> ProgressTimeout:
        """Build the typed watchdog error, with wait-cycle diagnosis."""
        sim = self.machine.sim
        blocked = sorted(p.name for p in stuck)
        waiting = {}
        for p in sorted(stuck, key=lambda p: p.name):
            target = p.waiting_on
            waiting[p.name] = ("" if target is None
                              else getattr(target, "name", "")
                              or type(target).__name__)
        tr = self.machine.tracer
        if tr.enabled:
            tr.emit("watchdog.timeout", deadline=deadline,
                    blocked=tuple(blocked))
        else:
            tr.tick("watchdog.timeout")
        diagnosis = self._diagnose_hang(blocked, waiting)
        err = ProgressTimeout(deadline, blocked, waiting=waiting,
                              diagnosis=diagnosis)
        self._write_watchdog_report(err)
        return err

    def _diagnose_hang(self, blocked: list[str],
                       waiting: dict[str, str]) -> list:
        """Run the analyzer's deadlock checker over the recorded trace.

        Returns findings (empty when tracing is disabled — the watchdog
        still fires, just without the wait-cycle explanation).
        """
        if not self.machine.tracer.enabled:
            return []
        try:
            from repro.analysis.deadlock import check_deadlock
            from repro.analysis.model import build_model

            synthetic = DeadlockError(blocked, waiting=waiting)
            model = build_model(self, deadlock=synthetic)
            return list(check_deadlock(model))
        except Exception:  # diagnosis is best-effort; the timeout still fires
            return []

    def _write_watchdog_report(self, err: ProgressTimeout) -> None:
        """Drop the diagnosis report where CI can pick it up (optional)."""
        import os

        report_dir = os.environ.get("REPRO_WATCHDOG_REPORT_DIR")
        if not report_dir:
            return
        try:
            os.makedirs(report_dir, exist_ok=True)
            path = os.path.join(
                report_dir, f"watchdog-{self.machine.spec.name}.txt")
            with open(path, "a", encoding="utf-8") as fh:
                fh.write(err.report() + "\n\n")
        except OSError:  # pragma: no cover - report is best-effort
            pass
