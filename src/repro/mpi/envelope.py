"""Message envelopes: the control records exchanged through mailboxes.

An envelope is what travels out-of-band; payload bytes move separately
(inline for tiny messages, via a shared temp buffer for eager, via FIFO
fragments or a KNEM region for rendezvous).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "EAGER",
    "RTS_SM",
    "RTS_KNEM",
    "FIN",
    "RETX",
    "Envelope",
]

#: Envelope kinds.
EAGER = "eager"        # payload inline (tiny/object) or in a temp shm buffer
RTS_SM = "rts_sm"      # rendezvous through the per-pair FIFO
RTS_KNEM = "rts_knem"  # rendezvous through a KNEM region (cookie attached)
FIN = "fin"            # receiver -> sender completion notification
RETX = "retx"          # sender -> receiver retransmission after a NACKed FIN


@dataclass
class Envelope:
    """One point-to-point control record.

    ``cid``/``src``/``tag`` form the matching key (communicator context id,
    source rank within that communicator, tag).  ``seq`` is a per-sender
    sequence number used to route FINs back to the pending send.
    """

    kind: str
    cid: int
    src: int
    tag: Any
    nbytes: int
    seq: int = field(default_factory=itertools.count(1).__next__)
    #: inline object / bytes for EAGER, KNEM cookie for RTS_KNEM
    payload: Any = None
    #: shared temp buffer (eager) or FIFO segment (rts_sm)
    carrier: Any = None
    #: world rank of the sender (for reply routing)
    reply_to: int = -1
    #: region offset for RTS_KNEM partial sends
    region_offset: int = 0
    #: True when payload is a Python object rather than buffer bytes
    is_object: bool = False
    #: FIN only: the receiver could not complete the rendezvous (failed
    #: in-kernel copy) and asks the sender to retransmit copy-in/copy-out
    nack: bool = False
    #: happens-before token: pairs the sender's ``mpi.send`` trace record
    #: with the receiver's ``mpi.recv`` record (see repro.analysis)
    hb: int = -1

    def matches(self, source: int, tag: Any, any_source: int, any_tag: Any) -> bool:
        if source != any_source and source != self.src:
            return False
        if tag != any_tag and tag != self.tag:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Envelope {self.kind} cid={self.cid} src={self.src} "
            f"tag={self.tag!r} {self.nbytes}B seq={self.seq}>"
        )


_fin_seq = itertools.count(1)


def make_fin(cid: int, src: int, send_seq: int, nack: bool = False) -> Envelope:
    """Build the FIN acknowledging the send with sequence ``send_seq``."""
    return Envelope(kind=FIN, cid=cid, src=src, tag=None, nbytes=0,
                    payload=send_seq, nack=nack)
