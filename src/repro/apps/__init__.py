"""Applications used to evaluate the collective components.

- :mod:`repro.apps.asp` — the paper's showcase application (Table I): a
  row-distributed parallel Floyd–Warshall all-pairs-shortest-path solver
  whose dominant collective is ``MPI_Bcast``;
- :mod:`repro.apps.stencil` — a 2-D halo-exchange mini-app (point-to-point
  heavy; extra workload beyond the paper);
- :mod:`repro.apps.transpose` — a distributed matrix transpose driven by
  ``MPI_Alltoall`` (extra workload beyond the paper).
"""

from repro.apps.asp import (AspConfig, AspTiming, asp_paper_config, run_asp,
                            run_asp_timed)
from repro.apps.stencil import StencilConfig, run_stencil
from repro.apps.transpose import TransposeConfig, run_transpose

__all__ = [
    "AspConfig",
    "AspTiming",
    "asp_paper_config",
    "run_asp",
    "run_asp_timed",
    "StencilConfig",
    "run_stencil",
    "TransposeConfig",
    "run_transpose",
]
