"""ASP — parallel all-pairs-shortest-path (Floyd–Warshall), Table I's app.

The paper evaluates its collectives on ASP [18]: the distance matrix is
distributed by rows across all cores, and for every pivot ``k`` the owner
of row ``k`` broadcasts it (``MPI_Bcast`` is the dominant collective); each
rank then relaxes its local rows.  On Zoot the matrix is 16384² and the
broadcast payload 64 KB; on IG 32768² / 128 KB (32-bit integers).

Two modes:

- :func:`run_asp` — **data-correct**: moves real numpy rows through the
  simulated collectives and returns the full distance matrix (tests verify
  it against an independent Floyd–Warshall);
- :func:`run_asp_timed` — **calibrated timing** for Table I's scale: the
  matrix is unbacked, the relaxation is charged through the calibrated
  element-update cost, and the streaming sweep's cache eviction is applied
  (the paper notes the app, unlike IMB off-cache, leaves broadcast state
  cache-resident — and conversely, the 100+ MB relax sweep evicts the
  transport's intermediate buffers).

Iteration sampling: all ``n`` iterations are statistically homogeneous
(same payload size; ownership changes only every ``n/P`` pivots), so
``sample=m`` simulates every ``m``-th pivot and scales time by ``m``.
``sample=1`` simulates every pivot exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.errors import BenchmarkError
from repro.hardware.spec import MachineSpec
from repro.mpi.runtime import Job, Machine, Proc
from repro.mpi.stacks import Stack

__all__ = ["AspConfig", "AspTiming", "asp_paper_config", "run_asp",
           "run_asp_timed", "floyd_warshall_reference"]

#: 32-bit integer distances, as in the paper's runs.
ITEM = 4
#: "infinite" distance for missing edges (int32-safe against overflow).
INF = np.int32(2 ** 30)


@dataclass(frozen=True)
class AspConfig:
    """Problem shape: ``n`` x ``n`` matrix over ``nprocs`` row blocks."""

    n: int
    nprocs: int

    def __post_init__(self) -> None:
        if self.n < 1 or self.nprocs < 1:
            raise BenchmarkError("ASP needs n >= 1 and nprocs >= 1")
        if self.nprocs > self.n:
            raise BenchmarkError("more ranks than matrix rows")

    @property
    def row_bytes(self) -> int:
        """Broadcast payload per pivot row (n 32-bit cells)."""
        return self.n * ITEM

    def block(self, rank: int) -> tuple[int, int]:
        """Row range ``[lo, hi)`` owned by ``rank`` (block distribution)."""
        base, extra = divmod(self.n, self.nprocs)
        lo = rank * base + min(rank, extra)
        hi = lo + base + (1 if rank < extra else 0)
        return lo, hi

    def owner(self, row: int) -> int:
        """Rank owning ``row`` under the block distribution."""
        base, extra = divmod(self.n, self.nprocs)
        cut = extra * (base + 1)
        if row < cut:
            return row // (base + 1)
        return extra + (row - cut) // base if base else self.nprocs - 1


@dataclass(frozen=True)
class AspTiming:
    """Timing of one timed ASP run (Table I row)."""

    total_time: float
    bcast_time: float
    compute_time: float
    n: int
    nprocs: int
    iterations_simulated: int
    sample: int


def asp_paper_config(machine: str) -> AspConfig:
    """The Table I problem sizes: 16384² on Zoot, 32768² on IG."""
    if machine == "zoot":
        return AspConfig(n=16384, nprocs=16)
    if machine == "ig":
        return AspConfig(n=32768, nprocs=48)
    raise BenchmarkError(f"Table I uses zoot or ig, not {machine!r}")


def floyd_warshall_reference(adjacency: np.ndarray) -> np.ndarray:
    """Straightforward single-node Floyd–Warshall (test oracle)."""
    dist = adjacency.astype(np.int64, copy=True)
    n = dist.shape[0]
    for k in range(n):
        np.minimum(dist, dist[:, k:k + 1] + dist[k:k + 1, :], out=dist)
    return np.minimum(dist, INF).astype(np.int32)


# ------------------------------------------------------------ data-correct
def run_asp(
    machine: Union[str, MachineSpec, Machine],
    stack: Stack,
    adjacency: np.ndarray,
    nprocs: int,
) -> np.ndarray:
    """Run data-correct distributed ASP; returns the distance matrix.

    ``adjacency`` is an ``n x n`` int32 matrix with ``INF`` for missing
    edges and 0 on the diagonal.
    """
    n = adjacency.shape[0]
    if adjacency.shape != (n, n):
        raise BenchmarkError("adjacency must be square")
    cfg = AspConfig(n=n, nprocs=nprocs)
    machine_obj = machine if isinstance(machine, Machine) else Machine.build(machine)
    job = Job(machine_obj, nprocs=nprocs, stack=stack)
    result = job.run(_asp_data_program, cfg, adjacency)
    return result.values[0]


def _asp_data_program(proc: Proc, cfg: AspConfig, adjacency: np.ndarray):
    comm = proc.comm
    lo, hi = cfg.block(proc.rank)
    local = proc.wrap(np.ascontiguousarray(adjacency[lo:hi].astype(np.int32)),
                      label=f"asp-local-r{proc.rank}")
    local2d = local.array.reshape(hi - lo, cfg.n)
    rowbuf = proc.alloc_array(cfg.n, dtype=np.int32, label="asp-row")
    for k in range(cfg.n):
        owner = cfg.owner(k)
        if proc.rank == owner:
            off = (k - cfg.block(owner)[0]) * cfg.row_bytes
            yield from comm.bcast(local.sim, off, cfg.row_bytes, root=owner)
            row = local2d[k - lo]
        else:
            yield from comm.bcast(rowbuf.sim, 0, cfg.row_bytes, root=owner)
            row = rowbuf.array
        clipped = np.minimum(local2d[:, k:k + 1].astype(np.int64) + row, INF)
        np.minimum(local2d, clipped.astype(np.int32), out=local2d)
        yield proc.elem_ops((hi - lo) * cfg.n)
    # Assemble the full matrix at rank 0 through the collective under test.
    counts = [(cfg.block(r)[1] - cfg.block(r)[0]) * cfg.row_bytes
              for r in range(cfg.nprocs)]
    displs = [cfg.block(r)[0] * cfg.row_bytes for r in range(cfg.nprocs)]
    full = proc.alloc_array(cfg.n * cfg.n, dtype=np.int32) if proc.rank == 0 else None
    yield from comm.gatherv(local.sim, full.sim if full else None, counts,
                            displs, root=0)
    if proc.rank == 0:
        return full.array.reshape(cfg.n, cfg.n).copy()
    return None


# --------------------------------------------------------------- timed mode
def run_asp_timed(
    machine: Union[str, MachineSpec],
    stack: Stack,
    cfg: AspConfig,
    sample: int = 1,
    model_cache_sweep: bool = True,
) -> AspTiming:
    """Calibrated-timing ASP run for Table I (see module docstring)."""
    if sample < 1:
        raise BenchmarkError("sample must be >= 1")
    machine_obj = Machine.build(machine)
    job = Job(machine_obj, nprocs=cfg.nprocs, stack=stack)
    iters = max(1, cfg.n // sample)
    scale = cfg.n / iters
    result = job.run(_asp_timed_program, cfg, iters, sample, model_cache_sweep)
    bcast = max(v[0] for v in result.values) * scale
    compute = max(v[1] for v in result.values) * scale
    return AspTiming(
        total_time=result.elapsed * scale,
        bcast_time=bcast,
        compute_time=compute,
        n=cfg.n,
        nprocs=cfg.nprocs,
        iterations_simulated=iters,
        sample=sample,
    )


def _asp_timed_program(proc: Proc, cfg: AspConfig, iters: int, sample: int,
                       model_cache_sweep: bool):
    comm = proc.comm
    lo, hi = cfg.block(proc.rank)
    local_rows = hi - lo
    local = proc.alloc(local_rows * cfg.row_bytes, backed=False,
                       label=f"asp-local-r{proc.rank}")
    rowbuf = proc.alloc(cfg.row_bytes, backed=False, label="asp-row")
    caches = proc.machine.mem.caches
    bcast_time = 0.0
    compute_time = 0.0
    for i in range(iters):
        k = min(i * sample, cfg.n - 1)
        owner = cfg.owner(k)
        t0 = proc.now
        if proc.rank == owner:
            off = (k - cfg.block(owner)[0]) * cfg.row_bytes
            yield from comm.bcast(local, off, cfg.row_bytes, root=owner)
        else:
            yield from comm.bcast(rowbuf, 0, cfg.row_bytes, root=owner)
        bcast_time += proc.now - t0
        t0 = proc.now
        yield proc.elem_ops(local_rows * cfg.n)
        if model_cache_sweep:
            # The relax pass streams the whole local block (read+write),
            # evicting transport state and leaving only the tail resident.
            caches.touch(proc.core, local, 0, local.size, dirty=True)
        compute_time += proc.now - t0
    return bcast_time, compute_time
