"""Distributed matrix transpose via Alltoall (extra workload).

The classic FFT-style redistribution: an ``n x n`` matrix distributed by
row blocks is transposed by an ``MPI_Alltoall`` of block-column panels plus
local sub-block transposes — the communication pattern the paper's
AlltoAll rotation (Figure 3) is designed for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import BenchmarkError
from repro.mpi.runtime import Job, Machine, Proc
from repro.mpi.stacks import Stack

__all__ = ["TransposeConfig", "run_transpose"]


@dataclass(frozen=True)
class TransposeConfig:
    """Square matrix of ``n`` rows over ``nprocs`` equal row blocks."""

    n: int
    nprocs: int

    def __post_init__(self) -> None:
        if self.n < 1 or self.nprocs < 1:
            raise BenchmarkError("transpose needs n >= 1 and nprocs >= 1")
        if self.n % self.nprocs:
            raise BenchmarkError("n must be divisible by nprocs")

    @property
    def block(self) -> int:
        """Rows per rank."""
        return self.n // self.nprocs


def run_transpose(machine, stack: Stack, matrix: np.ndarray,
                  nprocs: int) -> tuple[np.ndarray, float]:
    """Transpose ``matrix``; returns ``(transposed, elapsed seconds)``."""
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise BenchmarkError("matrix must be square")
    cfg = TransposeConfig(n=n, nprocs=nprocs)
    machine_obj = machine if isinstance(machine, Machine) else Machine.build(machine)
    job = Job(machine_obj, nprocs=nprocs, stack=stack)
    result = job.run(_transpose_program, cfg, matrix.astype(np.float64))
    return np.vstack(result.values), result.elapsed


def _transpose_program(proc: Proc, cfg: TransposeConfig, matrix: np.ndarray):
    comm = proc.comm
    b, size = cfg.block, comm.size
    lo = proc.rank * b
    rows = matrix[lo: lo + b]  # my row block: b x n
    # Pack block-column panels contiguously: panel p = my rows, columns of
    # rank p's block, pre-transposed so the receiver can use them directly.
    send = proc.alloc_array(b * cfg.n, dtype=np.float64, label="tr-send")
    for p in range(size):
        panel = rows[:, p * b: (p + 1) * b].T  # b x b, transposed
        send.array[p * b * b: (p + 1) * b * b] = panel.reshape(-1)
    recv = proc.alloc_array(b * cfg.n, dtype=np.float64, label="tr-recv")
    t0 = proc.now
    yield from comm.alltoall(send.sim, recv.sim, b * b * 8)
    elapsed = proc.now - t0
    # Assemble my block of the transposed matrix: row block r of the result
    # is column block r of the input, gathered from every peer.
    out = np.empty((b, cfg.n), dtype=np.float64)
    for p in range(size):
        out[:, p * b: (p + 1) * b] = \
            recv.array[p * b * b: (p + 1) * b * b].reshape(b, b)
    return out


def alltoall_time(machine, stack: Stack, cfg: TransposeConfig) -> float:
    """Just the Alltoall phase time for one synthetic transpose."""
    machine_obj = machine if isinstance(machine, Machine) else Machine.build(machine)
    job = Job(machine_obj, nprocs=cfg.nprocs, stack=stack)

    def prog(proc: Proc):
        nbytes = cfg.block * cfg.block * 8
        send = proc.alloc(nbytes * cfg.nprocs, backed=False)
        recv = proc.alloc(nbytes * cfg.nprocs, backed=False)
        t0 = proc.now
        yield from proc.comm.alltoall(send, recv, nbytes)
        return proc.now - t0

    result = job.run(prog)
    return max(result.values)
