"""2-D halo-exchange stencil mini-app (extra workload, not in the paper).

A 5-point Jacobi sweep over a 2-D grid distributed in horizontal strips:
each iteration exchanges one-row halos with the neighbours (point-to-point,
exercising the eager/rendezvous paths at realistic sizes) and relaxes the
interior.  Data-correct: the grid is real and the result is verified
against a single-node sweep in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import BenchmarkError
from repro.mpi.runtime import Job, Machine, Proc
from repro.mpi.stacks import Stack

__all__ = ["StencilConfig", "run_stencil", "jacobi_reference"]


@dataclass(frozen=True)
class StencilConfig:
    """Grid shape and iteration count."""

    rows: int
    cols: int
    iterations: int

    def __post_init__(self) -> None:
        if min(self.rows, self.cols) < 3 or self.iterations < 1:
            raise BenchmarkError("stencil needs a >= 3x3 grid and >= 1 iteration")


def jacobi_reference(grid: np.ndarray, iterations: int) -> np.ndarray:
    """Single-node oracle: fixed boundary, 4-neighbour average interior."""
    cur = grid.astype(np.float64, copy=True)
    for _ in range(iterations):
        nxt = cur.copy()
        nxt[1:-1, 1:-1] = 0.25 * (cur[:-2, 1:-1] + cur[2:, 1:-1]
                                  + cur[1:-1, :-2] + cur[1:-1, 2:])
        cur = nxt
    return cur


def run_stencil(machine, stack: Stack, cfg: StencilConfig, grid: np.ndarray,
                nprocs: int) -> tuple[np.ndarray, float]:
    """Run the distributed sweep; returns ``(result grid, elapsed seconds)``."""
    if grid.shape != (cfg.rows, cfg.cols):
        raise BenchmarkError("grid shape does not match config")
    if nprocs > cfg.rows - 2:
        raise BenchmarkError("too many ranks for the interior row count")
    machine_obj = machine if isinstance(machine, Machine) else Machine.build(machine)
    job = Job(machine_obj, nprocs=nprocs, stack=stack)
    result = job.run(_stencil_program, cfg, grid.astype(np.float64))
    out = np.vstack([v for v in result.values])
    return out, result.elapsed


def _split(rows: int, nprocs: int, rank: int) -> tuple[int, int]:
    interior = rows - 2
    base, extra = divmod(interior, nprocs)
    lo = 1 + rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


def _stencil_program(proc: Proc, cfg: StencilConfig, grid: np.ndarray):
    comm = proc.comm
    rank, size = proc.rank, comm.size
    lo, hi = _split(cfg.rows, size, rank)
    # Local strip with one halo row above and below.
    strip = proc.wrap(np.ascontiguousarray(grid[lo - 1: hi + 1]),
                      label=f"stencil-r{rank}")
    local = strip.array.reshape(hi - lo + 2, cfg.cols)
    row_bytes = cfg.cols * 8
    up = rank - 1 if rank > 0 else None
    down = rank + 1 if rank < size - 1 else None
    for _ in range(cfg.iterations):
        reqs = []
        if up is not None:
            reqs.append(comm.irecv(up, strip.sim, 0, row_bytes, tag="halo"))
            reqs.append(comm.isend(up, strip.sim, row_bytes, row_bytes, tag="halo"))
        if down is not None:
            reqs.append(comm.irecv(down, strip.sim,
                                   (hi - lo + 1) * row_bytes, row_bytes,
                                   tag="halo"))
            reqs.append(comm.isend(down, strip.sim, (hi - lo) * row_bytes,
                                   row_bytes, tag="halo"))
        for req in reqs:
            yield req.event
        interior = 0.25 * (local[:-2, 1:-1] + local[2:, 1:-1]
                           + local[1:-1, :-2] + local[1:-1, 2:])
        local[1:-1, 1:-1] = interior
        yield proc.elem_ops((hi - lo) * cfg.cols)
        yield from comm.barrier()
    # Each rank returns its owned rows (halo rows excluded); rank 0 also
    # contributes the top boundary row, the last rank the bottom one.
    out = local[1:-1]
    if rank == 0:
        out = np.vstack([local[:1], out])
    if rank == size - 1:
        out = np.vstack([out, local[-1:]])
    return out.copy()
