"""Figure 8 — AllGather: including the paper's own negative result.

The KNEM AllGather is deliberately the simple Gather-then-Broadcast
assembly (Section V-C).  Paper claims: best on Zoot/Dancer/Saturn (except
some medium sizes), but on IG "Tuned-KNEM performs better than KNEM
AllGather by up to 25%" because the root's memory node throttles the
two-stage assembly.
"""

import pytest

from repro.bench.experiments import figure8
from repro.units import KiB

from conftest import emit


@pytest.mark.parametrize("machine", ["zoot", "dancer", "saturn"])
def test_fig8_allgather_small_machines(run_experiment, machine):
    result = run_experiment(figure8, machine, scale="bench")
    emit(result)

    norm = result.normalized()
    big = [s for s in result.sizes if s >= 64 * KiB]
    # KNEM AllGather at least competitive with everything vs SM baselines
    for size in big:
        assert norm["Tuned-SM"][size] > 0.95, f"Tuned-SM at {size} on {machine}"


def test_fig8_allgather_ig_loses_to_tuned_knem(run_experiment):
    result = run_experiment(figure8, "ig", scale="bench")
    emit(result)

    norm = result.normalized()
    big = [s for s in result.sizes if s >= 64 * KiB]
    # the paper's negative result: Tuned-KNEM (ring) wins on the large NUMA
    assert any(norm["Tuned-KNEM"][s] < 1.0 for s in big)
    # ...while the double-copy stacks still lose to KNEM-Coll
    assert sum(norm["Tuned-SM"][s] > 0.9 for s in big) >= len(big) - 1
