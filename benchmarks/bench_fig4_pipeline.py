"""Figure 4 — pipeline-size tuning of the hierarchical KNEM Broadcast on IG.

Regenerates the paper's pipeline sweep: linear vs hierarchical vs
hierarchical-pipelined at several segment sizes, normalized to the
unpipelined hierarchical run.  Shape assertions encode the published
claims: hierarchy alone ~2.2-2.4x over linear; pipelining adds up to
~1.25x; 4 KB segments are too small.
"""

from repro.bench.experiments import figure4
from repro.units import KiB, MiB

from conftest import emit


def test_fig4_pipeline_sweep(run_experiment):
    result = run_experiment(figure4, scale="bench")
    emit(result)

    norm = result.normalized()
    sizes = result.sizes
    # hierarchy alone is a big win over linear at every size
    for size in sizes:
        assert norm["linear"][size] > 1.7, f"linear at {size}"
    # a sane pipeline size improves on no-pipeline
    for size in sizes:
        assert norm["pipe-512K"][size] < 1.0 or norm["pipe-16K"][size] < 1.0
    # 4 KB segments pay too much synchronization at intermediate sizes
    assert norm["pipe-4K"][sizes[0]] > norm["pipe-16K"][sizes[0]]
