"""Simulator-core micro-benchmarks and the wall-clock perf-regression gate.

Three measurements of the engine itself (not of any paper experiment):

- **events/sec** — raw event-loop dispatch rate on timeout chains, measured
  best-of-3 with the vectorized cohort path enabled (the scalar rate is
  recorded alongside).  This is the number the CI gate always enforces,
  because every sweep bottoms out in ``Simulator.run``;
- **cells/sec** — full (stack, size) sweep cells (machine build + IMB loop)
  on the dancer Broadcast grid;
- **sweep wall-clock** — ``run_sweep`` serial vs the warm pool at
  ``parallel=N``.  The payload records the host cpu count and a
  ``measurable`` flag: on a 1-cpu host parallel can never beat serial, so
  the speedup gate (``--check-speedup``) explicitly skips there instead of
  recording a misleading number as a target.

Standalone (what CI runs)::

    python benchmarks/bench_simcore.py --smoke --jobs 2 \
        --output BENCH_simcore.json
    python benchmarks/bench_simcore.py --smoke \
        --baseline BENCH_simcore.json --max-regression 0.25
    python benchmarks/bench_simcore.py --smoke --jobs 2 \
        --check-speedup --min-speedup 1.5   # skips on < 2 cpus

Under pytest (``pytest benchmarks/bench_simcore.py --benchmark-only``) each
measurement is one pytest-benchmark target, so it lands in benchmark
history next to the paper-experiment benches.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import pytest

from repro import vector
from repro.bench.harness import run_sweep
from repro.bench.imb import ImbSettings, imb_time
from repro.mpi import stacks as stk
from repro.simtime import Simulator
from repro.units import KiB

#: (stack, size) grid for the cell-throughput measurement.
CELL_STACKS = [stk.TUNED_SM, stk.KNEM_COLL]
CELL_SIZES = {"full": [32 * KiB, 64 * KiB, 128 * KiB, 256 * KiB],
              "smoke": [32 * KiB, 128 * KiB]}
CELL_SETTINGS = ImbSettings(max_iterations=1, warmups=0)

#: sweep grid for the serial-vs-warm-pool comparison.  Cells here are
#: deliberately bigger than the cell-throughput grid (8 ranks, warmup +
#: 2 iterations, up to MiB messages): the smoke sweep runs ~0.6 s serial,
#: enough work for a 2-worker pool to amortize its one-time fork.
SWEEP_SIZES = {"full": [128 * KiB, 256 * KiB, 512 * KiB, 1024 * KiB,
                        2048 * KiB],
               "smoke": [128 * KiB, 256 * KiB, 512 * KiB, 1024 * KiB]}
SWEEP_NPROCS = 8
SWEEP_SETTINGS = ImbSettings(max_iterations=2, warmups=1)

#: event-loop workload: chains of zero-ish timeouts.
EVENT_CHAINS = {"full": (10, 20_000), "smoke": (10, 5_000)}
#: wall-clock runs per events/sec measurement (best-of, not mean: the
#: interesting number is the rate without scheduler noise)
EVENT_REPEATS = 5


# ------------------------------------------------------------ measurements
def _event_loop(n_chains: int, chain_len: int,
                cohort: bool | None = None) -> Simulator:
    sim = Simulator(cohort=cohort)

    def chain(n):
        for _ in range(n):
            yield sim.timeout(1e-9)

    for _ in range(n_chains):
        sim.process(chain(chain_len))
    sim.run()
    return sim


def bench_events(grid: str, cohort: bool = True,
                 repeats: int = EVENT_REPEATS) -> dict:
    """Event-loop dispatch rate (events/sec), best of ``repeats`` runs."""
    n_chains, chain_len = EVENT_CHAINS[grid]
    best = None
    events = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        sim = _event_loop(n_chains, chain_len, cohort=cohort)
        dt = time.perf_counter() - t0
        events = sim.events_processed
        if best is None or dt < best:
            best = dt
    return {"events": events, "seconds": best, "cohort": cohort,
            "events_per_sec": events / best}


def _cell_grid(grid: str) -> list[tuple[object, int]]:
    return [(stack, size)
            for stack in CELL_STACKS for size in CELL_SIZES[grid]]


def bench_cells(grid: str) -> dict:
    """Sweep-cell throughput: machine build + IMB loop per cell."""
    cells = _cell_grid(grid)
    t0 = time.perf_counter()
    for stack, size in cells:
        imb_time("dancer", stack, 4, "bcast", size, CELL_SETTINGS)
    dt = time.perf_counter() - t0
    return {"cells": len(cells), "seconds": dt,
            "cells_per_sec": len(cells) / dt}


def _sweep(grid: str, parallel: int):
    return run_sweep(
        experiment="simcore", machine="dancer", operation="bcast",
        nprocs=SWEEP_NPROCS, stacks=CELL_STACKS, sizes=SWEEP_SIZES[grid],
        settings=SWEEP_SETTINGS, reference="KNEM-Coll", parallel=parallel)


def bench_sweep(grid: str, jobs: int) -> dict:
    """run_sweep wall-clock, serial vs the warm pool at ``parallel=jobs``."""
    serial = _sweep(grid, parallel=1).stats.wall_seconds
    parallel = _sweep(grid, parallel=jobs).stats.wall_seconds
    return {"jobs": jobs, "serial_seconds": serial,
            "parallel_seconds": parallel,
            "speedup": serial / parallel if parallel > 0 else 0.0,
            "measurable": (os.cpu_count() or 1) >= 2}


def collect(grid: str, jobs: int) -> dict:
    """All measurements as the BENCH_simcore.json payload."""
    return {
        "version": 2,
        "grid": grid,
        "host": {"cpus": os.cpu_count() or 1, "platform": sys.platform},
        "events_per_sec": round(
            bench_events(grid, cohort=True)["events_per_sec"], 1),
        "events_per_sec_scalar": round(
            bench_events(grid, cohort=False)["events_per_sec"], 1),
        "cells_per_sec": round(bench_cells(grid)["cells_per_sec"], 3),
        "sweep": {k: (round(v, 3) if isinstance(v, float) else v)
                  for k, v in bench_sweep(grid, jobs).items()},
    }


# -------------------------------------------------------- pytest-benchmark
def test_event_loop_events_per_sec(benchmark):
    n_chains, chain_len = EVENT_CHAINS["smoke"]
    sim = benchmark(_event_loop, n_chains, chain_len)
    assert sim.events_processed >= n_chains * chain_len


def test_event_loop_cohort_events_per_sec(benchmark):
    n_chains, chain_len = EVENT_CHAINS["smoke"]
    with vector.forced(True):
        sim = benchmark(_event_loop, n_chains, chain_len, True)
    assert sim.cohort and sim.cohorts_dispatched > 0
    assert sim.events_processed >= n_chains * chain_len


def test_cell_throughput(benchmark):
    benchmark.pedantic(bench_cells, args=("smoke",), rounds=1, iterations=1)


def test_parallel_sweep_speedup(benchmark):
    cpus = os.cpu_count() or 1
    if cpus < 2:
        pytest.skip(
            f"parallel speedup is not measurable on this host: {cpus} cpu "
            "(a warm pool cannot beat serial without a second core)")
    jobs = cpus
    res = benchmark.pedantic(bench_sweep, args=("smoke", jobs),
                             rounds=1, iterations=1)
    benchmark.extra_info["speedup"] = round(res["speedup"], 2)
    benchmark.extra_info["jobs"] = jobs
    assert res["speedup"] >= 1.0, (
        f"warm-pool sweep slower than serial on a {cpus}-cpu host: "
        f"{res['speedup']:.2f}x")


# -------------------------------------------------------------- standalone
def _check_regression(current: dict, baseline_path: str,
                      max_regression: float) -> int:
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    base = baseline["events_per_sec"]
    now = current["events_per_sec"]
    floor = base * (1.0 - max_regression)
    verdict = "OK" if now >= floor else "REGRESSION"
    print(f"[gate] events/sec: current {now:,.0f} vs baseline {base:,.0f} "
          f"(floor {floor:,.0f}, max regression {max_regression:.0%}) "
          f"-> {verdict}")
    return 0 if now >= floor else 1


def _check_speedup(current: dict, min_speedup: float) -> int:
    """Speedup gate; explicitly skips on hosts where it is unmeasurable."""
    cpus = current["host"]["cpus"]
    sweep = current["sweep"]
    if cpus < 2:
        print(f"[gate] speedup: SKIPPED — host has {cpus} cpu; a parallel "
              "sweep cannot beat serial without a second core "
              "(gate requires cpus >= 2)")
        return 0
    speedup = sweep["speedup"]
    verdict = "OK" if speedup >= min_speedup else "TOO SLOW"
    print(f"[gate] speedup: {speedup:.2f}x at jobs={sweep['jobs']} on "
          f"{cpus} cpus (floor {min_speedup:.2f}x) -> {verdict}")
    return 0 if speedup >= min_speedup else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Simulator-core micro-benchmarks (events/sec, "
                    "cells/sec, parallel sweep speedup).")
    parser.add_argument("--smoke", action="store_true",
                        help="small grid for CI (default: full grid)")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="workers for the sweep comparison "
                             "(0 = one per CPU)")
    parser.add_argument("--output", metavar="PATH",
                        help="write the measurements as JSON")
    parser.add_argument("--baseline", metavar="PATH",
                        help="compare events/sec against this JSON and fail "
                             "on regression")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        metavar="FRAC",
                        help="allowed events/sec drop vs baseline "
                             "(default 0.25)")
    parser.add_argument("--check-speedup", action="store_true",
                        help="fail unless the parallel sweep beats serial by "
                             "--min-speedup (skips with an explicit reason "
                             "on hosts with < 2 cpus)")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        metavar="X",
                        help="speedup floor for --check-speedup "
                             "(default 1.5)")
    args = parser.parse_args(argv)

    grid = "smoke" if args.smoke else "full"
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    result = collect(grid, jobs)
    print(json.dumps(result, indent=2, sort_keys=True))

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[json] wrote {args.output}")

    rc = 0
    if args.baseline:
        rc = _check_regression(result, args.baseline, args.max_regression)
    if args.check_speedup:
        rc = rc or _check_speedup(result, args.min_speedup)
    return rc


if __name__ == "__main__":
    sys.exit(main())
