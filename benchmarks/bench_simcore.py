"""Simulator-core micro-benchmarks and the wall-clock perf-regression gate.

Four measurements of the engine itself (not of any paper experiment):

- **events/sec** — raw event-loop dispatch rate on timeout chains, measured
  best-of-5 with the vectorized cohort path (timer lane + fused dispatch +
  tuned kernels) enabled; the scalar rate is recorded alongside.  This is
  the number the CI gate always enforces, because every sweep bottoms out
  in ``Simulator.run``;
- **timer-lane events/sec** — the deadline-armed drain (the
  ``Job.run(deadline=)`` watchdog pattern): wide same-deadline timer waves
  over resident armed watchdog deadlines, dispatched through
  ``run_horizon`` slices, against the scalar caller loop it replaced (one
  heap transaction + one ``step()`` call per event);
- **cells/sec** — full (stack, size) sweep cells (machine build + IMB
  loop) on the dancer Broadcast grid, with the vector-vs-scalar wall time
  recorded **per cell** so a vector-path loss on any cell is visible in
  the payload (it warns — never gates — on hosts with < 2 cpus, where
  noise swamps the comparison);
- **sweep wall-clock** — ``run_sweep`` serial vs the warm pool at
  ``parallel=N``.  The payload records the host cpu count and a
  ``measurable`` flag: on a 1-cpu host parallel can never beat serial, so
  the speedup gate (``--check-speedup``) explicitly skips there instead of
  recording a misleading number as a target.

Micro measurements (events/sec and the timer lane) pause the garbage
collector around the timed region — the ``timeit`` idiom — and the payload
says so (``"gc_paused_micro": true``); both the cohort and the scalar legs
get identical treatment.  Tuned kernels are activated from the receipts
artifact (``BENCH_kernels.json``, written by ``python -m
repro.bench.kernels --tune``) when present and fresh; the payload records
what was active so a number can always be traced to its configuration.

Standalone (what CI runs)::

    python benchmarks/bench_simcore.py --smoke --jobs 2 \
        --output BENCH_simcore.json
    python benchmarks/bench_simcore.py --smoke \
        --baseline BENCH_simcore.json --max-regression 0.25
    python benchmarks/bench_simcore.py --smoke --jobs 2 \
        --check-speedup --min-speedup 1.5   # skips on < 2 cpus

Under pytest (``pytest benchmarks/bench_simcore.py --benchmark-only``) each
measurement is one pytest-benchmark target, so it lands in benchmark
history next to the paper-experiment benches.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time

import pytest

from repro import vector
from repro.bench import kernels as kernels_mod
from repro.bench.harness import run_sweep
from repro.bench.imb import ImbSettings, imb_time
from repro.mpi import stacks as stk
from repro.simtime import Simulator
from repro.units import KiB

#: (stack, size) grid for the cell-throughput measurement.
CELL_STACKS = [stk.TUNED_SM, stk.KNEM_COLL]
CELL_SIZES = {"full": [32 * KiB, 64 * KiB, 128 * KiB, 256 * KiB],
              "smoke": [32 * KiB, 128 * KiB]}
CELL_SETTINGS = ImbSettings(max_iterations=1, warmups=0)

#: sweep grid for the serial-vs-warm-pool comparison.  Cells here are
#: deliberately bigger than the cell-throughput grid (8 ranks, warmup +
#: 2 iterations, up to MiB messages): the smoke sweep runs ~0.6 s serial,
#: enough work for a 2-worker pool to amortize its one-time fork.
SWEEP_SIZES = {"full": [128 * KiB, 256 * KiB, 512 * KiB, 1024 * KiB,
                        2048 * KiB],
               "smoke": [128 * KiB, 256 * KiB, 512 * KiB, 1024 * KiB]}
SWEEP_NPROCS = 8
SWEEP_SETTINGS = ImbSettings(max_iterations=2, warmups=1)

#: event-loop workload: chains of zero-ish timeouts.
EVENT_CHAINS = {"full": (10, 20_000), "smoke": (10, 5_000)}
#: timer-lane workload: (width, rounds, resident) — wide same-deadline
#: waves drained through ``run_horizon`` slices (the watchdog re-arm
#: pattern), over ``resident`` armed long-deadline timers that never fire
#: inside the measured window.  The residents mirror what a big sweep
#: actually queues (one watchdog deadline per in-flight job — see
#: ``mpi/runtime.py``): the scalar heap pays tuple-compare sift work for
#: them on every transaction, the timer lane parks them in one bucket.
#: smoke == full here: the wave is cheap (< 1 s) and the smaller shape is
#: too noisy for the recorded cohort-vs-scalar ratio to be meaningful.
TIMER_WAVES = {"full": (500, 80, 4000), "smoke": (500, 80, 4000)}
TIMER_SLICES = 8
#: wall-clock runs per micro measurement (best-of, not mean: the
#: interesting number is the rate without scheduler noise)
EVENT_REPEATS = 5


# ------------------------------------------------------------ measurements
def _timed(fn) -> float:
    """Wall-time ``fn()`` with the GC paused (the ``timeit`` idiom).

    Both the cohort and the scalar legs of every micro measurement go
    through here, so the comparison and the recorded absolute rates share
    one methodology (and the payload declares it).
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0
    finally:
        if was_enabled:
            gc.enable()


def _event_loop(n_chains: int, chain_len: int,
                cohort: bool | None = None) -> Simulator:
    sim = Simulator(cohort=cohort)

    def chain(n):
        timeout = sim.timeout
        for _ in range(n):
            yield timeout(1e-9)

    for _ in range(n_chains):
        sim.process(chain(chain_len))
    sim.run()
    return sim


def bench_events(grid: str, cohort: bool = True,
                 repeats: int = EVENT_REPEATS) -> dict:
    """Event-loop dispatch rate (events/sec), best of ``repeats`` runs."""
    n_chains, chain_len = EVENT_CHAINS[grid]
    _event_loop(n_chains, chain_len, cohort=cohort)  # warm-up
    best = None
    events = 0
    for _ in range(repeats):
        sim = Simulator(cohort=cohort)

        def chain(n):
            timeout = sim.timeout
            for _ in range(n):
                yield timeout(1e-9)

        for _ in range(n_chains):
            sim.process(chain(chain_len))
        dt = _timed(sim.run)
        events = sim.events_processed
        if best is None or dt < best:
            best = dt
    return {"events": events, "seconds": best, "cohort": cohort,
            "events_per_sec": events / best}


def _timer_wave_sim(cohort: bool, width: int, rounds: int,
                    delay: float = 1e-6, resident: int = 0) -> Simulator:
    sim = Simulator(cohort=cohort)
    for _ in range(resident):
        sim.timeout(1e6)  # armed watchdog deadlines, far past the window

    def proc():
        timeout = sim.timeout
        for _ in range(rounds):
            yield timeout(delay)

    for _ in range(width):
        sim.process(proc())
    return sim


def bench_timer_lane(grid: str, repeats: int = 2 * EVENT_REPEATS) -> dict:
    """Deadline-armed drain rate: batched ``run_horizon`` vs the scalar
    caller loop it replaced (``while heap[0] <= horizon: step()``).

    Both legs drain exactly the wave window (a fixed slice count covering
    ``rounds * delay``); the resident watchdog timers stay queued, as they
    would in a live sweep.
    """
    width, rounds, resident = TIMER_WAVES[grid]
    delay = 1e-6
    total = rounds * delay

    def cohort_leg() -> float:
        sim = _timer_wave_sim(True, width, rounds, delay, resident)

        def run():
            h = 0.0
            for _ in range(TIMER_SLICES):
                h += total / TIMER_SLICES
                sim.run_horizon(h)

        dt = _timed(run)
        return sim.events_processed / dt

    def scalar_leg() -> float:
        sim = _timer_wave_sim(False, width, rounds, delay, resident)

        def run():
            h = 0.0
            heap = sim._heap
            for _ in range(TIMER_SLICES):
                h += total / TIMER_SLICES
                while heap and heap[0][0] <= h:
                    sim.step()

        dt = _timed(run)
        return sim.events_processed / dt

    cohort_leg(), scalar_leg()  # warm-up
    # Alternate the legs so clock-frequency drift on a busy host hits both
    # distributions equally instead of biasing whichever block runs last.
    best_cohort = best_scalar = 0.0
    for _ in range(repeats):
        best_cohort = max(best_cohort, cohort_leg())
        best_scalar = max(best_scalar, scalar_leg())
    return {
        "width": width, "rounds": rounds, "resident": resident,
        "events_per_sec": best_cohort,
        "events_per_sec_scalar": best_scalar,
        "ratio": best_cohort / best_scalar,
    }


def _cell_grid(grid: str) -> list[tuple[object, int]]:
    return [(stack, size)
            for stack in CELL_STACKS for size in CELL_SIZES[grid]]


def bench_cells(grid: str) -> dict:
    """Sweep-cell throughput, with vector-vs-scalar wall time per cell.

    ``cells_per_sec`` (the headline number) is measured with the vector
    path on — the configuration every gated number uses.  Each cell is
    then re-run with the vector path off so the payload records where the
    vectorized engine wins or loses, cell by cell.
    """
    cells = _cell_grid(grid)
    per_cell = []
    total_vec = 0.0
    for stack, size in cells:
        with vector.forced(True):
            t_vec = _timed(lambda: imb_time(
                "dancer", stack, 4, "bcast", size, CELL_SETTINGS))
        with vector.forced(False):
            t_sca = _timed(lambda: imb_time(
                "dancer", stack, 4, "bcast", size, CELL_SETTINGS))
        total_vec += t_vec
        per_cell.append({
            "stack": stack.name, "size": size,
            "vector_seconds": round(t_vec, 6),
            "scalar_seconds": round(t_sca, 6),
            "vector_speedup": round(t_sca / t_vec, 3) if t_vec > 0 else 0.0,
        })
    return {"cells": len(cells), "seconds": total_vec,
            "cells_per_sec": len(cells) / total_vec,
            "per_cell": per_cell}


def vector_cell_warnings(cell_report: dict, cpus: int) -> list[str]:
    """Cells where the vector path lost.  On a < 2-cpu host this is a
    warning, never a gate: single-core turbo/steal noise routinely flips
    sub-second cells, and the bitwise-equivalence contract means a loss is
    a scheduling artifact, not a correctness signal."""
    warnings = []
    for cell in cell_report["per_cell"]:
        if cell["vector_speedup"] < 1.0:
            warnings.append(
                f"vector path lost on cell {cell['stack']}|{cell['size']}: "
                f"{cell['vector_seconds']:.3f}s vs "
                f"{cell['scalar_seconds']:.3f}s scalar "
                f"(speedup {cell['vector_speedup']:.2f}x, host cpus={cpus})")
    return warnings


def _sweep(grid: str, parallel: int):
    return run_sweep(
        experiment="simcore", machine="dancer", operation="bcast",
        nprocs=SWEEP_NPROCS, stacks=CELL_STACKS, sizes=SWEEP_SIZES[grid],
        settings=SWEEP_SETTINGS, reference="KNEM-Coll", parallel=parallel)


def bench_sweep(grid: str, jobs: int) -> dict:
    """run_sweep wall-clock, serial vs the warm pool at ``parallel=jobs``."""
    serial = _sweep(grid, parallel=1).stats.wall_seconds
    parallel = _sweep(grid, parallel=jobs).stats.wall_seconds
    return {"jobs": jobs, "serial_seconds": serial,
            "parallel_seconds": parallel,
            "speedup": serial / parallel if parallel > 0 else 0.0,
            "measurable": (os.cpu_count() or 1) >= 2}


def collect(grid: str, jobs: int) -> dict:
    """All measurements as the BENCH_simcore.json payload."""
    cpus = os.cpu_count() or 1
    with vector.forced(True):
        kernels = kernels_mod.activate(machine="dancer")
        try:
            events = bench_events(grid, cohort=True)
            timer_lane = bench_timer_lane(grid)
            cell_report = bench_cells(grid)
            sweep = bench_sweep(grid, jobs)
        finally:
            kernels_mod.deactivate()
    scalar = bench_events(grid, cohort=False)
    return {
        "version": 3,
        "grid": grid,
        "host": {"cpus": cpus, "platform": sys.platform},
        "gc_paused_micro": True,
        "kernels": kernels,
        "events_per_sec": round(events["events_per_sec"], 1),
        "events_per_sec_scalar": round(scalar["events_per_sec"], 1),
        "timer_lane": {k: (round(v, 1) if isinstance(v, float) else v)
                       for k, v in timer_lane.items()
                       if k != "ratio"} | {
                           "ratio": round(timer_lane["ratio"], 2)},
        "cells_per_sec": round(cell_report["cells_per_sec"], 3),
        "cells": cell_report["per_cell"],
        "vector_cell_warnings": vector_cell_warnings(cell_report, cpus),
        "sweep": {k: (round(v, 3) if isinstance(v, float) else v)
                  for k, v in sweep.items()},
    }


# -------------------------------------------------------- pytest-benchmark
def test_event_loop_events_per_sec(benchmark):
    n_chains, chain_len = EVENT_CHAINS["smoke"]
    sim = benchmark(_event_loop, n_chains, chain_len)
    assert sim.events_processed >= n_chains * chain_len


def test_event_loop_cohort_events_per_sec(benchmark):
    n_chains, chain_len = EVENT_CHAINS["smoke"]
    with vector.forced(True):
        sim = benchmark(_event_loop, n_chains, chain_len, True)
    assert sim.cohort and sim.cohorts_dispatched > 0
    assert sim.events_processed >= n_chains * chain_len


def test_timer_lane_deadline_drain(benchmark):
    with vector.forced(True):
        res = benchmark.pedantic(bench_timer_lane, args=("smoke", 3),
                                 rounds=1, iterations=1)
    benchmark.extra_info["ratio_vs_scalar"] = round(res["ratio"], 2)
    # The batched deadline drain must never lose to the per-event caller
    # loop it replaced; the recorded payload tracks the full ratio.
    assert res["ratio"] >= 1.0, (
        f"cohort deadline drain slower than the scalar caller loop: "
        f"{res['ratio']:.2f}x")


def test_cell_throughput(benchmark):
    benchmark.pedantic(bench_cells, args=("smoke",), rounds=1, iterations=1)


def test_parallel_sweep_speedup(benchmark):
    cpus = os.cpu_count() or 1
    if cpus < 2:
        pytest.skip(
            f"parallel speedup is not measurable on this host: {cpus} cpu "
            "(a warm pool cannot beat serial without a second core)")
    jobs = cpus
    res = benchmark.pedantic(bench_sweep, args=("smoke", jobs),
                             rounds=1, iterations=1)
    benchmark.extra_info["speedup"] = round(res["speedup"], 2)
    benchmark.extra_info["jobs"] = jobs
    assert res["speedup"] >= 1.0, (
        f"warm-pool sweep slower than serial on a {cpus}-cpu host: "
        f"{res['speedup']:.2f}x")


# -------------------------------------------------------------- standalone
def _check_regression(current: dict, baseline_path: str,
                      max_regression: float) -> int:
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    base = baseline["events_per_sec"]
    now = current["events_per_sec"]
    floor = base * (1.0 - max_regression)
    verdict = "OK" if now >= floor else "REGRESSION"
    print(f"[gate] events/sec: current {now:,.0f} vs baseline {base:,.0f} "
          f"(floor {floor:,.0f}, max regression {max_regression:.0%}) "
          f"-> {verdict}")
    return 0 if now >= floor else 1


def _check_speedup(current: dict, min_speedup: float) -> int:
    """Speedup gate; explicitly skips on hosts where it is unmeasurable."""
    cpus = current["host"]["cpus"]
    sweep = current["sweep"]
    if cpus < 2:
        print(f"[gate] speedup: SKIPPED — host has {cpus} cpu; a parallel "
              "sweep cannot beat serial without a second core "
              "(gate requires cpus >= 2)")
        return 0
    speedup = sweep["speedup"]
    verdict = "OK" if speedup >= min_speedup else "TOO SLOW"
    print(f"[gate] speedup: {speedup:.2f}x at jobs={sweep['jobs']} on "
          f"{cpus} cpus (floor {min_speedup:.2f}x) -> {verdict}")
    return 0 if speedup >= min_speedup else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Simulator-core micro-benchmarks (events/sec, timer "
                    "lane, cells/sec, parallel sweep speedup).")
    parser.add_argument("--smoke", action="store_true",
                        help="small grid for CI (default: full grid)")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="workers for the sweep comparison "
                             "(0 = one per CPU)")
    parser.add_argument("--output", metavar="PATH",
                        help="write the measurements as JSON")
    parser.add_argument("--baseline", metavar="PATH",
                        help="compare events/sec against this JSON and fail "
                             "on regression")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        metavar="FRAC",
                        help="allowed events/sec drop vs baseline "
                             "(default 0.25)")
    parser.add_argument("--check-speedup", action="store_true",
                        help="fail unless the parallel sweep beats serial by "
                             "--min-speedup (skips with an explicit reason "
                             "on hosts with < 2 cpus)")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        metavar="X",
                        help="speedup floor for --check-speedup "
                             "(default 1.5)")
    args = parser.parse_args(argv)

    grid = "smoke" if args.smoke else "full"
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    result = collect(grid, jobs)
    print(json.dumps(result, indent=2, sort_keys=True))
    for warning in result["vector_cell_warnings"]:
        print(f"[warn] {warning}")

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[json] wrote {args.output}")

    rc = 0
    if args.baseline:
        rc = _check_regression(result, args.baseline, args.max_regression)
    if args.check_speedup:
        rc = rc or _check_speedup(result, args.min_speedup)
    return rc


if __name__ == "__main__":
    sys.exit(main())
