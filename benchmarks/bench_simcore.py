"""Simulator-core micro-benchmarks and the wall-clock perf-regression gate.

Three measurements of the engine itself (not of any paper experiment):

- **events/sec** — raw event-loop dispatch rate on timeout chains; this is
  the number the CI gate enforces, because every sweep bottoms out in
  ``Simulator.run``;
- **cells/sec** — full (stack, size) sweep cells (machine build + IMB loop)
  on the dancer Broadcast grid;
- **sweep wall-clock** — ``run_sweep`` serial vs ``parallel=N``, reporting
  the speedup (recorded, not gated: it is meaningless on 1-2 core CI hosts).

Standalone (what CI runs)::

    python benchmarks/bench_simcore.py --smoke --jobs 2 \
        --output BENCH_simcore.json
    python benchmarks/bench_simcore.py --smoke \
        --baseline BENCH_simcore.json --max-regression 0.25

Under pytest (``pytest benchmarks/bench_simcore.py --benchmark-only``) each
measurement is one pytest-benchmark target, so it lands in benchmark
history next to the paper-experiment benches.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.bench.harness import run_sweep
from repro.bench.imb import ImbSettings, imb_time
from repro.mpi import stacks as stk
from repro.simtime import Simulator
from repro.units import KiB

#: (stack, size) grid for the cell and sweep measurements.
CELL_STACKS = [stk.TUNED_SM, stk.KNEM_COLL]
CELL_SIZES = {"full": [32 * KiB, 64 * KiB, 128 * KiB, 256 * KiB],
              "smoke": [32 * KiB, 128 * KiB]}
CELL_SETTINGS = ImbSettings(max_iterations=1, warmups=0)

#: event-loop workload: chains of zero-ish timeouts.
EVENT_CHAINS = {"full": (10, 20_000), "smoke": (10, 5_000)}


# ------------------------------------------------------------ measurements
def _event_loop(n_chains: int, chain_len: int) -> Simulator:
    sim = Simulator()

    def chain(n):
        for _ in range(n):
            yield sim.timeout(1e-9)

    for _ in range(n_chains):
        sim.process(chain(chain_len))
    sim.run()
    return sim


def bench_events(grid: str) -> dict:
    """Event-loop dispatch rate (events/sec)."""
    n_chains, chain_len = EVENT_CHAINS[grid]
    t0 = time.perf_counter()
    sim = _event_loop(n_chains, chain_len)
    dt = time.perf_counter() - t0
    return {"events": sim.events_processed, "seconds": dt,
            "events_per_sec": sim.events_processed / dt}


def _cell_grid(grid: str) -> list[tuple[object, int]]:
    return [(stack, size)
            for stack in CELL_STACKS for size in CELL_SIZES[grid]]


def bench_cells(grid: str) -> dict:
    """Sweep-cell throughput: machine build + IMB loop per cell."""
    cells = _cell_grid(grid)
    t0 = time.perf_counter()
    for stack, size in cells:
        imb_time("dancer", stack, 4, "bcast", size, CELL_SETTINGS)
    dt = time.perf_counter() - t0
    return {"cells": len(cells), "seconds": dt,
            "cells_per_sec": len(cells) / dt}


def _sweep(grid: str, parallel: int):
    return run_sweep(
        experiment="simcore", machine="dancer", operation="bcast", nprocs=4,
        stacks=CELL_STACKS, sizes=CELL_SIZES[grid], settings=CELL_SETTINGS,
        reference="KNEM-Coll", parallel=parallel)


def bench_sweep(grid: str, jobs: int) -> dict:
    """run_sweep wall-clock, serial vs ``parallel=jobs``."""
    serial = _sweep(grid, parallel=1).stats.wall_seconds
    parallel = _sweep(grid, parallel=jobs).stats.wall_seconds
    return {"jobs": jobs, "serial_seconds": serial,
            "parallel_seconds": parallel,
            "speedup": serial / parallel if parallel > 0 else 0.0}


def collect(grid: str, jobs: int) -> dict:
    """All three measurements as the BENCH_simcore.json payload."""
    return {
        "version": 1,
        "grid": grid,
        "host": {"cpus": os.cpu_count() or 1, "platform": sys.platform},
        "events_per_sec": round(bench_events(grid)["events_per_sec"], 1),
        "cells_per_sec": round(bench_cells(grid)["cells_per_sec"], 3),
        "sweep": {k: (round(v, 3) if isinstance(v, float) else v)
                  for k, v in bench_sweep(grid, jobs).items()},
    }


# -------------------------------------------------------- pytest-benchmark
def test_event_loop_events_per_sec(benchmark):
    n_chains, chain_len = EVENT_CHAINS["smoke"]
    sim = benchmark(_event_loop, n_chains, chain_len)
    assert sim.events_processed >= n_chains * chain_len


def test_cell_throughput(benchmark):
    benchmark.pedantic(bench_cells, args=("smoke",), rounds=1, iterations=1)


def test_parallel_sweep_speedup(benchmark):
    jobs = os.cpu_count() or 1
    res = benchmark.pedantic(bench_sweep, args=("smoke", jobs),
                             rounds=1, iterations=1)
    benchmark.extra_info["speedup"] = round(res["speedup"], 2)
    benchmark.extra_info["jobs"] = jobs


# -------------------------------------------------------------- standalone
def _check_regression(current: dict, baseline_path: str,
                      max_regression: float) -> int:
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    base = baseline["events_per_sec"]
    now = current["events_per_sec"]
    floor = base * (1.0 - max_regression)
    verdict = "OK" if now >= floor else "REGRESSION"
    print(f"[gate] events/sec: current {now:,.0f} vs baseline {base:,.0f} "
          f"(floor {floor:,.0f}, max regression {max_regression:.0%}) "
          f"-> {verdict}")
    return 0 if now >= floor else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Simulator-core micro-benchmarks (events/sec, "
                    "cells/sec, parallel sweep speedup).")
    parser.add_argument("--smoke", action="store_true",
                        help="small grid for CI (default: full grid)")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="workers for the sweep comparison "
                             "(0 = one per CPU)")
    parser.add_argument("--output", metavar="PATH",
                        help="write the measurements as JSON")
    parser.add_argument("--baseline", metavar="PATH",
                        help="compare events/sec against this JSON and fail "
                             "on regression")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        metavar="FRAC",
                        help="allowed events/sec drop vs baseline "
                             "(default 0.25)")
    args = parser.parse_args(argv)

    grid = "smoke" if args.smoke else "full"
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    result = collect(grid, jobs)
    print(json.dumps(result, indent=2, sort_keys=True))

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[json] wrote {args.output}")

    if args.baseline:
        return _check_regression(result, args.baseline, args.max_regression)
    return 0


if __name__ == "__main__":
    sys.exit(main())
