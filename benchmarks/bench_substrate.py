"""Substrate micro-benchmarks: simulator engine throughput.

Not a paper experiment — these track the performance of the simulation
substrate itself (event loop, flow network, cache model), so regressions
in the engine show up in benchmark history rather than as mysteriously
slow experiment sweeps.
"""

from repro.hardware.flows import FlowNetwork, Resource
from repro.hardware.machines import ig
from repro.hardware.memory import MemorySystem
from repro.mpi import Job, Machine, stacks
from repro.simtime import Simulator
from repro.units import KiB, MiB


def test_event_loop_throughput(benchmark):
    """Pure event scheduling/dispatch rate."""

    def run():
        sim = Simulator()

        def chain(n):
            for _ in range(n):
                yield sim.timeout(1e-9)

        for _ in range(10):
            sim.process(chain(5000))
        sim.run()
        return sim.now

    benchmark(run)


def test_flow_network_rebalancing(benchmark):
    """Max-min fair reassignment under churn (48 flows, shared resources)."""

    def run():
        sim = Simulator()
        net = FlowNetwork(sim)
        ports = [Resource(f"p{i}", 1e10) for i in range(8)]

        def flow(i):
            for k in range(20):
                yield net.transfer(
                    1 * MiB, demand=5e9,
                    weights={ports[i % 8]: 1.0, ports[(i + k) % 8]: 1.0},
                )

        for i in range(48):
            sim.process(flow(i))
        sim.run()
        return net.completed_flows

    assert benchmark(run) == 960


def test_memory_copy_engine(benchmark):
    """Copy issue rate through the full memory system (cache + routing)."""

    def run():
        sim = Simulator()
        mem = MemorySystem(sim, ig())
        bufs = [(mem.alloc(256 * KiB, d % 8, backed=False),
                 mem.alloc(256 * KiB, (d + 3) % 8, backed=False))
                for d in range(16)]

        def worker(core, a, b):
            for _ in range(50):
                yield mem.copy(core, a, 0, b, 0, 256 * KiB)

        for i, (a, b) in enumerate(bufs):
            sim.process(worker(i * 3, a, b))
        sim.run()
        return mem.copies

    assert benchmark(run) == 800


def test_full_collective_simulation_rate(benchmark):
    """End-to-end cost of simulating one 48-rank hierarchical broadcast."""

    def run():
        job = Job(Machine.build("ig"), nprocs=48, stack=stacks.KNEM_COLL)

        def prog(proc):
            buf = proc.alloc(1 * MiB, backed=False)
            yield from proc.comm.bcast(buf, 0, 1 * MiB, root=0)

        job.run(prog)

    benchmark.pedantic(run, rounds=3, iterations=1)
