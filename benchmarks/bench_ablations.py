"""Ablations of the design choices DESIGN.md calls out.

- direction control (sender-writing Gather) on/off;
- persistent registration vs per-message registration counts;
- topology-aware tree vs logical rank-order tree (under scatter binding);
- rotated vs naive Alltoall schedule.
"""

import pytest

from repro.bench.experiments import (
    ablation_direction,
    ablation_registration,
    ablation_rotation,
    ablation_topology,
)
from repro.bench.imb import ImbSettings, imb_time
from repro.bench.report import render_registration_ablation
from repro.mpi import stacks
from repro.units import KiB, MiB

from conftest import emit


def test_ablation_direction_control(run_experiment):
    result = run_experiment(ablation_direction, "zoot", scale="bench")
    emit(result)
    norm = result.normalized()
    root_read = [n for n in norm if n != "KNEM-Coll"][0]
    big = [s for s in result.sizes if s >= 64 * KiB]
    for size in big:
        assert norm[root_read][size] > 1.3, f"direction gain at {size}"


def test_ablation_registration_counts(benchmark):
    stats = benchmark.pedantic(lambda: ablation_registration("dancer"),
                               rounds=1, iterations=1)
    print()
    print(render_registration_ablation(stats))
    assert stats["KNEM-Coll"]["registrations"] < \
        stats["Tuned-KNEM"]["registrations"]


def test_ablation_topology_aware_tree(benchmark):
    """Under scatter binding, a rank-order tree disagrees with NUMA."""
    def run():
        out = {}
        for name, stack in (("aware", stacks.KNEM_COLL),
                            ("rank-order",
                             stacks.KNEM_COLL.with_tuning(topology_aware=False))):
            def prog(proc):
                buf = proc.alloc(2 * MiB, backed=False)
                t0 = proc.now
                yield from proc.comm.bcast(buf, 0, 2 * MiB, root=0)
                return proc.now - t0

            from repro.mpi.runtime import Job, Machine
            job = Job(Machine.build("ig"), nprocs=48, stack=stack,
                      binding="scatter")
            out[name] = max(job.run(prog).values)
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ntopology-aware: {times['aware'] * 1e6:.0f}us   "
          f"rank-order: {times['rank-order'] * 1e6:.0f}us")
    assert times["rank-order"] > times["aware"]


def test_ablation_hierarchy_depth(benchmark):
    """2-level (Figure 1) vs 3-level board-aware tree on IG: the deeper tree
    crosses the inter-board link once instead of once per far-board domain
    (the paper's future-work hierarchy)."""
    def run():
        from repro.mpi.runtime import Job, Machine

        out = {}
        for name, stack in (
                ("2-level", stacks.KNEM_COLL),
                ("3-level", stacks.KNEM_COLL.with_tuning(hierarchy_levels=3))):
            def prog(proc):
                buf = proc.alloc(4 * MiB, backed=False)
                t0 = proc.now
                yield from proc.comm.bcast(buf, 0, 4 * MiB, root=0)
                return proc.now - t0

            job = Job(Machine.build("ig"), nprocs=48, stack=stack)
            out[name] = max(job.run(prog).values)
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n4MiB bcast on IG: 2-level {times['2-level'] * 1e6:.0f}us   "
          f"3-level {times['3-level'] * 1e6:.0f}us")
    assert times["3-level"] < times["2-level"] * 1.05


def test_ablation_rotation(run_experiment):
    result = run_experiment(ablation_rotation, "ig", scale="bench")
    emit(result)
    norm = result.normalized()
    naive = [n for n in norm if n != "KNEM-Coll"][0]
    big = [s for s in result.sizes if s >= 64 * KiB]
    assert all(norm[naive][s] >= 0.99 for s in big)
