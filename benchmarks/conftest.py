"""Benchmark fixtures.

Every paper experiment is exposed as one pytest-benchmark target.  The
measured quantity is the wall time of regenerating the experiment on the
simulator (a deterministic workload, so one round suffices); the
*scientific* output — the normalized-runtime tables in the paper's format —
is printed and written to ``results/*.csv``.

Run:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
import sys

import pytest

# Ensure results land next to the repo regardless of cwd.
os.environ.setdefault(
    "REPRO_RESULTS_DIR",
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "results"),
)


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment callable once under pytest-benchmark and render it."""

    def _run(fn, *args, **kwargs):
        result = benchmark.pedantic(lambda: fn(*args, **kwargs),
                                    rounds=1, iterations=1)
        return result

    return _run


def emit(result) -> None:
    """Print a sweep result and persist its CSV."""
    print()
    print(result.render())
    path = result.to_csv()
    print(f"[csv] {path}")
    sys.stdout.flush()
