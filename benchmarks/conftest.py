"""Benchmark fixtures.

Every paper experiment is exposed as one pytest-benchmark target.  The
measured quantity is the wall time of regenerating the experiment on the
simulator (a deterministic workload, so one round suffices); the
*scientific* output — the normalized-runtime tables in the paper's format —
is printed and written to ``results/*.csv``.

Run:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
import random
import sys

import numpy as np
import pytest

from repro.mpi.runtime import Machine

# Ensure results land next to the repo regardless of cwd.
os.environ.setdefault(
    "REPRO_RESULTS_DIR",
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "results"),
)

#: One seed for every benchmark process: the simulator itself is
#: deterministic, but experiment payload generators and hypothesis-style
#: helpers draw from the global RNGs — pin them so reruns are bit-identical.
BENCH_SEED = 20110913  # ICPP 2011 conference date


@pytest.fixture(autouse=True)
def _seeded_run(request, monkeypatch):
    """Seed the global RNGs and record which machine specs each run built.

    The spec names (and the seed) land in pytest-benchmark's ``extra_info``,
    so a saved ``.benchmarks/`` JSON says exactly what hardware model
    produced each number.
    """
    random.seed(BENCH_SEED)
    np.random.seed(BENCH_SEED % 2**32)
    built: list[str] = []
    orig = Machine.build.__func__

    def recording_build(cls, spec_or_name, costs=None, trace=False):
        machine = orig(cls, spec_or_name, costs=costs, trace=trace)
        entry = f"{machine.spec.name}({machine.spec.n_cores} cores)"
        if entry not in built:
            built.append(entry)
        return machine

    monkeypatch.setattr(Machine, "build", classmethod(recording_build))
    bench = (request.getfixturevalue("benchmark")
             if "benchmark" in request.fixturenames else None)
    yield
    if bench is not None:
        bench.extra_info["seed"] = BENCH_SEED
        bench.extra_info["machines"] = ", ".join(built) or "none"


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment callable once under pytest-benchmark and render it."""

    def _run(fn, *args, **kwargs):
        result = benchmark.pedantic(lambda: fn(*args, **kwargs),
                                    rounds=1, iterations=1)
        return result

    return _run


def emit(result) -> None:
    """Print a sweep result and persist its CSV."""
    print()
    print(result.render())
    path = result.to_csv()
    print(f"[csv] {path}")
    sys.stdout.flush()
