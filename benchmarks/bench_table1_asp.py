"""Table I — ASP application breakdown on Zoot and IG.

Regenerates the application experiment at the paper's problem sizes
(16384^2 on Zoot / 32768^2 on IG) with documented iteration sampling.
Checks: KNEM-Coll spends the least Bcast time, totals keep the paper's
ordering, and the calibrated compute matches the paper's total-minus-bcast
within a few percent.
"""

import pytest

from repro.bench.experiments import PAPER_EXPECTATIONS, table1
from repro.bench.report import render_table1


@pytest.mark.parametrize("machine,compute_expect", [("zoot", 2485.0),
                                                    ("ig", 6090.0)])
def test_table1(benchmark, machine, compute_expect):
    rows = benchmark.pedantic(
        lambda: table1(machine, scale="bench"), rounds=1, iterations=1)
    print()
    print(render_table1(machine, rows,
                        paper=PAPER_EXPECTATIONS["table1"][machine]))

    assert rows["KNEM Coll"]["bcast"] < rows["Open MPI"]["bcast"]
    assert rows["KNEM Coll"]["bcast"] < rows["MPICH2"]["bcast"]
    assert rows["KNEM Coll"]["total"] < rows["Open MPI"]["total"]
    # compute calibration: totals dominated by the relax sweep
    knem_compute = rows["KNEM Coll"]["total"] - rows["KNEM Coll"]["bcast"]
    assert knem_compute == pytest.approx(compute_expect, rel=0.06)
