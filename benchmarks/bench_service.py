"""Sweep-service wall-clock benchmark: warm-cache repeat vs a cold run.

Measures the amortization claim the sweep service exists for — three
end-to-end CLI invocations of one paper experiment, each a real
subprocess so interpreter start-up and import cost are charged to every
leg identically:

- **cold** — ``python -m repro.bench fig5`` computing in-process, the
  baseline everyone runs today;
- **served-cold** — the same experiment via ``--connect`` against a
  fresh server (empty cache: the server computes every cell, so this
  leg prices the protocol + journaling overhead);
- **served-warm** — the same experiment again against the now-warm
  server: every cell answers from the content-addressed cache.

The acceptance gate (``--check-speedup``) asserts the warm repeat is at
least ``--min-speedup`` (default 10) times faster than the cold run
*and* that all three CSVs are byte-identical — a cache that answered
fast but wrong must fail the benchmark, not pass it.  The server is
shut down with SIGTERM and must exit 0 (the clean-shutdown path is part
of what is being measured).

Standalone (how ``BENCH_service.json`` is recorded)::

    python benchmarks/bench_service.py --scale full \
        --output BENCH_service.json --check-speedup
    python benchmarks/bench_service.py --scale smoke   # quick look, no gate
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time

import repro

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
EXPERIMENT = ["fig5", "--machine", "dancer", "--csv"]
CSV_NAME = "fig5_dancer.csv"


def _env(results_dir: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env["REPRO_RESULTS_DIR"] = results_dir
    return env


def _run_client(results_dir: str, scale: str, connect: str | None) -> float:
    cmd = [sys.executable, "-m", "repro.bench", *EXPERIMENT,
           "--scale", scale]
    if connect:
        cmd += ["--connect", connect]
    t0 = time.perf_counter()
    subprocess.run(cmd, env=_env(results_dir), check=True,
                   stdout=subprocess.DEVNULL)
    return time.perf_counter() - t0


def _start_server(workdir: str, jobs: int) -> tuple[subprocess.Popen, str]:
    cache = os.path.join(workdir, "cache.checkpoint.json")
    log = os.path.join(workdir, "server.log")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.bench", "--serve", "127.0.0.1:0",
         "--jobs", str(jobs), "--cache", cache, "--server-log", log],
        env=_env(workdir), stdout=subprocess.PIPE, text=True)
    line = proc.stdout.readline()
    match = re.search(r"listening on (\S+)", line)
    if not match:
        proc.kill()
        raise RuntimeError(f"server never announced an address: {line!r}")
    return proc, match.group(1)


def measure(scale: str, jobs: int, keep_log: str | None = None) -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as tmp:
        dirs = {leg: os.path.join(tmp, leg)
                for leg in ("cold", "served_cold", "served_warm")}
        for d in dirs.values():
            os.makedirs(d)

        cold = _run_client(dirs["cold"], scale, None)

        server, address = _start_server(tmp, jobs)
        try:
            served_cold = _run_client(dirs["served_cold"], scale, address)
            served_warm = _run_client(dirs["served_warm"], scale, address)
            from repro.service.client import ServiceClient

            counters = ServiceClient(address).ping()
        finally:
            server.send_signal(signal.SIGTERM)
            server_exit = server.wait(timeout=60)

        if keep_log:
            shutil.copyfile(os.path.join(tmp, "server.log"), keep_log)
        blobs = {leg: open(os.path.join(d, CSV_NAME), "rb").read()
                 for leg, d in dirs.items()}
        return {
            "scale": scale,
            "server_jobs": jobs,
            "cold_seconds": round(cold, 3),
            "served_cold_seconds": round(served_cold, 3),
            "served_warm_seconds": round(served_warm, 3),
            "speedup_warm_vs_cold": round(cold / served_warm, 2),
            "byte_identical": len(set(blobs.values())) == 1,
            "server_exit": server_exit,
            "server_counters": counters,
        }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=("full", "bench", "smoke"),
                        default="full",
                        help="experiment scale (default: full — the "
                             "committed number; smoke for a quick look)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="server warm-pool size (0 = one per CPU)")
    parser.add_argument("--output", metavar="PATH", default=None,
                        help="write the measurement payload as JSON")
    parser.add_argument("--check-speedup", action="store_true",
                        help="fail unless the warm repeat beats the cold "
                             "run by --min-speedup and CSVs are identical")
    parser.add_argument("--min-speedup", type=float, default=10.0)
    parser.add_argument("--keep-log", metavar="PATH", default=None,
                        help="copy the server's log file to PATH (CI "
                             "uploads it as an artifact)")
    args = parser.parse_args(argv)

    payload = {
        "version": 1,
        "host_cpus": os.cpu_count(),
        "python": sys.version.split()[0],
        **measure(args.scale, args.jobs, args.keep_log),
    }
    print(json.dumps(payload, indent=2, sort_keys=True))

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")

    if not payload["byte_identical"]:
        print("FAIL: served CSVs diverge from the cold run", file=sys.stderr)
        return 1
    if payload["server_exit"] != 0:
        print(f"FAIL: server exited {payload['server_exit']} on SIGTERM",
              file=sys.stderr)
        return 1
    if payload["server_counters"]["cache_hits"] == 0:
        print("FAIL: the warm repeat produced zero cache hits",
              file=sys.stderr)
        return 1
    if args.check_speedup:
        got = payload["speedup_warm_vs_cold"]
        if got < args.min_speedup:
            print(f"FAIL: warm-cache speedup {got}x < "
                  f"{args.min_speedup}x", file=sys.stderr)
            return 1
        print(f"speedup gate ok: {got}x >= {args.min_speedup}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
