"""Figure 7 — AlltoAllv with the rotated fetch schedule (Figure 3).

Paper claims: vs Tuned-SM up to 2x (Zoot), 1.9x (Dancer), 1.25x (Saturn),
2.7x (IG); the margins over Tuned-KNEM are smaller than over the SM
baselines (the operation is memory-bus bound).
"""

import pytest

from repro.bench.experiments import figure7
from repro.units import KiB

from conftest import emit

MACHINES = ["zoot", "dancer", "saturn", "ig"]


@pytest.mark.parametrize("machine", MACHINES)
def test_fig7_alltoallv(run_experiment, machine):
    result = run_experiment(figure7, machine, scale="bench")
    emit(result)

    norm = result.normalized()
    if machine == "ig":
        # On IG the inter-board bisection caps every stack at the largest
        # sizes and the sequential-ioctl KNEM loop loses its edge there
        # (EXPERIMENTS.md D2); the single-copy win shows below 512K.
        small = [s for s in result.sizes if s < 512 * KiB]
        assert all(norm["Tuned-SM"][s] > 1.0 for s in small)
        return
    big = [s for s in result.sizes if s >= 64 * KiB]
    # beats the copy-in/copy-out baseline at most sizes
    wins = sum(norm["Tuned-SM"][s] > 1.0 for s in big)
    assert wins >= len(big) - 1, f"Tuned-SM wins too often on {machine}"
    # margin over Tuned-KNEM smaller than over Tuned-SM (Section VI-D)
    avg_sm = sum(norm["Tuned-SM"][s] for s in big) / len(big)
    avg_knem = sum(norm["Tuned-KNEM"][s] for s in big) / len(big)
    assert avg_knem < avg_sm
