"""Figure 5 — Broadcast, five stacks, four machines, normalized to KNEM-Coll.

Paper claims: KNEM-Coll broadly best; speedups ~1-2.5x (Zoot), 1.2-2.8x
(Dancer), 1-1.8x (Saturn), 1.5-2.1x (IG).  The assertions check the
direction of the claims at the paper's strength against the copy-in/
copy-out baselines; the Tuned-KNEM crossover at the largest IG sizes is a
documented deviation (EXPERIMENTS.md).
"""

import pytest

from repro.bench.experiments import figure5
from repro.units import KiB

from conftest import emit

MACHINES = ["zoot", "dancer", "saturn", "ig"]


@pytest.mark.parametrize("machine", MACHINES)
def test_fig5_bcast(run_experiment, machine):
    result = run_experiment(figure5, machine, scale="bench")
    emit(result)

    norm = result.normalized()
    for size in result.sizes:
        if size < 64 * KiB:
            continue  # delegation region: KNEM-Coll == tuned by design
        assert norm["Tuned-SM"][size] > 1.1, f"Tuned-SM at {size} on {machine}"
        # MPICH2's van de Geijn broadcast gets closer at the largest sizes
        # (EXPERIMENTS.md D1/D2) but must not actually win.
        assert norm["MPICH2-SM"][size] > 0.95, f"MPICH2-SM at {size} on {machine}"
