"""Figure 6 — Gather: the direction-control headline result.

Paper claims: "the linear KNEM Gather tremendously outperforms all other
components in all cases" — max speedup 3.1x (Zoot), 2.2x (Dancer), 2.6x
(Saturn), 3.2x (IG) versus the best of Open MPI and MPICH2.
"""

import pytest

from repro.bench.experiments import figure6
from repro.units import KiB

from conftest import emit

MACHINES = ["zoot", "dancer", "saturn", "ig"]


@pytest.mark.parametrize("machine", MACHINES)
def test_fig6_gather(run_experiment, machine):
    result = run_experiment(figure6, machine, scale="bench")
    emit(result)

    norm = result.normalized()
    for size in result.sizes:
        if size < 64 * KiB:
            continue
        best_other = min(norm[name][size] for name in norm
                         if name != "KNEM-Coll")
        assert best_other > 1.2, f"best-other at {size} on {machine}"


def test_fig6_peak_speedups_in_paper_ballpark(run_experiment):
    """Max speedup vs best-other lands within a factor of ~2 of the paper's
    reported peaks (absolute peaks depend on unmodelled pathologies)."""
    result = run_experiment(figure6, "ig", scale="bench")
    norm = result.normalized()
    peak = max(
        min(norm[name][size] for name in norm if name != "KNEM-Coll")
        for size in result.sizes if size >= 64 * KiB
    )
    assert 1.5 < peak < 6.5  # paper: 3.2x on IG
