"""Scatter — the text-only results of Section VI-C.

"Compared with Open MPI's best Tuned Scatter implementation, the maximum
speedup of KNEM Scatter is about 3x on Zoot, 2x on Dancer, 4x on Saturn,
and 4x on IG."  Scatter mirrors Gather with receiver-reading direction.
"""

import pytest

from repro.bench.experiments import scatter_text
from repro.units import KiB

from conftest import emit

MACHINES = ["zoot", "dancer", "saturn", "ig"]


@pytest.mark.parametrize("machine", MACHINES)
def test_scatter(run_experiment, machine):
    result = run_experiment(scatter_text, machine, scale="bench")
    emit(result)

    norm = result.normalized()
    for size in result.sizes:
        if size < 64 * KiB:
            continue
        # KNEM Scatter beats the double-copy baselines
        assert norm["Tuned-SM"][size] > 1.0, f"Tuned-SM at {size} on {machine}"
        assert norm["MPICH2-SM"][size] > 1.0, f"MPICH2-SM at {size} on {machine}"
