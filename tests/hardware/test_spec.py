"""Machine specification validation and coordinate helpers."""

import pytest

from repro.errors import HardwareConfigError
from repro.hardware.machines import dancer, get_machine, ig, numa_machine, saturn, smp_machine, zoot
from repro.hardware.spec import CacheSpec, CoreSpec, LinkSpec, MachineSpec
from repro.units import GiB, MiB, gbps


class TestPaperMachines:
    def test_zoot_shape(self):
        spec = zoot()
        assert spec.n_cores == 16
        assert spec.n_sockets == 4
        assert spec.n_domains == 1
        assert spec.is_smp
        assert spec.llc.scope == "pair"
        assert spec.llc.size == 4 * MiB

    def test_dancer_shape(self):
        spec = dancer()
        assert spec.n_cores == 8
        assert spec.n_domains == 2
        assert not spec.is_smp
        assert len(spec.links) == 1

    def test_saturn_shape(self):
        spec = saturn()
        assert spec.n_cores == 16
        assert spec.n_sockets == 2
        assert spec.cores_per_socket == 8
        assert spec.llc.size == 18 * MiB

    def test_ig_shape(self):
        spec = ig()
        assert spec.n_cores == 48
        assert spec.n_domains == 8
        assert spec.n_boards == 2
        # full mesh per board (6 links x 2) + two bridges
        assert len(spec.links) == 14
        bridges = [l for l in spec.links if
                   spec.socket_board[l.a] != spec.socket_board[l.b]]
        assert len(bridges) == 2

    def test_ig_moesi(self):
        assert ig().intervention_writeback == 0.0
        assert dancer().intervention_writeback == 1.0

    def test_registry(self):
        assert get_machine("ZOOT").name == "zoot"
        with pytest.raises(HardwareConfigError):
            get_machine("nonexistent")


class TestCoordinates:
    def test_core_socket_domain(self):
        spec = ig()
        assert spec.core_socket(0) == 0
        assert spec.core_socket(47) == 7
        assert spec.core_domain(6) == 1
        assert spec.core_board(23) == 0
        assert spec.core_board(24) == 1

    def test_cores_of_domain(self):
        spec = dancer()
        assert spec.cores_of_domain(0) == [0, 1, 2, 3]
        assert spec.cores_of_domain(1) == [4, 5, 6, 7]

    def test_zoot_single_domain_has_all_cores(self):
        assert zoot().cores_of_domain(0) == list(range(16))

    def test_cache_group_pair(self):
        spec = zoot()
        assert spec.cache_group(0, spec.llc) == (0, 1)
        assert spec.cache_group(5, spec.llc) == (4, 5)

    def test_cache_group_socket(self):
        spec = saturn()
        assert spec.cache_group(3, spec.llc) == tuple(range(8))
        assert spec.cache_group(10, spec.llc) == tuple(range(8, 16))

    def test_out_of_range_core(self):
        with pytest.raises(HardwareConfigError):
            zoot().core_socket(16)
        with pytest.raises(HardwareConfigError):
            zoot().cores_of_domain(1)


class TestValidation:
    def _base(self, **kw):
        args = dict(
            name="m",
            cores_per_socket=2,
            socket_domain=(0, 1),
            socket_board=(0, 0),
            domain_mem_bandwidth=(gbps(10), gbps(10)),
            domain_mem_bytes=(GiB, GiB),
            core=CoreSpec(2.0, gbps(3), gbps(6)),
            caches=(CacheSpec(3, MiB, "socket", gbps(6)),),
            links=(LinkSpec(0, 1, gbps(5)),),
        )
        args.update(kw)
        return MachineSpec(**args)

    def test_valid_baseline(self):
        spec = self._base()
        assert spec.n_cores == 4

    def test_noncontiguous_domains_rejected(self):
        with pytest.raises(HardwareConfigError):
            self._base(socket_domain=(0, 2),
                       domain_mem_bandwidth=(gbps(10),) * 3,
                       domain_mem_bytes=(GiB,) * 3)

    def test_domain_array_length_mismatch(self):
        with pytest.raises(HardwareConfigError):
            self._base(domain_mem_bandwidth=(gbps(10),))

    def test_link_to_unknown_domain(self):
        with pytest.raises(HardwareConfigError):
            self._base(links=(LinkSpec(0, 5, gbps(5)),))

    def test_self_link_rejected(self):
        with pytest.raises(HardwareConfigError):
            LinkSpec(1, 1, gbps(5))

    def test_pair_cache_needs_even_cores(self):
        with pytest.raises(HardwareConfigError):
            self._base(cores_per_socket=3,
                       caches=(CacheSpec(2, MiB, "pair", gbps(6)),))

    def test_cache_levels_must_increase(self):
        with pytest.raises(HardwareConfigError):
            self._base(caches=(CacheSpec(3, MiB, "socket", gbps(6)),
                               CacheSpec(2, MiB, "pair", gbps(8))))

    def test_cached_bw_below_copy_bw_rejected(self):
        with pytest.raises(HardwareConfigError):
            CoreSpec(2.0, gbps(5), gbps(3))

    def test_bad_cache_scope(self):
        with pytest.raises(HardwareConfigError):
            CacheSpec(3, MiB, "galaxy", gbps(6))

    def test_total_bandwidth_default(self):
        c = CacheSpec(3, MiB, "socket", gbps(4))
        assert c.total_bandwidth == pytest.approx(gbps(10))

    def test_intervention_bounds(self):
        with pytest.raises(HardwareConfigError):
            self._base(dirty_intervention_efficiency=1.5)
        with pytest.raises(HardwareConfigError):
            self._base(intervention_writeback=-0.1)


class TestBuilders:
    def test_smp_machine(self):
        spec = smp_machine(n_sockets=2, cores_per_socket=4)
        assert spec.n_domains == 1
        assert spec.n_cores == 8

    def test_numa_topologies(self):
        for topo, n_links in (("mesh", 6), ("ring", 4), ("chain", 3)):
            spec = numa_machine(n_domains=4, topology=topo)
            assert len(spec.links) == n_links

    def test_numa_needs_two_domains(self):
        with pytest.raises(HardwareConfigError):
            numa_machine(n_domains=1)

    def test_unknown_topology(self):
        with pytest.raises(HardwareConfigError):
            numa_machine(topology="torus")
